//! # dagsched-obs — instrumentation for the scheduling pipeline
//!
//! The paper's tables are only as trustworthy as our ability to see
//! what each heuristic actually did on each graph. This crate is the
//! measurement substrate the rest of the workspace records into:
//!
//! * **spans** — [`span!`] opens a named phase; wall-clock is read
//!   only at the span boundaries (never inside hot loops) and the
//!   elapsed time is folded into the current run's [`RunStats`],
//!   both as a flat per-name table and as a hierarchical **span
//!   tree** (phase → sub-phase, parent links by entry nesting) that
//!   [`ChromeTrace`] exports as Perfetto-loadable trace-event JSON;
//! * **metrics registry** — [`counter_add`], [`gauge_set`] and
//!   [`hist_record`] record named counters, gauges and monotonic
//!   fixed-bucket [`Histogram`]s (ready-list lengths, edge-zeroing
//!   counts, clan-tree sizes, priority computations, harness fault
//!   tallies);
//! * **JSONL telemetry** — a [`TelemetrySink`] streams one
//!   [`RunRecord`] per (graph, heuristic) run, plus end-of-run
//!   aggregate summary records (see `docs/OBSERVABILITY.md` for the
//!   schema); [`render_prometheus`] renders any [`RunStats`] as a
//!   Prometheus text exposition page (with derived p50/p95/p99
//!   quantiles) for the daemon's `metrics` request.
//!
//! ## Attribution model
//!
//! Recording goes to a **thread-local run collector** installed by
//! [`run_scope`]. A scheduling run executes on one thread, so opening
//! a scope around `scheduler.schedule(..)` attributes everything the
//! heuristic records to that (graph, heuristic) pair — including under
//! `dagsched-par`'s scoped worker threads, where each worker opens its
//! own scopes. A thread with no scope installed drops records (this is
//! how the harness watchdog's *abandoned* attempts stay silent).
//!
//! ## Zero cost when disabled
//!
//! Everything hot is behind the `enabled` cargo feature. With it off,
//! [`counter_add`] and friends are empty `#[inline(always)]`
//! functions, [`run_scope`] hands back a unit guard whose
//! [`RunScope::finish`] yields an empty [`RunStats`], and [`active`]
//! is a constant `false` so derived-value computations guarded by it
//! are dead-code-eliminated. The workspace crates expose this as a
//! default-on `obs` feature; `cargo build --no-default-features`
//! verifies the uninstrumented build, and the `obs_overhead` bench
//! smoke bounds the instrumented overhead.
//!
//! ```
//! use dagsched_obs as obs;
//!
//! let scope = obs::run_scope();
//! {
//!     let _phase = obs::span!("demo.work");
//!     obs::counter_add("demo.items", 3);
//!     obs::hist_record("demo.len", 7);
//! }
//! let stats = scope.finish();
//! if cfg!(feature = "enabled") {
//!     assert_eq!(stats.counter("demo.items"), 3);
//!     assert_eq!(stats.span("demo.work").unwrap().calls, 1);
//! } else {
//!     assert!(stats.is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod collect;
pub mod hist;
pub mod json;
pub mod prom;
pub mod record;
pub mod sink;
pub mod stats;

pub use chrome::ChromeTrace;
pub use collect::{
    active, counter_add, event, gauge_set, hist_record, run_scope, span_enter, RunScope, SpanGuard,
};
pub use hist::{Histogram, DEFAULT_BOUNDS};
pub use json::Json;
pub use prom::render_prometheus;
pub use record::{
    GraphMeta, IncidentMeta, RunRecord, Summary, SummaryRow, RUN_SCHEMA, SUMMARY_SCHEMA,
};
pub use sink::{SharedBuffer, TelemetrySink};
pub use stats::{RunStats, SpanNode, SpanStat};

/// Opens a named span in the current run scope; the returned guard
/// records the elapsed wall-clock time when dropped.
///
/// Expands to a hygienic `let` binding, so several spans can coexist
/// in one scope and each closes at the end of its lexical block:
///
/// ```
/// # use dagsched_obs as obs;
/// # let scope = obs::run_scope();
/// let _span = obs::span!("dsc.cluster");
/// // ... phase body ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}
