//! A minimal, dependency-free JSON encoder/decoder.
//!
//! The telemetry schema is small and fully under our control, so a
//! ~150-line hand-rolled parser keeps the workspace free of new
//! dependencies while letting the integration tests check every JSONL
//! line structurally. Objects preserve insertion order (the schema is
//! emitted sorted, and byte-stable output matters for the determinism
//! tests).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer (must be a non-negative
    /// whole number).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Appends `s` to `out` as a JSON string literal (with escaping).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number; non-finite values become `null`
/// (JSON has no Inf/NaN).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit} at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected , or ] at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected , or }} at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by our schema;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf8")?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_structures_and_preserves_order() {
        let j = Json::parse(r#"{"b": [1, 2, {"x": null}], "a": "y"}"#).unwrap();
        let obj = j.as_obj().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
        assert_eq!(j.get("a").unwrap().as_str(), Some("y"));
        let arr = j.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("x"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let mut encoded = String::new();
        write_escaped(&mut encoded, nasty);
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
        let mut s = String::new();
        write_f64(&mut s, 2.5);
        assert_eq!(s, "2.5");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }
}
