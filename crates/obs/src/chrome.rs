//! Chrome trace-event export: turns harvested span trees into a
//! `chrome://tracing` / Perfetto-loadable JSON document.
//!
//! The exporter does **not** replay wall-clock start offsets (storing
//! them would add a second nondeterministic field to every record).
//! Instead it lays runs out deterministically: each track (one `tid`
//! per heuristic, in first-add order) is a timeline on which
//! successive runs are placed end-to-end, and within a run each
//! span-tree node gets a synthetic start so that children tile their
//! parent left-to-right. A node's duration is
//! `max(total_ns, Σ child durations)`, which keeps nesting valid even
//! when instrumentation gaps make children sum past their parent.
//! The result: every byte of the document is a pure function of the
//! seeded corpus except the `"ts"`/`"dur"` values.

use crate::json::write_escaped;
use crate::stats::{RunStats, SpanNode};

/// Builder for one Chrome trace-event document. Feed it runs with
/// [`ChromeTrace::add_run`], then serialize with
/// [`ChromeTrace::finish`].
#[derive(Debug, Default)]
pub struct ChromeTrace {
    /// `(track name, timeline cursor in ns)` per tid, in first-add
    /// order; the tid is the index.
    tracks: Vec<(String, u128)>,
    events: String,
}

impl ChromeTrace {
    /// An empty trace document.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// `true` when no run added any span.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends one run's span tree to `track` (typically the
    /// heuristic name; one trace thread per track). `label` tags every
    /// event of the run via `args.run` (typically the graph id).
    pub fn add_run(&mut self, track: &str, label: &str, stats: &RunStats) {
        let tree = stats.span_tree();
        if tree.is_empty() {
            return;
        }
        let tid = match self.tracks.iter().position(|(name, _)| name == track) {
            Some(i) => i,
            None => {
                self.tracks.push((track.to_string(), 0));
                self.tracks.len() - 1
            }
        };
        let mut cursor = self.tracks[tid].1;
        let durs = rolled_up_durations(tree);
        for root in 0..tree.len() {
            if tree[root].parent.is_none() {
                self.emit_subtree(tree, &durs, root, cursor, tid, label);
                cursor += durs[root];
            }
        }
        self.tracks[tid].1 = cursor;
    }

    fn emit_subtree(
        &mut self,
        tree: &[SpanNode],
        durs: &[u128],
        node: usize,
        start_ns: u128,
        tid: usize,
        label: &str,
    ) {
        let out = &mut self.events;
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_escaped(out, tree[node].name);
        out.push_str(",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"ts\":");
        push_us(out, start_ns);
        out.push_str(",\"dur\":");
        push_us(out, durs[node]);
        out.push_str(",\"args\":{\"run\":");
        write_escaped(out, label);
        out.push_str(",\"calls\":");
        out.push_str(&tree[node].calls.to_string());
        out.push_str("}}");
        let mut child_start = start_ns;
        for child in node + 1..tree.len() {
            if tree[child].parent == Some(node as u32) {
                self.emit_subtree(tree, durs, child, child_start, tid, label);
                child_start += durs[child];
            }
        }
    }

    /// Serializes the document: thread-name metadata events (one per
    /// track) followed by every complete event, inside the standard
    /// `{"traceEvents":[...]}` envelope.
    pub fn finish(self) -> String {
        let mut out = String::with_capacity(self.events.len() + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (tid, (name, _)) in self.tracks.iter().enumerate() {
            if tid > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":");
            write_escaped(&mut out, name);
            out.push_str("}}");
        }
        if !self.events.is_empty() {
            if !self.tracks.is_empty() {
                out.push(',');
            }
            out.push_str(&self.events);
        }
        out.push_str("]}");
        out
    }
}

/// Duration of every node with children rolled up:
/// `max(total_ns, Σ child durations)`, computed leaf-first (children
/// always have larger ids than their parent).
fn rolled_up_durations(tree: &[SpanNode]) -> Vec<u128> {
    let mut durs: Vec<u128> = tree.iter().map(|n| n.total_ns).collect();
    for i in (0..tree.len()).rev() {
        let child_sum: u128 = (i + 1..tree.len())
            .filter(|&c| tree[c].parent == Some(i as u32))
            .map(|c| durs[c])
            .sum();
        durs[i] = durs[i].max(child_sum);
    }
    durs
}

/// Writes `ns` as microseconds (the trace-event time unit) with
/// millisecond-of-nanosecond precision, e.g. `1500ns` → `1.5`.
fn push_us(out: &mut String, ns: u128) {
    out.push_str(&(ns / 1_000).to_string());
    let frac = (ns % 1_000) as u32;
    if frac > 0 {
        let s = format!("{frac:03}");
        out.push('.');
        out.push_str(s.trim_end_matches('0'));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn stats_with_tree() -> RunStats {
        let scope = crate::run_scope();
        {
            let _root = crate::span!("run.schedule");
            {
                let _a = crate::span!("dsc.cluster");
            }
            let _b = crate::span!("dsc.finalize");
        }
        scope.finish()
    }

    #[test]
    fn export_is_valid_json_with_nested_events() {
        let mut trace = ChromeTrace::new();
        assert!(trace.is_empty());
        let stats = stats_with_tree();
        trace.add_run("DSC", "g/0", &stats);
        trace.add_run("DSC", "g/1", &stats);
        trace.add_run("MCP", "g/0", &stats);
        let doc = trace.finish();
        let j = Json::parse(&doc).expect("valid JSON");
        let events = j.get("traceEvents").unwrap().as_arr().unwrap();
        if !cfg!(feature = "enabled") {
            assert!(events.is_empty(), "disabled builds export empty traces");
            return;
        }
        // 2 thread-name metadata events + 3 runs × 3 spans.
        assert_eq!(events.len(), 2 + 9);
        let meta: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("DSC")
        );
        // Every complete event nests inside its run's root span.
        let complete: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 9);
        let span_of = |e: &Json| -> (u64, f64, f64) {
            (
                e.get("tid").unwrap().as_u64().unwrap(),
                e.get("ts").unwrap().as_f64().unwrap(),
                e.get("dur").unwrap().as_f64().unwrap(),
            )
        };
        for e in &complete {
            if e.get("name").unwrap().as_str() == Some("run.schedule") {
                continue;
            }
            let (tid, ts, dur) = span_of(e);
            let run = e.get("args").unwrap().get("run").unwrap().as_str();
            let parent = complete
                .iter()
                .find(|p| {
                    p.get("name").unwrap().as_str() == Some("run.schedule")
                        && p.get("args").unwrap().get("run").unwrap().as_str() == run
                        && span_of(p).0 == tid
                        && span_of(p).1 <= ts
                        && ts + dur <= span_of(p).1 + span_of(p).2 + 1e-9
                })
                .unwrap_or_else(|| panic!("no enclosing run.schedule for {e:?}"));
            assert_eq!(span_of(parent).0, tid);
        }
    }
}
