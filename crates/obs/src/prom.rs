//! Prometheus text exposition (format 0.0.4) for a [`RunStats`].
//!
//! Metric names are sanitized (`.` and `-` become `_`). Counters and
//! gauges map directly; each [`Histogram`](crate::hist::Histogram)
//! becomes a proper Prometheus histogram (cumulative `le`-labeled
//! buckets plus `+Inf`, `_sum` and `_count` series) followed by
//! derived `_p50`/`_p95`/`_p99` gauges so scrapers get quantiles
//! without re-deriving the interpolation. Spans export as two
//! counters, `<name>_calls_total` and `<name>_ns_total`. Families are
//! emitted in sorted-name order, so the exposition for a given stats
//! snapshot is byte-deterministic.

use crate::stats::RunStats;
use std::fmt::Write as _;

/// Renders `stats` as a Prometheus text exposition page. Every series
/// gets `extra_labels` verbatim (e.g. `"job=\"dagsched\""`); pass `""`
/// for none.
pub fn render_prometheus(stats: &RunStats, extra_labels: &str) -> String {
    let mut out = String::with_capacity(1024);
    let labels = |suffix: &str| -> String {
        match (extra_labels.is_empty(), suffix.is_empty()) {
            (true, true) => String::new(),
            (true, false) => format!("{{{suffix}}}"),
            (false, true) => format!("{{{extra_labels}}}"),
            (false, false) => format!("{{{extra_labels},{suffix}}}"),
        }
    };

    for &(name, v) in stats.counters() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}{} {v}", labels(""));
    }
    for &(name, v) in stats.gauges() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{} {v}", labels(""));
    }
    for (name, h) in stats.histograms() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &c) in h.bucket_counts().iter().enumerate() {
            cumulative += c;
            let le = match h.bounds().get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                labels(&format!("le=\"{le}\""))
            );
        }
        let _ = writeln!(out, "{name}_sum{} {}", labels(""), h.sum());
        let _ = writeln!(out, "{name}_count{} {}", labels(""), h.count());
        for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
            let _ = writeln!(out, "{name}_{suffix}{} {}", labels(""), h.quantile(q));
        }
    }
    for &(name, s) in stats.spans() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name}_calls_total counter");
        let _ = writeln!(out, "{name}_calls_total{} {}", labels(""), s.calls);
        let _ = writeln!(out, "# TYPE {name}_ns_total counter");
        let _ = writeln!(out, "{name}_ns_total{} {}", labels(""), s.total_ns);
    }
    out
}

/// Maps a dotted metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`, non-digit first).
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_matches_the_golden_format() {
        let mut stats = RunStats::default();
        stats.add_counter("server.requests.total", 7);
        stats.set_gauge("server.queue.depth", 2);
        static BOUNDS: &[u64] = &[1, 2];
        stats.record_hist("server.latency-ms", BOUNDS, 1);
        stats.record_hist("server.latency-ms", BOUNDS, 2);
        stats.record_hist("server.latency-ms", BOUNDS, 9);
        stats.record_span("run.schedule", 1_500);
        stats.sort();
        let got = render_prometheus(&stats, "");
        let want = "\
# TYPE server_requests_total counter
server_requests_total 7
# TYPE server_queue_depth gauge
server_queue_depth 2
# TYPE server_latency_ms histogram
server_latency_ms_bucket{le=\"1\"} 1
server_latency_ms_bucket{le=\"2\"} 2
server_latency_ms_bucket{le=\"+Inf\"} 3
server_latency_ms_sum 12
server_latency_ms_count 3
# TYPE server_latency_ms_p50 gauge
server_latency_ms_p50 2
# TYPE server_latency_ms_p95 gauge
server_latency_ms_p95 9
# TYPE server_latency_ms_p99 gauge
server_latency_ms_p99 9
# TYPE run_schedule_calls_total counter
run_schedule_calls_total 1
# TYPE run_schedule_ns_total counter
run_schedule_ns_total 1500
";
        assert_eq!(got, want);
    }

    #[test]
    fn labels_attach_to_every_series() {
        let mut stats = RunStats::default();
        stats.add_counter("c", 1);
        static BOUNDS: &[u64] = &[1];
        stats.record_hist("h", BOUNDS, 1);
        stats.sort();
        let got = render_prometheus(&stats, "job=\"dagsched\"");
        assert!(got.contains("c{job=\"dagsched\"} 1"));
        assert!(got.contains("h_bucket{job=\"dagsched\",le=\"1\"} 1"));
        assert!(got.contains("h_count{job=\"dagsched\"} 1"));
    }

    #[test]
    fn names_never_start_with_a_digit() {
        assert_eq!(sanitize("99th.percentile"), "_99th_percentile");
        assert_eq!(sanitize("mh.ready_list_len"), "mh_ready_list_len");
    }
}
