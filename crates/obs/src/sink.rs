//! The JSONL telemetry sink.
//!
//! A [`TelemetrySink`] serialises whole lines to an underlying writer
//! behind a mutex, so emitting is atomic per record and the sink can
//! be shared by reference across worker threads. Runners that need
//! byte-deterministic files emit sequentially in corpus order after
//! the parallel phase (see `dagsched-experiments`); the mutex makes
//! even concurrent emission line-atomic.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::record::{RunRecord, Summary};

/// An in-memory byte buffer usable as a sink target; clone it before
/// building the sink to read the captured output afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// A new, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the captured bytes as a string (telemetry is UTF-8).
    pub fn contents(&self) -> String {
        let bytes = self.bytes.lock().expect("buffer poisoned");
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes.lock().expect("buffer poisoned").extend(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A line-oriented JSONL sink for [`RunRecord`]s and [`Summary`] rows.
///
/// Durability: a file-backed sink ([`TelemetrySink::to_path`]) keeps a
/// second handle to the file so [`TelemetrySink::flush`] (and the
/// `Drop` impl) can follow the buffered flush with an `fsync` — traces
/// from killed runs end at a record boundary instead of being silently
/// truncated mid-buffer.
pub struct TelemetrySink {
    writer: Mutex<Box<dyn Write + Send>>,
    /// Second handle to the backing file, for fsync; `None` when the
    /// sink writes somewhere durability is meaningless (memory, pipes).
    file: Option<File>,
    /// Set by [`TelemetrySink::close`]: the final flush already ran
    /// and its result was returned, so `Drop` must not repeat it.
    closed: bool,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink").finish_non_exhaustive()
    }
}

impl TelemetrySink {
    /// A sink writing (buffered) to the file at `path`, truncating any
    /// existing file. Flushes fsync for durability.
    pub fn to_path(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        // A failed clone only loses the fsync guarantee, not the data
        // path, so it degrades rather than erroring.
        let sync_handle = file.try_clone().ok();
        let mut sink = Self::from_writer(BufWriter::new(file));
        sink.file = sync_handle;
        Ok(sink)
    }

    /// A sink writing to an arbitrary writer.
    pub fn from_writer(writer: impl Write + Send + 'static) -> Self {
        TelemetrySink {
            writer: Mutex::new(Box::new(writer)),
            file: None,
            closed: false,
        }
    }

    /// A sink capturing into memory; read it back via the returned
    /// [`SharedBuffer`].
    pub fn in_memory() -> (Self, SharedBuffer) {
        let buffer = SharedBuffer::new();
        (Self::from_writer(buffer.clone()), buffer)
    }

    /// Writes one pre-encoded JSON line (the newline is appended here;
    /// `line` must not contain one).
    pub fn emit_line(&self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "JSONL records are single lines");
        let mut w = self.writer.lock().expect("sink poisoned");
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")
    }

    /// Emits one run record.
    pub fn emit(&self, record: &RunRecord) -> io::Result<()> {
        self.emit_line(&record.to_json())
    }

    /// Emits every per-heuristic summary row.
    pub fn emit_summary(&self, summary: &Summary) -> io::Result<()> {
        for line in summary.to_json_lines() {
            self.emit_line(&line)?;
        }
        Ok(())
    }

    /// Flushes the underlying writer and, for file-backed sinks,
    /// fsyncs the file so every emitted record survives a kill.
    pub fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("sink poisoned").flush()?;
        if let Some(file) = &self.file {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Consumes the sink, flushing and fsyncing one last time, and
    /// *returns* the error `Drop` would have to swallow. Anything
    /// whose exit code should reflect telemetry durability — the
    /// scheduling server, `--trace-out` runs — must end the sink this
    /// way rather than dropping it.
    pub fn close(mut self) -> io::Result<()> {
        let result = self.flush();
        // Drop would flush again (and could mask this result with a
        // second error); mark the sink closed so it stays silent.
        self.closed = true;
        result
    }
}

impl Drop for TelemetrySink {
    /// Best-effort flush + fsync: a run that ends without an explicit
    /// [`TelemetrySink::flush`] (early return, panic unwinding past
    /// the scope) still lands its buffered records on disk. A failure
    /// here is *reported* (stderr) but cannot change the exit code —
    /// callers that need that guarantee use [`TelemetrySink::close`].
    fn drop(&mut self) {
        if self.closed {
            return;
        }
        let w = self
            .writer
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let flushed = w.flush();
        let synced = match &self.file {
            Some(file) => file.sync_data(),
            None => Ok(()),
        };
        if let Err(e) = flushed.and(synced) {
            eprintln!("warning: telemetry sink lost data on drop: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::record::{GraphMeta, RUN_SCHEMA, SUMMARY_SCHEMA};

    fn tiny_record(heuristic: &str) -> RunRecord {
        RunRecord {
            graph: GraphMeta {
                id: "g".into(),
                nodes: 2,
                edges: 1,
                ..GraphMeta::default()
            },
            heuristic: heuristic.into(),
            scheduled_by: Some(heuristic.into()),
            ok: true,
            makespan: Some(7),
            speedup: Some(1.5),
            ..RunRecord::default()
        }
    }

    #[test]
    fn in_memory_sink_captures_one_line_per_record() {
        let (sink, buffer) = TelemetrySink::in_memory();
        sink.emit(&tiny_record("DSC")).unwrap();
        sink.emit(&tiny_record("MCP")).unwrap();
        let mut summary = Summary::default();
        summary.observe(&tiny_record("DSC"));
        sink.emit_summary(&summary).unwrap();
        sink.flush().unwrap();

        let text = buffer.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines[..2] {
            let j = Json::parse(line).unwrap();
            assert_eq!(j.get("schema").unwrap().as_str(), Some(RUN_SCHEMA));
        }
        let j = Json::parse(lines[2]).unwrap();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(SUMMARY_SCHEMA));
    }

    #[test]
    fn drop_flushes_buffered_records_to_disk() {
        let dir = std::env::temp_dir().join("dagsched-obs-sink-drop-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
        {
            let sink = TelemetrySink::to_path(&path).unwrap();
            sink.emit(&tiny_record("DSC")).unwrap();
            // No explicit flush: the record sits in the BufWriter
            // until the sink drops.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "drop must flush the buffer");
        assert!(text.ends_with('\n'), "record boundary reached the file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn close_surfaces_flush_errors_instead_of_dropping_them() {
        /// A writer whose flush always fails, standing in for a full
        /// or failing disk at shutdown.
        struct BrokenFlush;
        impl Write for BrokenFlush {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("disk on fire"))
            }
        }
        let sink = TelemetrySink::from_writer(BrokenFlush);
        sink.emit(&tiny_record("DSC")).unwrap();
        let err = sink.close().unwrap_err();
        assert_eq!(err.to_string(), "disk on fire");

        // The healthy path closes cleanly.
        let (sink, buffer) = TelemetrySink::in_memory();
        sink.emit(&tiny_record("DSC")).unwrap();
        sink.close().unwrap();
        assert_eq!(buffer.contents().lines().count(), 1);
    }

    #[test]
    fn path_sink_writes_the_file() {
        let dir = std::env::temp_dir().join("dagsched-obs-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = TelemetrySink::to_path(&path).unwrap();
        sink.emit(&tiny_record("HU")).unwrap();
        sink.flush().unwrap();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(Json::parse(text.lines().next().unwrap()).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
