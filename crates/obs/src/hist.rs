//! Monotonic fixed-bucket histograms.
//!
//! Bucket boundaries are fixed at creation (`&'static` slices), so
//! recording is a short linear scan with no allocation and merging
//! across runs is index-wise addition — exactly what the per-heuristic
//! aggregation needs. Values are `u64` (ready-list lengths, clan
//! counts, list sizes); there is no wall-clock anywhere near a
//! histogram.

/// Default bucket boundaries: powers of two up to 1024. A recorded
/// value lands in the first bucket whose (inclusive) upper bound is
/// `>=` the value; larger values land in the overflow bucket.
pub const DEFAULT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// A monotonic histogram with fixed bucket boundaries plus an
/// overflow bucket, and exact `count` / `sum` / `max` side totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(DEFAULT_BOUNDS)
    }
}

impl Histogram {
    /// An empty histogram over `bounds` (must be non-empty and
    /// strictly increasing).
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(!bounds.is_empty(), "histogram needs at least one bound");
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// The bucket boundaries.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket
    /// (values above the last bound).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear
    /// interpolation inside the bucket holding the target rank.
    ///
    /// A bucket `i` spans `(bounds[i-1], bounds[i]]` (the first starts
    /// at 0; the overflow bucket ends at the exact observed `max`), so
    /// the estimate is monotone in `q`, never exceeds `max`, and is
    /// exact whenever the rank lands in a single-value bucket. Returns
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if below + c < rank {
                below += c;
                continue;
            }
            let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
            let hi = if i < self.bounds.len() {
                self.bounds[i]
            } else {
                self.max
            };
            let frac = (rank - below) as f64 / c as f64;
            let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * frac;
            return (est.round() as u64).min(self.max);
        }
        self.max
    }

    /// Median estimate; see [`Histogram::quantile`].
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate; see [`Histogram::quantile`].
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate; see [`Histogram::quantile`].
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds `other`'s observations into `self`. Panics if the bucket
    /// boundaries differ (merging across schemas is meaningless).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_the_first_bucket() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bound_values_are_inclusive_upper_edges() {
        static BOUNDS: &[u64] = &[10, 20, 30];
        let mut h = Histogram::new(BOUNDS);
        h.record(10); // exactly the first bound: first bucket
        h.record(11); // just above: second bucket
        h.record(30); // exactly the max bound: last real bucket
        assert_eq!(h.bucket_counts(), &[1, 1, 1, 0]);
    }

    #[test]
    fn overflow_bucket_catches_values_above_the_max_bound() {
        static BOUNDS: &[u64] = &[10, 20];
        let mut h = Histogram::new(BOUNDS);
        h.record(21);
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts(), &[0, 0, 2]);
        assert_eq!(h.max(), u64::MAX);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn counts_and_mean_accumulate() {
        let mut h = Histogram::default();
        for v in [1, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert!(!h.is_empty());
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(1);
        a.record(2000);
        b.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bucket_counts()[0], 2); // two 1s
        assert_eq!(*a.bucket_counts().last().unwrap(), 1); // the 2000
        assert_eq!(a.max(), 2000);
        assert_eq!(a.sum(), 2005);
    }

    #[test]
    #[should_panic(expected = "bounds must match")]
    fn merge_rejects_mismatched_bounds() {
        static OTHER: &[u64] = &[5];
        let mut a = Histogram::default();
        a.merge(&Histogram::new(OTHER));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        static BOUNDS: &[u64] = &[10, 20, 40];
        let mut h = Histogram::new(BOUNDS);
        // 10 values in (0,10], 10 in (10,20]: ranks 1..=10 map across
        // the first bucket, 11..=20 across the second.
        for _ in 0..10 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(15);
        }
        assert_eq!(h.quantile(0.05), 1); // rank 1 of 20 → 1/10 into (0,10]
        assert_eq!(h.p50(), 10); // rank 10 → upper edge of the first bucket
        assert_eq!(h.quantile(0.55), 11); // rank 11 → 1/10 into (10,20]
        assert_eq!(h.quantile(1.0), 15); // clamped to the observed max
    }

    #[test]
    fn quantiles_are_monotone_across_buckets() {
        let mut h = Histogram::default();
        for v in [0, 1, 3, 3, 9, 17, 40, 100, 700, 5000] {
            h.record(v);
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile({i}%) = {q} < {prev}");
            prev = q;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn quantiles_never_exceed_the_observed_max() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(3); // bucket (2,4], but nothing above 3 was seen
        }
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p99(), 3);
        // The overflow bucket interpolates toward the exact max.
        let mut h = Histogram::default();
        h.record(9_000);
        assert_eq!(h.p99(), 9_000);
        // Empty histograms report 0 everywhere.
        assert_eq!(Histogram::default().p95(), 0);
    }
}
