//! Monotonic fixed-bucket histograms.
//!
//! Bucket boundaries are fixed at creation (`&'static` slices), so
//! recording is a short linear scan with no allocation and merging
//! across runs is index-wise addition — exactly what the per-heuristic
//! aggregation needs. Values are `u64` (ready-list lengths, clan
//! counts, list sizes); there is no wall-clock anywhere near a
//! histogram.

/// Default bucket boundaries: powers of two up to 1024. A recorded
/// value lands in the first bucket whose (inclusive) upper bound is
/// `>=` the value; larger values land in the overflow bucket.
pub const DEFAULT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// A monotonic histogram with fixed bucket boundaries plus an
/// overflow bucket, and exact `count` / `sum` / `max` side totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(DEFAULT_BOUNDS)
    }
}

impl Histogram {
    /// An empty histogram over `bounds` (must be non-empty and
    /// strictly increasing).
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(!bounds.is_empty(), "histogram needs at least one bound");
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// The bucket boundaries.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket
    /// (values above the last bound).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear
    /// interpolation inside the bucket holding the target rank.
    ///
    /// A bucket `i` spans `(bounds[i-1], bounds[i]]` (the first starts
    /// at 0), so the estimate is monotone in `q`, never exceeds `max`,
    /// and is exact whenever the rank lands in a single-value bucket.
    /// A rank landing in the overflow bucket reports the exact
    /// observed `max`: the bucket has no finite upper edge to
    /// interpolate against, and interpolating from the last bound
    /// produced estimates *below* every observation in the bucket
    /// (degenerating to a zero-width bucket when merges leave
    /// `bounds.last() >= max`). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if below + c < rank {
                below += c;
                continue;
            }
            if i == self.bounds.len() {
                // Overflow bucket: its only trustworthy edge is the
                // observed max itself.
                return self.max;
            }
            let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
            let hi = self.bounds[i];
            let frac = (rank - below) as f64 / c as f64;
            let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * frac;
            return (est.round() as u64).min(self.max);
        }
        self.max
    }

    /// Median estimate; see [`Histogram::quantile`].
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate; see [`Histogram::quantile`].
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate; see [`Histogram::quantile`].
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds `other`'s observations into `self`. Panics if the bucket
    /// boundaries differ (merging across schemas is meaningless).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_the_first_bucket() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bound_values_are_inclusive_upper_edges() {
        static BOUNDS: &[u64] = &[10, 20, 30];
        let mut h = Histogram::new(BOUNDS);
        h.record(10); // exactly the first bound: first bucket
        h.record(11); // just above: second bucket
        h.record(30); // exactly the max bound: last real bucket
        assert_eq!(h.bucket_counts(), &[1, 1, 1, 0]);
    }

    #[test]
    fn overflow_bucket_catches_values_above_the_max_bound() {
        static BOUNDS: &[u64] = &[10, 20];
        let mut h = Histogram::new(BOUNDS);
        h.record(21);
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts(), &[0, 0, 2]);
        assert_eq!(h.max(), u64::MAX);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn counts_and_mean_accumulate() {
        let mut h = Histogram::default();
        for v in [1, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert!(!h.is_empty());
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(1);
        a.record(2000);
        b.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bucket_counts()[0], 2); // two 1s
        assert_eq!(*a.bucket_counts().last().unwrap(), 1); // the 2000
        assert_eq!(a.max(), 2000);
        assert_eq!(a.sum(), 2005);
    }

    #[test]
    #[should_panic(expected = "bounds must match")]
    fn merge_rejects_mismatched_bounds() {
        static OTHER: &[u64] = &[5];
        let mut a = Histogram::default();
        a.merge(&Histogram::new(OTHER));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        static BOUNDS: &[u64] = &[10, 20, 40];
        let mut h = Histogram::new(BOUNDS);
        // 10 values in (0,10], 10 in (10,20]: ranks 1..=10 map across
        // the first bucket, 11..=20 across the second.
        for _ in 0..10 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(15);
        }
        assert_eq!(h.quantile(0.05), 1); // rank 1 of 20 → 1/10 into (0,10]
        assert_eq!(h.p50(), 10); // rank 10 → upper edge of the first bucket
        assert_eq!(h.quantile(0.55), 11); // rank 11 → 1/10 into (10,20]
        assert_eq!(h.quantile(1.0), 15); // clamped to the observed max
    }

    #[test]
    fn quantiles_are_monotone_across_buckets() {
        let mut h = Histogram::default();
        for v in [0, 1, 3, 3, 9, 17, 40, 100, 700, 5000] {
            h.record(v);
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile({i}%) = {q} < {prev}");
            prev = q;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn quantiles_never_exceed_the_observed_max() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(3); // bucket (2,4], but nothing above 3 was seen
        }
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p99(), 3);
        // The overflow bucket reports the exact max.
        let mut h = Histogram::default();
        h.record(9_000);
        assert_eq!(h.p99(), 9_000);
        // Empty histograms report 0 everywhere.
        assert_eq!(Histogram::default().p95(), 0);
    }

    #[test]
    fn overflow_bucket_quantiles_report_the_exact_max() {
        static BOUNDS: &[u64] = &[10, 20];
        let mut h = Histogram::new(BOUNDS);
        for _ in 0..4 {
            h.record(100);
        }
        // Every observation is 100, yet the pre-fix interpolation from
        // the last bound reported p50 = 60 — a value *no* observation
        // ever took and 40% below every one of them.
        assert_eq!(h.p50(), 100);
        assert_eq!(h.quantile(0.25), 100);
        assert_eq!(h.quantile(1.0), 100);
    }

    /// Deterministic SplitMix64 for the property tests below — keeps
    /// the crate free of dev-only RNG dependencies.
    fn split_mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn merge_then_quantile_properties_hold_on_random_histograms() {
        // Properties, over 200 random shard sets: (1) merging shards
        // is indistinguishable from recording every value into one
        // histogram; (2) quantiles of the merged histogram are
        // monotone in q and bounded by the merged max; (3) any rank
        // landing in the overflow bucket reports exactly the merged
        // max, even when only one shard ever overflowed.
        let mut state = 0x1994_0c99_u64;
        for case in 0..200 {
            let mut merged = Histogram::default();
            let mut whole = Histogram::default();
            let shards = 1 + split_mix(&mut state) % 4;
            for _ in 0..shards {
                let mut shard = Histogram::default();
                let n = split_mix(&mut state) % 30;
                for _ in 0..n {
                    let v = match split_mix(&mut state) % 3 {
                        0 => split_mix(&mut state) % 8,
                        1 => split_mix(&mut state) % 1024,
                        _ => 1025 + split_mix(&mut state) % 100_000,
                    };
                    shard.record(v);
                    whole.record(v);
                }
                merged.merge(&shard);
            }
            assert_eq!(merged, whole, "case {case}: merge == record-everything");
            let mut prev = 0;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let est = merged.quantile(q);
                assert_eq!(est, whole.quantile(q), "case {case} q={q}");
                assert!(est >= prev, "case {case} q={q}: {est} < {prev}");
                assert!(est <= merged.max(), "case {case} q={q}: {est} > max");
                prev = est;
            }
            let overflow = *merged.bucket_counts().last().unwrap();
            if overflow > 0 {
                let below: u64 = merged.bucket_counts()[..merged.bucket_counts().len() - 1]
                    .iter()
                    .sum();
                // The smallest q whose rank reaches the overflow
                // bucket, and the largest — both must report max.
                let q_first = (below + 1) as f64 / merged.count() as f64;
                assert_eq!(merged.quantile(q_first), merged.max(), "case {case}");
                assert_eq!(merged.quantile(1.0), merged.max(), "case {case}");
            }
        }
    }
}
