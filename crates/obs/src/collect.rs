//! The thread-local run collector and the recording entry points.
//!
//! A [`RunScope`] installs a fresh [`RunStats`] collector for the
//! current thread; every [`counter_add`] / [`gauge_set`] /
//! [`hist_record`] / [`span_enter`] on that thread records into the
//! innermost open scope until [`RunScope::finish`] harvests it.
//! Scopes nest (a harvested inner scope does not disturb the outer
//! one), and each thread has its own stack, so the collector is safe
//! under `dagsched-par`'s scoped worker threads without any locking.
//!
//! With the `enabled` feature off every function here is an empty
//! `#[inline(always)]` shim and [`active`] is a constant `false`.

use crate::stats::RunStats;

#[cfg(feature = "enabled")]
mod imp {
    use super::RunStats;
    use std::cell::RefCell;
    use std::time::Instant;

    /// One installed run collector: the stats being harvested plus
    /// the stack of currently-open span-tree node ids (so a span
    /// entered while another is open becomes its tree child).
    #[derive(Default)]
    struct Collector {
        stats: RunStats,
        open: Vec<u32>,
    }

    thread_local! {
        static STACK: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
    }

    #[inline]
    pub fn active() -> bool {
        STACK.with(|s| !s.borrow().is_empty())
    }

    /// Guard for one run's collector; see [`super::run_scope`].
    #[must_use = "a RunScope records nothing after it is dropped; call finish() to harvest"]
    pub struct RunScope {
        depth: usize,
    }

    /// Installs a fresh collector; see [`super::span_enter`]'s module
    /// docs for the attribution model.
    pub fn run_scope() -> RunScope {
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(Collector::default());
            s.len()
        });
        RunScope { depth }
    }

    impl RunScope {
        /// Harvests the stats recorded since the scope opened.
        pub fn finish(self) -> RunStats {
            let mut stats = STACK.with(|s| {
                let mut s = s.borrow_mut();
                debug_assert_eq!(s.len(), self.depth, "run scopes must nest");
                s.pop().map(|c| c.stats).unwrap_or_default()
            });
            std::mem::forget(self);
            stats.sort();
            stats
        }
    }

    impl Drop for RunScope {
        fn drop(&mut self) {
            // Abandoned without finish(): discard the collector.
            STACK.with(|s| {
                let mut s = s.borrow_mut();
                if s.len() == self.depth {
                    s.pop();
                }
            });
        }
    }

    #[inline]
    fn with_top(f: impl FnOnce(&mut RunStats)) {
        STACK.with(|s| {
            if let Some(top) = s.borrow_mut().last_mut() {
                f(&mut top.stats);
            }
        });
    }

    #[inline]
    pub fn counter_add(name: &'static str, delta: u64) {
        with_top(|s| s.add_counter(name, delta));
    }

    #[inline]
    pub fn gauge_set(name: &'static str, value: u64) {
        with_top(|s| s.set_gauge(name, value));
    }

    #[inline]
    pub fn hist_record(name: &'static str, value: u64) {
        with_top(|s| s.record_hist(name, crate::hist::DEFAULT_BOUNDS, value));
    }

    /// Span guard; see [`super::span_enter`].
    pub struct SpanGuard {
        /// `(name, collector depth at entry, tree node id, start)`.
        open: Option<(&'static str, usize, u32, Instant)>,
    }

    /// Opens a span; prefer the [`span!`](crate::span) macro.
    pub fn span_enter(name: &'static str) -> SpanGuard {
        // The clock is read only when a collector is listening, and
        // only at the boundaries.
        let open = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let depth = s.len();
            let top = s.last_mut()?;
            let parent = top.open.last().copied();
            let node = top.stats.tree_entry(parent, name);
            top.open.push(node);
            Some((name, depth, node, Instant::now()))
        });
        SpanGuard { open }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some((name, depth, node, start)) = self.open.take() {
                let ns = start.elapsed().as_nanos();
                // Record into the collector the span *opened under*
                // (not whatever is top-most at drop), so a span
                // spanning an inner scope's lifetime still attributes
                // to its own run. If that collector is gone the
                // measurement is dropped, matching the abandoned-scope
                // contract.
                STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    // `depth >= 1` always: the guard only opens when a
                    // collector was installed.
                    let Some(collector) = s.get_mut(depth - 1) else {
                        return;
                    };
                    if collector.open.last() == Some(&node) {
                        collector.open.pop();
                    }
                    collector.stats.tree_record(node, ns);
                    collector.stats.record_span(name, ns);
                });
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::RunStats;

    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    /// Disabled-build stand-in: carries nothing.
    #[must_use = "a RunScope records nothing after it is dropped; call finish() to harvest"]
    pub struct RunScope;

    /// Installs nothing; the unit guard is free.
    #[inline(always)]
    pub fn run_scope() -> RunScope {
        RunScope
    }

    impl RunScope {
        /// Always yields an empty [`RunStats`].
        pub fn finish(self) -> RunStats {
            RunStats::default()
        }
    }

    /// Disabled-build stand-in: dropping it does nothing.
    pub struct SpanGuard;

    /// Opens nothing; the unit guard is free.
    #[inline(always)]
    pub fn span_enter(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    #[inline(always)]
    pub fn gauge_set(_name: &'static str, _value: u64) {}

    #[inline(always)]
    pub fn hist_record(_name: &'static str, _value: u64) {}
}

pub use imp::{run_scope, span_enter, RunScope, SpanGuard};

/// `true` when a run collector is installed on this thread (constant
/// `false` with the `enabled` feature off). Use it to skip *computing*
/// derived values whose recording would otherwise be a no-op:
///
/// ```
/// # use dagsched_obs as obs;
/// # let expensive_count = || 0u64;
/// if obs::active() {
///     obs::counter_add("dsc.edges_zeroed", expensive_count());
/// }
/// ```
#[inline(always)]
pub fn active() -> bool {
    imp::active()
}

/// Adds `delta` to the named counter of the current run scope.
#[inline(always)]
pub fn counter_add(name: &'static str, delta: u64) {
    imp::counter_add(name, delta);
}

/// Sets the named gauge of the current run scope (last write wins
/// within a run; cross-run aggregation keeps the max).
#[inline(always)]
pub fn gauge_set(name: &'static str, value: u64) {
    imp::gauge_set(name, value);
}

/// Records `value` into the named histogram (default power-of-two
/// buckets) of the current run scope.
#[inline(always)]
pub fn hist_record(name: &'static str, value: u64) {
    imp::hist_record(name, value);
}

/// Records one occurrence of a named event. Events are counters with
/// occurrence semantics — `event("harness.incident")` is
/// `counter_add("harness.incident", 1)`.
#[inline(always)]
pub fn event(name: &'static str) {
    imp::counter_add(name, 1);
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn scope_collects_and_harvests() {
        assert!(!active());
        let scope = run_scope();
        assert!(active());
        counter_add("t.count", 2);
        gauge_set("t.gauge", 7);
        hist_record("t.hist", 3);
        event("t.event");
        {
            let _s = span_enter("t.span");
        }
        let stats = scope.finish();
        assert!(!active());
        assert_eq!(stats.counter("t.count"), 2);
        assert_eq!(stats.counter("t.event"), 1);
        assert_eq!(stats.gauge("t.gauge"), Some(7));
        assert_eq!(stats.histogram("t.hist").unwrap().count(), 1);
        let sp = stats.span("t.span").unwrap();
        assert_eq!(sp.calls, 1);
    }

    #[test]
    fn records_without_a_scope_are_dropped() {
        counter_add("orphan", 1);
        let stats = run_scope().finish();
        assert_eq!(stats.counter("orphan"), 0);
    }

    #[test]
    fn scopes_nest_independently() {
        let outer = run_scope();
        counter_add("c", 1);
        {
            let inner = run_scope();
            counter_add("c", 10);
            let s = inner.finish();
            assert_eq!(s.counter("c"), 10);
        }
        counter_add("c", 2);
        assert_eq!(outer.finish().counter("c"), 3);
    }

    #[test]
    fn abandoned_scope_restores_the_stack() {
        {
            let _scope = run_scope();
            assert!(active());
        }
        assert!(!active());
    }

    #[test]
    fn spans_nest_and_both_record() {
        let scope = run_scope();
        {
            let _a = crate::span!("outer");
            let _b = crate::span!("inner");
        }
        let stats = scope.finish();
        assert_eq!(stats.span("outer").unwrap().calls, 1);
        assert_eq!(stats.span("inner").unwrap().calls, 1);
    }

    #[test]
    fn span_tree_records_parent_links_in_entry_order() {
        let scope = run_scope();
        for _ in 0..2 {
            let _a = crate::span!("outer");
            {
                let _b = crate::span!("inner");
            }
            let _c = crate::span!("other");
        }
        {
            // Same name at the root is a *different* path node.
            let _d = crate::span!("inner");
        }
        let stats = scope.finish();
        let tree = stats.span_tree();
        assert_eq!(tree.len(), 4);
        // Ids follow first-entry order; parents precede children.
        assert_eq!(tree[0].name, "outer");
        assert_eq!(tree[0].parent, None);
        assert_eq!(tree[1].name, "inner");
        assert_eq!(tree[1].parent, Some(0));
        assert_eq!(tree[2].name, "other");
        assert_eq!(tree[2].parent, Some(0));
        assert_eq!(tree[3].name, "inner");
        assert_eq!(tree[3].parent, None);
        assert_eq!(stats.tree_node(&["outer", "inner"]).unwrap().calls, 2);
        assert_eq!(stats.tree_node(&["inner"]).unwrap().calls, 1);
        assert_eq!(stats.tree_children(Some(0)), vec![1, 2]);
        // The flat table still aggregates by name alone.
        assert_eq!(stats.span("inner").unwrap().calls, 3);
    }

    #[test]
    fn span_opened_in_outer_scope_attributes_to_outer_scope() {
        let outer = run_scope();
        let stats = {
            let guard = crate::span!("crossing");
            let inner = run_scope();
            drop(guard); // dropped while the inner scope is top-most
            inner.finish()
        };
        assert!(stats.span("crossing").is_none());
        let stats = outer.finish();
        assert_eq!(stats.span("crossing").unwrap().calls, 1);
        assert_eq!(stats.tree_node(&["crossing"]).unwrap().calls, 1);
    }

    #[test]
    fn worker_threads_have_independent_collectors() {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let scope = run_scope();
                    counter_add("w", i + 1);
                    scope.finish().counter("w")
                })
            })
            .collect();
        let mut got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }
}
