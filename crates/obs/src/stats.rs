//! Per-run metric snapshots: what one (graph, heuristic) run recorded.

use crate::hist::Histogram;

/// Aggregated timing of one span name within a run: how many times
/// the span was entered and the total wall-clock spent inside it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span was entered.
    pub calls: u64,
    /// Total nanoseconds across all calls. This is the **only**
    /// nondeterministic quantity in a [`RunStats`]; telemetry
    /// consumers that need byte-stable output strip `ns` fields.
    pub total_ns: u128,
}

/// One node of a run's span tree: a span name aggregated *per call
/// path* (two `dsc.cluster` entries under the same parent share one
/// node; the same name under a different parent gets its own).
///
/// A node's id is its index in [`RunStats::span_tree`]; ids are
/// assigned in first-entry order, so a parent's id is always smaller
/// than its children's and the whole layout is a pure function of the
/// (deterministic) control flow. Only `total_ns` is nondeterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name, as passed to [`span!`](crate::span).
    pub name: &'static str,
    /// Id (= index) of the enclosing span, or `None` for a root.
    pub parent: Option<u32>,
    /// Number of times this path was entered.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls (the only
    /// nondeterministic field, serialized under the `"ns"` key).
    pub total_ns: u128,
}

/// Everything one run recorded, harvested by
/// [`RunScope::finish`](crate::RunScope::finish).
///
/// All four flat tables are kept sorted by metric name so rendering
/// and JSON encoding are deterministic; the span tree keeps
/// first-entry order because node ids are positional. Entries are
/// small (a handful of metrics per heuristic), so storage is flat
/// vectors with linear lookup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Histogram)>,
    spans: Vec<(&'static str, SpanStat)>,
    tree: Vec<SpanNode>,
}

impl RunStats {
    /// `true` when nothing was recorded (always the case with the
    /// `enabled` feature off).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.tree.is_empty()
    }

    /// The value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        lookup(&self.counters, name).copied().unwrap_or(0)
    }

    /// The last value set for gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// The histogram called `name`, if anything was recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        lookup(&self.histograms, name)
    }

    /// The span stats for `name`, if the span was ever entered.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        lookup(&self.spans, name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &[(&'static str, u64)] {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> &[(&'static str, Histogram)] {
        &self.histograms
    }

    /// All spans, sorted by name.
    pub fn spans(&self) -> &[(&'static str, SpanStat)] {
        &self.spans
    }

    /// The hierarchical span tree in id (= first-entry) order. Empty
    /// when no span was opened or with the `enabled` feature off.
    pub fn span_tree(&self) -> &[SpanNode] {
        &self.tree
    }

    /// The ids of `parent`'s direct children (`None` = roots), in
    /// first-entry order.
    pub fn tree_children(&self, parent: Option<u32>) -> Vec<u32> {
        (0..self.tree.len() as u32)
            .filter(|&i| self.tree[i as usize].parent == parent)
            .collect()
    }

    /// Walks the tree along a root-to-leaf `path` of span names and
    /// returns the node it lands on (e.g.
    /// `tree_node(&["run.schedule", "dsc.cluster"])`).
    pub fn tree_node(&self, path: &[&str]) -> Option<&SpanNode> {
        let mut parent: Option<u32> = None;
        let mut found: Option<&SpanNode> = None;
        for name in path {
            let id = (0..self.tree.len() as u32).find(|&i| {
                self.tree[i as usize].parent == parent && self.tree[i as usize].name == *name
            })?;
            found = Some(&self.tree[id as usize]);
            parent = Some(id);
        }
        found
    }

    /// Folds `other` into `self` (counters add, gauges keep the max,
    /// histograms merge bucket-wise, spans add calls and time) — the
    /// cross-run aggregation used by per-heuristic summaries.
    pub fn merge(&mut self, other: &RunStats) {
        for &(name, v) in &other.counters {
            self.add_counter(name, v);
        }
        for &(name, v) in &other.gauges {
            let slot = entry(&mut self.gauges, name, || 0);
            *slot = (*slot).max(v);
        }
        for (name, h) in &other.histograms {
            let slot = entry(&mut self.histograms, name, || Histogram::new(h.bounds()));
            slot.merge(h);
        }
        for &(name, s) in &other.spans {
            let slot = entry(&mut self.spans, name, SpanStat::default);
            slot.calls += s.calls;
            slot.total_ns += s.total_ns;
        }
        // Tree nodes merge by path. `other`'s parents always precede
        // their children (ids are first-entry order), so a single
        // forward pass can remap `other` ids onto `self` ids. New
        // paths are appended in `other` order, which keeps the fold
        // associative including the resulting id assignment.
        let mut remap: Vec<u32> = Vec::with_capacity(other.tree.len());
        for node in &other.tree {
            let parent = node.parent.map(|p| remap[p as usize]);
            let id = self.tree_entry(parent, node.name);
            let slot = &mut self.tree[id as usize];
            slot.calls += node.calls;
            slot.total_ns += node.total_ns;
            remap.push(id);
        }
        self.sort();
    }

    pub(crate) fn add_counter(&mut self, name: &'static str, delta: u64) {
        *entry(&mut self.counters, name, || 0) += delta;
    }

    pub(crate) fn set_gauge(&mut self, name: &'static str, value: u64) {
        *entry(&mut self.gauges, name, || 0) = value;
    }

    pub(crate) fn record_hist(&mut self, name: &'static str, bounds: &'static [u64], value: u64) {
        entry(&mut self.histograms, name, || Histogram::new(bounds)).record(value);
    }

    pub(crate) fn record_span(&mut self, name: &'static str, ns: u128) {
        let s = entry(&mut self.spans, name, SpanStat::default);
        s.calls += 1;
        s.total_ns += ns;
    }

    /// Finds or creates the tree node for `name` under `parent` and
    /// returns its id. Called at span entry, so ids follow entry order.
    pub(crate) fn tree_entry(&mut self, parent: Option<u32>, name: &'static str) -> u32 {
        if let Some(i) = self
            .tree
            .iter()
            .position(|n| n.parent == parent && (std::ptr::eq(n.name, name) || n.name == name))
        {
            return i as u32;
        }
        self.tree.push(SpanNode {
            name,
            parent,
            calls: 0,
            total_ns: 0,
        });
        (self.tree.len() - 1) as u32
    }

    /// Folds one completed call into tree node `id` (ignored if the
    /// node does not exist — a guard can outlive its collector).
    pub(crate) fn tree_record(&mut self, id: u32, ns: u128) {
        if let Some(node) = self.tree.get_mut(id as usize) {
            node.calls += 1;
            node.total_ns += ns;
        }
    }

    /// Sorts every table by name (called on harvest so downstream
    /// encoding is deterministic).
    pub(crate) fn sort(&mut self) {
        self.counters.sort_by_key(|&(n, _)| n);
        self.gauges.sort_by_key(|&(n, _)| n);
        self.histograms.sort_by_key(|&(n, _)| n);
        self.spans.sort_by_key(|&(n, _)| n);
    }
}

fn lookup<'a, T>(table: &'a [(&'static str, T)], name: &str) -> Option<&'a T> {
    table.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
}

fn entry<'a, T>(
    table: &'a mut Vec<(&'static str, T)>,
    name: &'static str,
    init: impl FnOnce() -> T,
) -> &'a mut T {
    // Pointer equality first: the same literal usually interns to the
    // same address, making the hot-path scan a pointer compare.
    if let Some(i) = table
        .iter()
        .position(|(n, _)| std::ptr::eq(*n, name) || *n == name)
    {
        return &mut table[i].1;
    }
    table.push((name, init()));
    &mut table.last_mut().expect("just pushed").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut s = RunStats::default();
        s.add_counter("z.second", 1);
        s.add_counter("a.first", 2);
        s.add_counter("z.second", 3);
        s.sort();
        assert_eq!(s.counter("z.second"), 4);
        assert_eq!(s.counter("a.first"), 2);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.counters()[0].0, "a.first");
    }

    #[test]
    fn gauges_keep_last_write_and_merge_keeps_max() {
        let mut s = RunStats::default();
        s.set_gauge("g", 5);
        s.set_gauge("g", 3);
        assert_eq!(s.gauge("g"), Some(3));
        let mut other = RunStats::default();
        other.set_gauge("g", 9);
        s.merge(&other);
        assert_eq!(s.gauge("g"), Some(9));
    }

    #[test]
    fn merge_folds_all_tables() {
        let mut a = RunStats::default();
        a.add_counter("c", 1);
        a.record_hist("h", crate::DEFAULT_BOUNDS, 4);
        a.record_span("s", 100);
        let mut b = RunStats::default();
        b.add_counter("c", 2);
        b.record_hist("h", crate::DEFAULT_BOUNDS, 9);
        b.record_span("s", 50);
        b.record_span("t", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 13);
        let s = a.span("s").unwrap();
        assert_eq!((s.calls, s.total_ns), (2, 150));
        assert_eq!(a.span("t").unwrap().calls, 1);
        assert!(!a.is_empty());
        assert!(RunStats::default().is_empty());
    }
}
