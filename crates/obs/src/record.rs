//! Telemetry record types and their JSONL encodings.
//!
//! Two record shapes flow through a [`TelemetrySink`](crate::sink::TelemetrySink):
//!
//! * [`RunRecord`] (`schema = `[`RUN_SCHEMA`]) — one line per
//!   (graph, heuristic) run: graph parameters, outcome, incidents and
//!   the harvested [`RunStats`];
//! * [`Summary`] rows (`schema = `[`SUMMARY_SCHEMA`]) — one line per
//!   heuristic at the end of a run, aggregating every run record.
//!
//! Every key is always present (absent values encode as `null`), keys
//! are emitted in a fixed order, and the **only** nondeterministic
//! fields are the ones literally named `"ns"` (span wall-clock).
//! Consumers that need byte-stable output drop those keys; everything
//! else is a pure function of the seeded corpus. The full schema is
//! documented in `docs/OBSERVABILITY.md`.

use crate::json::{write_escaped, write_f64};
use crate::stats::RunStats;

/// Schema tag carried by every per-run record line.
pub const RUN_SCHEMA: &str = "dagsched.run.v1";

/// Schema tag carried by every end-of-run summary line.
pub const SUMMARY_SCHEMA: &str = "dagsched.summary.v1";

/// The graph-side parameters of one run record.
///
/// `nodes`/`edges` always describe the concrete DAG; the corpus
/// parameters (`band`, `anchor_out_degree`, `weights`, `index`) are
/// present for generated corpora and `None` for ad-hoc graphs (e.g.
/// the `dagsched` CLI scheduling a DOT file).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphMeta {
    /// Stable identifier, e.g. `"fine/a4/w1-64/3"` or a file name.
    pub id: String,
    /// Index within its parameter set, when from a corpus.
    pub index: Option<u64>,
    /// Granularity band slug (`"very-fine"` … `"very-coarse"`).
    pub band: Option<String>,
    /// Anchor out-degree of the generator spec.
    pub anchor_out_degree: Option<u64>,
    /// Node-weight range `[lo, hi]` of the generator spec.
    pub weights: Option<(u64, u64)>,
    /// Number of task nodes.
    pub nodes: u64,
    /// Number of dependence edges.
    pub edges: u64,
    /// Sum of node weights (serial execution time).
    pub serial_time: Option<u64>,
    /// Measured granularity of the concrete DAG.
    pub granularity: Option<f64>,
}

/// A harness incident attached to a run record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentMeta {
    /// Heuristic whose attempt faulted.
    pub heuristic: String,
    /// Fault kind: `"panic"`, `"invalid-schedule"` or
    /// `"deadline-exceeded"`.
    pub kind: String,
    /// Deterministic one-line incident summary.
    pub summary: String,
}

/// One (graph, heuristic) run: the unit of the JSONL telemetry stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// The graph side of the run.
    pub graph: GraphMeta,
    /// Heuristic that was asked to schedule.
    pub heuristic: String,
    /// Scheduler whose output was kept (differs from `heuristic`
    /// when a harness fallback resolved the run).
    pub scheduled_by: Option<String>,
    /// `false` when every attempt in the chain faulted.
    pub ok: bool,
    /// Processors used by the accepted schedule.
    pub processors: Option<u64>,
    /// Makespan of the accepted schedule.
    pub makespan: Option<u64>,
    /// `serial_time / makespan`.
    pub speedup: Option<f64>,
    /// Incidents observed while producing the schedule.
    pub incidents: Vec<IncidentMeta>,
    /// Metrics harvested from the run's collector scope.
    pub stats: RunStats,
}

impl RunRecord {
    /// Encodes the record as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":");
        write_escaped(&mut out, RUN_SCHEMA);
        out.push_str(",\"graph\":");
        self.graph.write_json(&mut out);
        out.push_str(",\"heuristic\":");
        write_escaped(&mut out, &self.heuristic);
        out.push_str(",\"scheduled_by\":");
        write_opt_str(&mut out, self.scheduled_by.as_deref());
        out.push_str(",\"ok\":");
        out.push_str(if self.ok { "true" } else { "false" });
        out.push_str(",\"processors\":");
        write_opt_u64(&mut out, self.processors);
        out.push_str(",\"makespan\":");
        write_opt_u64(&mut out, self.makespan);
        out.push_str(",\"speedup\":");
        write_opt_f64(&mut out, self.speedup);
        out.push_str(",\"incidents\":[");
        for (i, inc) in self.incidents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            inc.write_json(&mut out);
        }
        out.push(']');
        write_stats_fields(&mut out, &self.stats);
        out.push('}');
        out
    }
}

impl GraphMeta {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"id\":");
        write_escaped(out, &self.id);
        out.push_str(",\"index\":");
        write_opt_u64(out, self.index);
        out.push_str(",\"band\":");
        write_opt_str(out, self.band.as_deref());
        out.push_str(",\"anchor_out_degree\":");
        write_opt_u64(out, self.anchor_out_degree);
        out.push_str(",\"weights\":");
        match self.weights {
            Some((lo, hi)) => {
                out.push('[');
                out.push_str(&lo.to_string());
                out.push(',');
                out.push_str(&hi.to_string());
                out.push(']');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"nodes\":");
        out.push_str(&self.nodes.to_string());
        out.push_str(",\"edges\":");
        out.push_str(&self.edges.to_string());
        out.push_str(",\"serial_time\":");
        write_opt_u64(out, self.serial_time);
        out.push_str(",\"granularity\":");
        write_opt_f64(out, self.granularity);
        out.push('}');
    }
}

impl IncidentMeta {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"heuristic\":");
        write_escaped(out, &self.heuristic);
        out.push_str(",\"kind\":");
        write_escaped(out, &self.kind);
        out.push_str(",\"summary\":");
        write_escaped(out, &self.summary);
        out.push('}');
    }
}

/// Cross-run aggregate for one heuristic; one summary JSONL line each.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SummaryRow {
    /// Heuristic name.
    pub heuristic: String,
    /// Total runs attempted.
    pub runs: u64,
    /// Runs that produced a schedule (possibly via fallback).
    pub ok: u64,
    /// Runs resolved by a different scheduler than requested.
    pub fallbacks: u64,
    /// Total incidents across all runs.
    pub incidents: u64,
    speedup_sum: f64,
    speedup_count: u64,
    speedup_min: f64,
    speedup_max: f64,
    /// Metrics merged across all of this heuristic's runs.
    pub stats: RunStats,
}

impl SummaryRow {
    /// Mean speedup over runs that reported one.
    pub fn mean_speedup(&self) -> Option<f64> {
        (self.speedup_count > 0).then(|| self.speedup_sum / self.speedup_count as f64)
    }

    /// Smallest observed speedup.
    pub fn min_speedup(&self) -> Option<f64> {
        (self.speedup_count > 0).then_some(self.speedup_min)
    }

    /// Largest observed speedup.
    pub fn max_speedup(&self) -> Option<f64> {
        (self.speedup_count > 0).then_some(self.speedup_max)
    }

    fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":");
        write_escaped(&mut out, SUMMARY_SCHEMA);
        out.push_str(",\"heuristic\":");
        write_escaped(&mut out, &self.heuristic);
        out.push_str(",\"runs\":");
        out.push_str(&self.runs.to_string());
        out.push_str(",\"ok\":");
        out.push_str(&self.ok.to_string());
        out.push_str(",\"fallbacks\":");
        out.push_str(&self.fallbacks.to_string());
        out.push_str(",\"incidents\":");
        out.push_str(&self.incidents.to_string());
        out.push_str(",\"speedup\":{\"mean\":");
        write_opt_f64(&mut out, self.mean_speedup());
        out.push_str(",\"min\":");
        write_opt_f64(&mut out, self.min_speedup());
        out.push_str(",\"max\":");
        write_opt_f64(&mut out, self.max_speedup());
        out.push('}');
        write_stats_fields(&mut out, &self.stats);
        out.push('}');
        out
    }
}

/// End-of-run aggregation over every [`RunRecord`], keyed by heuristic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    rows: Vec<SummaryRow>,
}

impl Summary {
    /// Folds one run record into the aggregate.
    pub fn observe(&mut self, record: &RunRecord) {
        let row = match self
            .rows
            .iter()
            .position(|r| r.heuristic == record.heuristic)
        {
            Some(i) => &mut self.rows[i],
            None => {
                self.rows.push(SummaryRow {
                    heuristic: record.heuristic.clone(),
                    speedup_min: f64::INFINITY,
                    speedup_max: f64::NEG_INFINITY,
                    ..SummaryRow::default()
                });
                self.rows.last_mut().expect("just pushed")
            }
        };
        row.runs += 1;
        row.ok += u64::from(record.ok);
        let fell_back = matches!(&record.scheduled_by,
                                 Some(by) if *by != record.heuristic);
        row.fallbacks += u64::from(fell_back);
        row.incidents += record.incidents.len() as u64;
        if let Some(s) = record.speedup {
            row.speedup_sum += s;
            row.speedup_count += 1;
            row.speedup_min = row.speedup_min.min(s);
            row.speedup_max = row.speedup_max.max(s);
        }
        row.stats.merge(&record.stats);
    }

    /// The per-heuristic rows, sorted by heuristic name.
    pub fn rows(&self) -> Vec<&SummaryRow> {
        let mut rows: Vec<&SummaryRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| a.heuristic.cmp(&b.heuristic));
        rows
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One [`SUMMARY_SCHEMA`] JSON line per heuristic, sorted by name.
    pub fn to_json_lines(&self) -> Vec<String> {
        self.rows().into_iter().map(|r| r.to_json()).collect()
    }

    /// Renders the aggregate as a markdown section: the summary table
    /// plus, per heuristic, its non-timing metrics and span timings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("### Instrumentation summary\n\n");
        out.push_str(
            "| Heuristic | Runs | OK | Fallbacks | Incidents | Speedup (mean) | Speedup (min..max) |\n",
        );
        out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
        for row in self.rows() {
            let mean = row
                .mean_speedup()
                .map_or_else(|| "-".into(), |v| format!("{v:.3}"));
            let range = match (row.min_speedup(), row.max_speedup()) {
                (Some(lo), Some(hi)) => format!("{lo:.3}..{hi:.3}"),
                _ => "-".into(),
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                row.heuristic, row.runs, row.ok, row.fallbacks, row.incidents, mean, range
            ));
        }
        let mut any_metrics = false;
        for row in self.rows() {
            if row.stats.is_empty() {
                continue;
            }
            if !any_metrics {
                out.push_str("\nPer-heuristic metrics:\n\n");
                any_metrics = true;
            }
            out.push_str(&format!("- **{}**:", row.heuristic));
            let mut parts: Vec<String> = Vec::new();
            for &(name, v) in row.stats.counters() {
                parts.push(format!("{name}={v}"));
            }
            for &(name, v) in row.stats.gauges() {
                parts.push(format!("{name}={v} (max)"));
            }
            for (name, h) in row.stats.histograms() {
                parts.push(format!(
                    "{name}{{n={}, mean={:.1}, max={}}}",
                    h.count(),
                    h.mean(),
                    h.max()
                ));
            }
            for &(name, s) in row.stats.spans() {
                let ms = s.total_ns as f64 / 1e6;
                parts.push(format!("{name}[{}x {ms:.2}ms]", s.calls));
            }
            out.push(' ');
            out.push_str(&parts.join(", "));
            out.push('\n');
        }
        out
    }
}

fn write_opt_str(out: &mut String, v: Option<&str>) {
    match v {
        Some(s) => write_escaped(out, s),
        None => out.push_str("null"),
    }
}

fn write_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(n) => out.push_str(&n.to_string()),
        None => out.push_str("null"),
    }
}

fn write_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(f) => write_f64(out, f),
        None => out.push_str("null"),
    }
}

/// Writes the four `RunStats` tables as the trailing
/// `"counters"/"gauges"/"hists"/"spans"` members (leading comma
/// included, enclosing braces not).
fn write_stats_fields(out: &mut String, stats: &RunStats) {
    out.push_str(",\"counters\":{");
    for (i, &(name, v)) in stats.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, &(name, v)) in stats.gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"hists\":{");
    for (i, (name, h)) in stats.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, name);
        out.push_str(":{\"count\":");
        out.push_str(&h.count().to_string());
        out.push_str(",\"sum\":");
        out.push_str(&h.sum().to_string());
        out.push_str(",\"max\":");
        out.push_str(&h.max().to_string());
        out.push_str(",\"mean\":");
        write_f64(out, h.mean());
        out.push_str(",\"bounds\":[");
        for (j, b) in h.bounds().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"buckets\":[");
        for (j, c) in h.bucket_counts().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("]}");
    }
    out.push_str("},\"spans\":{");
    for (i, &(name, s)) in stats.spans().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, name);
        out.push_str(":{\"calls\":");
        out.push_str(&s.calls.to_string());
        // "ns" is the one nondeterministic key in the whole schema.
        out.push_str(",\"ns\":");
        out.push_str(&s.total_ns.to_string());
        out.push('}');
    }
    // The hierarchical view of the same spans: node ids are array
    // positions (first-entry order), `parent` links nodes into the
    // per-run phase tree. Timing stays under the `"ns"` key so the
    // determinism contract is unchanged.
    out.push_str("},\"span_tree\":[");
    for (i, node) in stats.span_tree().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_escaped(out, node.name);
        out.push_str(",\"parent\":");
        match node.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"calls\":");
        out.push_str(&node.calls.to_string());
        out.push_str(",\"ns\":");
        out.push_str(&node.total_ns.to_string());
        out.push('}');
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample_record() -> RunRecord {
        let mut stats = RunStats::default();
        stats.add_counter("dsc.edges_zeroed", 12);
        stats.set_gauge("clans.tree_clans", 9);
        stats.record_hist("mh.ready_list_len", crate::DEFAULT_BOUNDS, 3);
        stats.record_span("run.schedule", 1_500);
        stats.sort();
        RunRecord {
            graph: GraphMeta {
                id: "fine/a4/w1-64/3".into(),
                index: Some(3),
                band: Some("fine".into()),
                anchor_out_degree: Some(4),
                weights: Some((1, 64)),
                nodes: 50,
                edges: 120,
                serial_time: Some(900),
                granularity: Some(0.42),
            },
            heuristic: "DSC".into(),
            scheduled_by: Some("HU".into()),
            ok: true,
            processors: Some(5),
            makespan: Some(300),
            speedup: Some(3.0),
            incidents: vec![IncidentMeta {
                heuristic: "DSC".into(),
                kind: "panic".into(),
                summary: "DSC panicked: boom \"quoted\"".into(),
            }],
            stats,
        }
    }

    #[test]
    fn run_record_round_trips_through_the_parser() {
        let line = sample_record().to_json();
        let j = Json::parse(&line).expect("valid JSON");
        assert_eq!(j.get("schema").unwrap().as_str(), Some(RUN_SCHEMA));
        assert_eq!(j.get("heuristic").unwrap().as_str(), Some("DSC"));
        assert_eq!(j.get("scheduled_by").unwrap().as_str(), Some("HU"));
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(j.get("makespan").unwrap().as_u64(), Some(300));
        let graph = j.get("graph").unwrap();
        assert_eq!(graph.get("band").unwrap().as_str(), Some("fine"));
        assert_eq!(graph.get("weights").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(graph.get("nodes").unwrap().as_u64(), Some(50));
        let incs = j.get("incidents").unwrap().as_arr().unwrap();
        assert_eq!(incs.len(), 1);
        assert_eq!(incs[0].get("kind").unwrap().as_str(), Some("panic"));
        let counters = j.get("counters").unwrap();
        assert_eq!(counters.get("dsc.edges_zeroed").unwrap().as_u64(), Some(12));
        let hist = j.get("hists").unwrap().get("mh.ready_list_len").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(
            hist.get("bounds").unwrap().as_arr().unwrap().len() + 1,
            hist.get("buckets").unwrap().as_arr().unwrap().len()
        );
        let span = j.get("spans").unwrap().get("run.schedule").unwrap();
        assert_eq!(span.get("calls").unwrap().as_u64(), Some(1));
        assert_eq!(span.get("ns").unwrap().as_u64(), Some(1_500));
    }

    #[test]
    fn absent_values_encode_as_null() {
        let record = RunRecord {
            graph: GraphMeta {
                id: "adhoc".into(),
                nodes: 3,
                edges: 2,
                ..GraphMeta::default()
            },
            heuristic: "MCP".into(),
            ok: false,
            ..RunRecord::default()
        };
        let j = Json::parse(&record.to_json()).unwrap();
        assert_eq!(j.get("makespan"), Some(&Json::Null));
        assert_eq!(j.get("speedup"), Some(&Json::Null));
        assert_eq!(j.get("scheduled_by"), Some(&Json::Null));
        assert_eq!(j.get("graph").unwrap().get("band"), Some(&Json::Null));
        assert_eq!(j.get("graph").unwrap().get("weights"), Some(&Json::Null));
        assert_eq!(j.get("incidents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn summary_aggregates_per_heuristic() {
        let mut summary = Summary::default();
        assert!(summary.is_empty());
        let mut rec = sample_record();
        summary.observe(&rec); // DSC via HU fallback, speedup 3.0
        rec.scheduled_by = Some("DSC".into());
        rec.incidents.clear();
        rec.speedup = Some(1.0);
        summary.observe(&rec); // DSC direct, speedup 1.0
        rec.heuristic = "MCP".into();
        rec.scheduled_by = Some("MCP".into());
        rec.ok = false;
        rec.speedup = None;
        summary.observe(&rec);

        let rows = summary.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].heuristic, "DSC");
        assert_eq!(rows[0].runs, 2);
        assert_eq!(rows[0].ok, 2);
        assert_eq!(rows[0].fallbacks, 1);
        assert_eq!(rows[0].incidents, 1);
        assert_eq!(rows[0].mean_speedup(), Some(2.0));
        assert_eq!(rows[0].min_speedup(), Some(1.0));
        assert_eq!(rows[0].max_speedup(), Some(3.0));
        assert_eq!(rows[0].stats.counter("dsc.edges_zeroed"), 24);
        assert_eq!(rows[1].heuristic, "MCP");
        assert_eq!(rows[1].ok, 0);
        assert_eq!(rows[1].mean_speedup(), None);

        for line in summary.to_json_lines() {
            let j = Json::parse(&line).unwrap();
            assert_eq!(j.get("schema").unwrap().as_str(), Some(SUMMARY_SCHEMA));
            assert!(j.get("speedup").unwrap().get("mean").is_some());
        }

        let table = summary.render();
        assert!(table.contains("| DSC | 2 | 2 | 1 | 1 | 2.000 | 1.000..3.000 |"));
        assert!(table.contains("dsc.edges_zeroed=24"));
    }
}
