//! Shared helpers for the criterion benches: reduced corpora and
//! fixed graph sets, built once per process.

use dagsched_core::{paper_heuristics, Scheduler};
use dagsched_experiments::corpus::{generate_corpus, CorpusEntry, CorpusSpec};
use dagsched_experiments::runner::{run_corpus, GraphResult};

/// A reduced corpus for the table benches: same 60-set structure as
/// the paper, 2 graphs per set, smaller graphs — enough to regenerate
/// every row with the right shape while keeping `cargo bench` fast.
pub fn bench_corpus() -> Vec<CorpusEntry> {
    let spec = CorpusSpec {
        graphs_per_set: 2,
        nodes: 30..=50,
        ..Default::default()
    };
    generate_corpus(&spec)
}

/// Runs the five paper heuristics over [`bench_corpus`].
pub fn bench_results(corpus: &[CorpusEntry]) -> Vec<GraphResult> {
    run_corpus(corpus, &paper_heuristics())
}

/// The five paper heuristics.
pub fn heuristics() -> Vec<Box<dyn Scheduler>> {
    paper_heuristics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_corpus_has_the_table1_structure() {
        let corpus = bench_corpus();
        assert_eq!(corpus.len(), 120);
        let results = bench_results(&corpus);
        assert_eq!(results.len(), 120);
    }
}
