//! Overhead smoke: scheduling with an active `dagsched-obs` collector
//! scope must cost at most 5% more than scheduling without one.
//!
//! Deliberately criterion-free (a plain `main`): CI runs it as a
//! pass/fail gate, and the measurement is a min-of-samples over
//! interleaved scoped/unscoped runs of the same fixed seeded graph
//! set, which is robust to background noise. With the `obs` feature
//! compiled out both paths are identical and the ratio sits at ~1.0;
//! with it on, the ratio bounds the real instrumentation cost.
//!
//! `OBS_OVERHEAD_MAX` (e.g. `1.10`) overrides the default 1.05 bound.
//! `OBS_OVERHEAD_JSON=<path>` additionally writes the measurement as a
//! JSON snapshot (see `BENCH_obs_overhead.json` at the repo root).

use dagsched_bench::heuristics;
use dagsched_experiments::corpus::{generate_corpus, CorpusEntry, CorpusSpec};
use dagsched_obs as obs;
use dagsched_sim::Clique;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// A handful of fixed seeded mid-size graphs — big enough that a
/// sample is dominated by real scheduling work, small enough that the
/// whole smoke stays in CI budget.
fn fixed_graphs() -> Vec<CorpusEntry> {
    let spec = CorpusSpec {
        graphs_per_set: 1,
        nodes: 120..=160,
        ..Default::default()
    };
    generate_corpus(&spec).into_iter().step_by(12).collect()
}

/// One sample: schedule every graph with every paper heuristic,
/// inside a collector scope or not. Returns the elapsed time and a
/// black-box accumulator so nothing is optimised away.
fn sample(corpus: &[CorpusEntry], scoped: bool) -> (Duration, u64) {
    let hs = heuristics();
    let mut acc = 0u64;
    let start = Instant::now();
    for entry in corpus {
        for h in &hs {
            let scope = scoped.then(obs::run_scope);
            let s = h.schedule(&entry.graph, &Clique);
            acc = acc.wrapping_add(s.makespan());
            if let Some(scope) = scope {
                acc = acc.wrapping_add(scope.finish().counter("dsc.merges"));
            }
        }
    }
    (start.elapsed(), acc)
}

fn main() {
    let max_ratio: f64 = std::env::var("OBS_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.05);
    let corpus = fixed_graphs();
    println!(
        "obs_overhead: {} graphs x {} heuristics, obs feature {}",
        corpus.len(),
        heuristics().len(),
        if cfg!(feature = "obs") { "on" } else { "off" }
    );

    // Warm-up, then interleaved samples so drift hits both sides.
    for _ in 0..3 {
        black_box(sample(&corpus, false));
        black_box(sample(&corpus, true));
    }
    let mut min_plain = Duration::MAX;
    let mut min_scoped = Duration::MAX;
    for i in 0..20 {
        let (plain, a) = sample(&corpus, false);
        let (scoped, b) = sample(&corpus, true);
        black_box((a, b));
        min_plain = min_plain.min(plain);
        min_scoped = min_scoped.min(scoped);
        if i % 5 == 4 {
            println!(
                "  after {:2} rounds: min plain {:>10.1?}  min scoped {:>10.1?}",
                i + 1,
                min_plain,
                min_scoped
            );
        }
    }

    let ratio = min_scoped.as_secs_f64() / min_plain.as_secs_f64();
    println!(
        "obs_overhead: plain {min_plain:.1?}, scoped {min_scoped:.1?}, ratio {ratio:.4} (max {max_ratio})"
    );
    if let Ok(path) = std::env::var("OBS_OVERHEAD_JSON") {
        let snapshot = format!(
            "{{\"schema\":\"dagsched.bench.obs_overhead.v1\",\"graphs\":{},\"heuristics\":{},\
             \"obs_feature\":{},\"plain_ns\":{},\"scoped_ns\":{},\"ratio\":{ratio:.4},\
             \"max_ratio\":{max_ratio}}}\n",
            corpus.len(),
            heuristics().len(),
            cfg!(feature = "obs"),
            min_plain.as_nanos(),
            min_scoped.as_nanos(),
        );
        if let Err(e) = std::fs::write(&path, snapshot) {
            eprintln!("obs_overhead: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("obs_overhead: snapshot written to {path}");
    }
    if ratio > max_ratio {
        eprintln!("obs_overhead: FAIL — instrumentation overhead above the bound");
        std::process::exit(1);
    }
    println!("obs_overhead: OK");
}
