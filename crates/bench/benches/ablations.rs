//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each target prints a small comparison table (the ablation's
//! *result*) and measures the runtime of the ablated configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use dagsched_bench::bench_corpus;
use dagsched_core::{Hlfet, Hu, Mcp, Mh, Scheduler};
use dagsched_dag::{levels, topo};
use dagsched_experiments::corpus::CorpusEntry;
use dagsched_sim::evaluate::timed_schedule_by_priority;
use dagsched_sim::{Clique, Clustering, Hypercube, Machine, Mesh2D, ProcId, Ring};
use std::hint::black_box;
use std::sync::OnceLock;

fn corpus() -> &'static Vec<CorpusEntry> {
    static CORPUS: OnceLock<Vec<CorpusEntry>> = OnceLock::new();
    CORPUS.get_or_init(bench_corpus)
}

fn mean_makespan(s: &dyn Scheduler, machine: &dyn Machine) -> f64 {
    let c = corpus();
    let total: u64 = c
        .iter()
        .map(|e| s.schedule(&e.graph, machine).makespan())
        .sum();
    total as f64 / c.len() as f64
}

/// MCP append (the paper's Figure 9 pseudocode) vs insertion
/// scheduling (Wu & Gajski's original refinement).
fn ablation_mcp_insertion(c: &mut Criterion) {
    let append = mean_makespan(&Mcp::default(), &Clique);
    let insertion = mean_makespan(&Mcp::with_insertion(), &Clique);
    println!(
        "\nablation_mcp_insertion: mean makespan append {append:.1} vs insertion {insertion:.1}"
    );
    c.bench_function("ablation_mcp_append", |b| {
        b.iter(|| black_box(mean_makespan(&Mcp::default(), &Clique)))
    });
    c.bench_function("ablation_mcp_insertion", |b| {
        b.iter(|| black_box(mean_makespan(&Mcp::with_insertion(), &Clique)))
    });
}

/// How much of HU's deficit is the comm-oblivious *placement* rather
/// than the computation-only *priority*? HLFET keeps HU's priority but
/// places comm-aware.
fn ablation_hu_comm_aware(c: &mut Criterion) {
    let hu = mean_makespan(&Hu, &Clique);
    let hlfet = mean_makespan(&Hlfet, &Clique);
    let mh = mean_makespan(&Mh, &Clique);
    println!(
        "\nablation_hu_comm_aware: mean makespan HU {hu:.1} vs HLFET {hlfet:.1} (comm-aware placement) vs MH {mh:.1} (comm-aware priority too)"
    );
    c.bench_function("ablation_hu_oblivious", |b| {
        b.iter(|| black_box(mean_makespan(&Hu, &Clique)))
    });
    c.bench_function("ablation_hlfet_aware", |b| {
        b.iter(|| black_box(mean_makespan(&Hlfet, &Clique)))
    });
}

/// Cluster materialization order: descending b-level (the default)
/// vs plain topological position.
fn ablation_cluster_order(c: &mut Criterion) {
    let entries = corpus();
    let run = |by_blevel: bool| -> f64 {
        let mut total = 0u64;
        for e in entries {
            let g = &e.graph;
            // A fixed two-cluster split (by topo parity) isolates the
            // ordering effect from the clustering decision.
            let order = topo::positions(g.topo_order(), g.num_nodes());
            let assignment: Vec<ProcId> = g
                .nodes()
                .map(|v| ProcId((order[v.index()] % 2) as u32))
                .collect();
            let priority: Vec<u64> = if by_blevel {
                levels::blevels_with_comm(g)
            } else {
                let n = g.num_nodes();
                g.nodes().map(|v| (n - order[v.index()]) as u64).collect()
            };
            total += timed_schedule_by_priority(g, &Clique, &assignment, &priority)
                .expect("priority orders cannot deadlock")
                .makespan();
        }
        total as f64 / entries.len() as f64
    };
    println!(
        "\nablation_cluster_order: mean makespan b-level {:.1} vs topological {:.1}",
        run(true),
        run(false)
    );
    c.bench_function("ablation_cluster_order_blevel", |b| {
        b.iter(|| black_box(run(true)))
    });
    c.bench_function("ablation_cluster_order_topo", |b| {
        b.iter(|| black_box(run(false)))
    });
}

/// MH on the paper's clique vs hop-priced topologies.
fn ablation_mh_topology(c: &mut Criterion) {
    let machines: Vec<(&str, Box<dyn Machine>)> = vec![
        ("clique", Box::new(Clique)),
        ("ring8", Box::new(Ring::new(8))),
        ("mesh3x3", Box::new(Mesh2D::new(3, 3))),
        ("hypercube3", Box::new(Hypercube::new(3))),
    ];
    println!("\nablation_mh_topology: mean makespan per machine");
    for (name, m) in &machines {
        println!("  {name:<12} {:.1}", mean_makespan(&Mh, m.as_ref()));
    }
    c.bench_function("ablation_mh_clique", |b| {
        b.iter(|| black_box(mean_makespan(&Mh, &Clique)))
    });
    c.bench_function("ablation_mh_mesh", |b| {
        b.iter(|| black_box(mean_makespan(&Mh, &Mesh2D::new(3, 3))))
    });
}

/// Assumption 4 relaxed: ideal multicast vs single-send-port
/// contention, re-timing MH's and CLANS's corpus schedules.
fn ablation_contention(c: &mut Criterion) {
    use dagsched_core::Clans;
    let entries = corpus();
    let run = |scheduler: &dyn Scheduler, contended: bool| -> f64 {
        let mut total = 0u64;
        for e in entries {
            let s = scheduler.schedule(&e.graph, &Clique);
            total += if contended {
                dagsched_sim::event::simulate_with_send_contention(&e.graph, &Clique, &s, None)
                    .makespan
            } else {
                s.makespan()
            };
        }
        total as f64 / entries.len() as f64
    };
    println!(
        "\nablation_contention: MH ideal {:.1} vs contended {:.1}; CLANS ideal {:.1} vs contended {:.1}",
        run(&Mh, false),
        run(&Mh, true),
        run(&Clans, false),
        run(&Clans, true),
    );
    c.bench_function("ablation_contention_mh", |b| {
        b.iter(|| black_box(run(&Mh, true)))
    });
    c.bench_function("ablation_contention_clans", |b| {
        b.iter(|| black_box(run(&Clans, true)))
    });
}

/// Serial vs singleton clustering: the two trivial baselines bounding
/// every heuristic.
fn ablation_trivial_clusterings(c: &mut Criterion) {
    let entries = corpus();
    let run = |serial: bool| -> f64 {
        let mut total = 0u64;
        for e in entries {
            let n = e.graph.num_nodes();
            let cl = if serial {
                Clustering::serial(n)
            } else {
                Clustering::singletons(n)
            };
            total += cl.materialize(&e.graph, &Clique).unwrap().makespan();
        }
        total as f64 / entries.len() as f64
    };
    println!(
        "\nablation_trivial: mean makespan serial {:.1} vs fully-parallel {:.1}",
        run(true),
        run(false)
    );
    c.bench_function("ablation_serial_clustering", |b| {
        b.iter(|| black_box(run(true)))
    });
    c.bench_function("ablation_singleton_clustering", |b| {
        b.iter(|| black_box(run(false)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_mcp_insertion, ablation_hu_comm_aware,
              ablation_cluster_order, ablation_mh_topology,
              ablation_contention, ablation_trivial_clusterings
}
criterion_main!(benches);
