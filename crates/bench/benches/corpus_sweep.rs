//! Corpus-sweep gate for the `DagAnalysis` cache: serving a sweep's
//! labelling demands from the shared per-graph cache must be at least
//! 1.5× the throughput of the pre-cache pipeline, where every consumer
//! recomputed its own labellings from scratch.
//!
//! The cold arm replays the demand profile a corpus sweep put on the
//! labelling layer before the cache existed — each of the five paper
//! heuristics, the simulation oracle, the report, and the harness
//! fallback recomputing what it needs via the `levels`/`Closure`
//! reference functions (the transitive closure twice, the b-levels
//! with communication three times, …). The warm arm issues the exact
//! same demands through the cached accessors of one shared graph, so
//! each labelling is materialized lazily at most once. A checksum
//! ties the two arms to the same values before they are compared for
//! speed.
//!
//! Scope note: this gates the labelling pipeline the cache replaced,
//! not end-to-end scheduling — a full five-heuristic sweep is
//! dominated by CLANS decomposition, which no labelling cache can
//! touch (see docs/PERFORMANCE.md for the end-to-end numbers).
//!
//! A second gate bounds the cost of the `MachineModel`/`CostModel`
//! abstraction on the paper path: a sweep of the kernel-driven
//! heuristics (DSC, MCP, MH, HU — the ones whose inner loops price
//! every edge through the cost model) driven through the monomorphized
//! `schedule_model::<PaperUniform>` entry must stay within a few
//! percent of the same sweep through the `&dyn Machine` entry — i.e.
//! the trait layer is generics the compiler erases, not indirection
//! the hot path pays for. CLANS is excluded deliberately: its runtime
//! is clan decomposition, not comm-cost evaluation, so it only adds
//! codegen-layout noise to the comparison. Both arms must produce
//! identical makespans before being timed.
//!
//! Deliberately criterion-free (a plain `main`): CI runs it as a
//! pass/fail gate on min-of-samples over interleaved rounds.
//! `CORPUS_SWEEP_MIN` (e.g. `1.0` for a regression-only smoke in CI)
//! overrides the default 1.5× speedup requirement;
//! `MODEL_OVERHEAD_MAX` (default `1.03`) bounds the monomorphized /
//! dyn sweep-time ratio.

use dagsched_core::{Dsc, Hu, Mcp, Mh, PaperUniform, Scheduler};
use dagsched_dag::closure::Closure;
use dagsched_dag::{levels, Dag};
use dagsched_experiments::corpus::{generate_corpus, CorpusSpec};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Fixed seeded mid-size graphs: large enough that the closure and
/// level computations carry real weight, small enough that the whole
/// smoke stays in CI budget.
fn fixed_graphs() -> Vec<Dag> {
    let spec = CorpusSpec {
        graphs_per_set: 1,
        nodes: 120..=160,
        ..Default::default()
    };
    generate_corpus(&spec)
        .into_iter()
        .step_by(6)
        .map(|e| e.graph)
        .collect()
}

/// One cold sample: every labelling consumer in a sweep recomputes
/// its demands from scratch — the pipeline before `DagAnalysis`.
fn sample_cold(corpus: &[Dag]) -> (Duration, u64) {
    let mut acc = 0u64;
    let start = Instant::now();
    for g in corpus {
        acc = acc.wrapping_add(closure_probe(g, &Closure::new(g))); // CLANS
        acc = acc.wrapping_add(checksum(&levels::blevels_with_comm(g))); // DSC
        acc = acc.wrapping_add(checksum(&levels::alap_times(g))); // MCP
        acc = acc.wrapping_add(closure_probe(g, &Closure::new(g))); // MCP
        acc = acc.wrapping_add(checksum(&levels::blevels_with_comm(g))); // MH
        acc = acc.wrapping_add(checksum(&levels::blevels_computation(g))); // HU
        acc = acc.wrapping_add(checksum(&levels::blevels_with_comm(g))); // oracle
        acc = acc.wrapping_add(levels::critical_path_len(g)); // report
        acc = acc.wrapping_add(checksum(&levels::blevels_computation(g))); // fallback HU
    }
    (start.elapsed(), acc)
}

/// One warm sample: the same demands served by the cached accessors of
/// one shared graph per corpus entry — each labelling materialized
/// lazily at most once. Clones are prepared outside the timed region
/// so every sample starts from a cold cache.
fn sample_warm(corpus: &[Dag]) -> (Duration, u64) {
    let clones: Vec<Dag> = corpus.to_vec();
    let mut acc = 0u64;
    let start = Instant::now();
    for g in &clones {
        acc = acc.wrapping_add(closure_probe(g, g.closure())); // CLANS
        acc = acc.wrapping_add(checksum(g.blevels_with_comm())); // DSC
        acc = acc.wrapping_add(checksum(g.alap_times())); // MCP
        acc = acc.wrapping_add(closure_probe(g, g.closure())); // MCP
        acc = acc.wrapping_add(checksum(g.blevels_with_comm())); // MH
        acc = acc.wrapping_add(checksum(g.blevels_computation())); // HU
        acc = acc.wrapping_add(checksum(g.blevels_with_comm())); // oracle
        acc = acc.wrapping_add(g.critical_path_len()); // report
        acc = acc.wrapping_add(checksum(g.blevels_computation())); // fallback HU
    }
    (start.elapsed(), acc)
}

fn checksum(xs: &[u64]) -> u64 {
    xs.iter()
        .fold(0u64, |a, &x| a.wrapping_mul(31).wrapping_add(x))
}

/// A cheap deterministic digest of a closure: reachability sampled on
/// a sparse grid of node pairs. Identical in both arms so the two
/// accumulators stay comparable.
fn closure_probe(g: &Dag, c: &Closure) -> u64 {
    let mut acc = 0u64;
    for u in g.nodes().step_by(17) {
        for v in g.nodes().step_by(13) {
            if u != v {
                acc = acc.wrapping_mul(2).wrapping_add(c.reaches(u, v) as u64);
            }
        }
    }
    acc
}

/// One sweep sample through the monomorphized model entry: every
/// kernel-driven heuristic compiled against the concrete
/// [`PaperUniform`] cost model, so each `comm_cost` inlines to
/// `if same_proc { 0 } else { w }`.
fn sample_model_mono(corpus: &[Dag]) -> (Duration, u64) {
    let mut acc = 0u64;
    let start = Instant::now();
    for g in corpus {
        let fresh = g.clone(); // cold analysis cache, as in the warm arm
        acc = acc.wrapping_add(Dsc.schedule_model(&fresh, &PaperUniform).makespan());
        acc = acc.wrapping_add(
            Mcp::default()
                .schedule_model(&fresh, &PaperUniform)
                .makespan(),
        );
        acc = acc.wrapping_add(Mh.schedule_model(&fresh, &PaperUniform).makespan());
        acc = acc.wrapping_add(Hu.schedule_model(&fresh, &PaperUniform).makespan());
    }
    (start.elapsed(), acc)
}

/// The same sweep through the object-safe `&dyn Machine` entry every
/// caller used before the cost-model refactor.
fn sample_model_dyn(corpus: &[Dag]) -> (Duration, u64) {
    let machine: &dyn dagsched_sim::Machine = &PaperUniform;
    let mut acc = 0u64;
    let start = Instant::now();
    for g in corpus {
        let fresh = g.clone();
        acc = acc.wrapping_add(Dsc.schedule(&fresh, machine).makespan());
        acc = acc.wrapping_add(Mcp::default().schedule(&fresh, machine).makespan());
        acc = acc.wrapping_add(Mh.schedule(&fresh, machine).makespan());
        acc = acc.wrapping_add(Hu.schedule(&fresh, machine).makespan());
    }
    (start.elapsed(), acc)
}

/// Gates the machine-model abstraction: monomorphized sweep time must
/// stay within `max_ratio` of the dyn-entry sweep time.
fn model_overhead_gate(corpus: &[Dag], max_ratio: f64) {
    let (_, mono_acc) = sample_model_mono(corpus);
    let (_, dyn_acc) = sample_model_dyn(corpus);
    assert_eq!(
        mono_acc, dyn_acc,
        "monomorphized and dyn model paths produced different schedules"
    );
    for _ in 0..2 {
        black_box(sample_model_mono(corpus));
        black_box(sample_model_dyn(corpus));
    }
    let mut min_mono = Duration::MAX;
    let mut min_dyn = Duration::MAX;
    for _ in 0..10 {
        let (mono, a) = sample_model_mono(corpus);
        let (dy, b) = sample_model_dyn(corpus);
        black_box((a, b));
        min_mono = min_mono.min(mono);
        min_dyn = min_dyn.min(dy);
    }
    let ratio = min_mono.as_secs_f64() / min_dyn.as_secs_f64();
    println!(
        "model_overhead: mono {min_mono:.1?}, dyn {min_dyn:.1?}, ratio {ratio:.3} (max {max_ratio})"
    );
    if ratio > max_ratio {
        eprintln!(
            "model_overhead: FAIL — the monomorphized PaperUniform path pays \
             measurable indirection over the dyn entry"
        );
        std::process::exit(1);
    }
}

fn main() {
    let min_speedup: f64 = std::env::var("CORPUS_SWEEP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let corpus = fixed_graphs();
    println!(
        "corpus_sweep: {} graphs, 9 labelling demands each",
        corpus.len()
    );

    // Both arms must deliver identical values before being compared
    // for speed.
    let (_, cold_acc) = sample_cold(&corpus);
    let (_, warm_acc) = sample_warm(&corpus);
    assert_eq!(
        cold_acc, warm_acc,
        "cached labellings diverged from uncached"
    );

    // Warm-up, then interleaved samples so drift hits both arms.
    for _ in 0..3 {
        black_box(sample_cold(&corpus));
        black_box(sample_warm(&corpus));
    }
    let mut min_cold = Duration::MAX;
    let mut min_warm = Duration::MAX;
    for i in 0..20 {
        let (cold, a) = sample_cold(&corpus);
        let (warm, b) = sample_warm(&corpus);
        black_box((a, b));
        min_cold = min_cold.min(cold);
        min_warm = min_warm.min(warm);
        if i % 5 == 4 {
            println!(
                "  after {:2} rounds: min cold {:>10.1?}  min warm {:>10.1?}",
                i + 1,
                min_cold,
                min_warm
            );
        }
    }

    let speedup = min_cold.as_secs_f64() / min_warm.as_secs_f64();
    println!(
        "corpus_sweep: cold {min_cold:.1?}, warm {min_warm:.1?}, speedup {speedup:.3}x (min {min_speedup})"
    );
    if speedup < min_speedup {
        eprintln!("corpus_sweep: FAIL — cached labelling sweep below the required speedup");
        std::process::exit(1);
    }

    let max_ratio: f64 = std::env::var("MODEL_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.03);
    model_overhead_gate(&corpus, max_ratio);
    println!("corpus_sweep: OK");
}
