//! One bench target per paper table and figure.
//!
//! Each target (a) regenerates the table/figure on a reduced corpus
//! and prints it once — so `cargo bench -p dagsched-bench` reproduces
//! every row the paper reports — and (b) measures the time of the
//! aggregation plus the scheduling work that feeds it.

use criterion::{criterion_group, criterion_main, Criterion};
use dagsched_bench::{bench_corpus, bench_results, heuristics};
use dagsched_experiments::figures;
use dagsched_experiments::runner::evaluate_graph;
use dagsched_experiments::tables;
use std::hint::black_box;
use std::sync::OnceLock;

fn results() -> &'static Vec<dagsched_experiments::GraphResult> {
    static RESULTS: OnceLock<Vec<dagsched_experiments::GraphResult>> = OnceLock::new();
    RESULTS.get_or_init(|| {
        let corpus = bench_corpus();
        bench_results(&corpus)
    })
}

macro_rules! table_bench {
    ($fn_name:ident, $bench_name:literal, $builder:path) => {
        fn $fn_name(c: &mut Criterion) {
            let r = results();
            // Print the regenerated table once per bench invocation.
            println!("\n{}", $builder(r).to_markdown());
            c.bench_function($bench_name, |b| {
                b.iter(|| black_box($builder(black_box(r))))
            });
        }
    };
}

table_bench!(t2, "table2_speedup_lt1", tables::table2);
table_bench!(t3, "table3_fig1_nrpt", tables::table3);
table_bench!(t4, "table4_fig2_speedup", tables::table4);
table_bench!(t5, "table5_fig3_efficiency", tables::table5);
table_bench!(t6, "table6_nwr_lt1", tables::table6);
table_bench!(t7, "table7_fig4_nrpt", tables::table7);
table_bench!(t8, "table8_fig5_speedup", tables::table8);
table_bench!(t9, "table9_fig6_efficiency", tables::table9);
table_bench!(t10, "table10_anchor_lt1", tables::table10);
table_bench!(t11, "table11_anchor_nrpt", tables::table11);

macro_rules! figure_bench {
    ($fn_name:ident, $bench_name:literal, $builder:path) => {
        fn $fn_name(c: &mut Criterion) {
            let r = results();
            println!("\n{}", $builder(r).render(12));
            c.bench_function($bench_name, |b| {
                b.iter(|| black_box($builder(black_box(r))))
            });
        }
    };
}

figure_bench!(f1, "figure1_nrpt_vs_granularity", figures::figure1);
figure_bench!(f2, "figure2_speedup_vs_granularity", figures::figure2);
figure_bench!(f3, "figure3_efficiency_vs_granularity", figures::figure3);
figure_bench!(f4, "figure4_nrpt_vs_nwr", figures::figure4);
figure_bench!(f5, "figure5_speedup_vs_nwr", figures::figure5);
figure_bench!(f6, "figure6_efficiency_vs_nwr", figures::figure6);

/// The end-to-end cost of one corpus graph through all five
/// heuristics — the unit of work behind every table.
fn evaluate_one(c: &mut Criterion) {
    let corpus = bench_corpus();
    let hs = heuristics();
    let entry = &corpus[corpus.len() / 2];
    c.bench_function("evaluate_one_graph_five_heuristics", |b| {
        b.iter(|| black_box(evaluate_graph(black_box(entry), &hs)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = t2, t3, t4, t5, t6, t7, t8, t9, t10, t11,
              f1, f2, f3, f4, f5, f6, evaluate_one
}
criterion_main!(benches);
