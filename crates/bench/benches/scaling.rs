//! Runtime scaling of every component with graph size — the paper's
//! complexity discussion made measurable: DSC is O((v+e) log v), MCP
//! O(v² log v), CLANS O(n³) (the clan parse), and the substrates
//! (closure, decomposition, generation) have their own costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_clans::ParseTree;
use dagsched_core::{BandSelector, Clans, Dsc, DscFast, Dsh, Hu, Mcp, Mh, Scheduler};
use dagsched_dag::closure::Closure;
use dagsched_dag::Dag;
use dagsched_gen::pdg::{generate, PdgSpec};
use dagsched_gen::{GranularityBand, WeightRange};
use dagsched_sim::Clique;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const SIZES: [usize; 4] = [25, 50, 100, 200];

fn graph_of(n: usize) -> Dag {
    let mut rng = StdRng::seed_from_u64(n as u64);
    generate(
        &PdgSpec {
            nodes: n,
            anchor: 3,
            weights: WeightRange::new(20, 100),
            band: GranularityBand::Medium,
        },
        &mut rng,
    )
    .expect("bench spec is valid")
}

fn scaling_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_runtime");
    group.sample_size(10);
    for n in SIZES {
        let g = graph_of(n);
        let cases: Vec<(&str, Box<dyn Scheduler>)> = vec![
            ("CLANS", Box::new(Clans)),
            ("DSC", Box::new(Dsc)),
            ("DSC-F", Box::new(DscFast)),
            ("MCP", Box::new(Mcp::default())),
            ("MH", Box::new(Mh)),
            ("HU", Box::new(Hu)),
            ("SELECT", Box::new(BandSelector::default())),
        ];
        for (name, s) in cases {
            group.bench_with_input(BenchmarkId::new(name, n), &g, |b, g| {
                b.iter(|| black_box(s.schedule(black_box(g), &Clique)))
            });
        }
    }
    group.finish();
}

fn scaling_duplication(c: &mut Criterion) {
    // DSH is not a `Scheduler` (it returns a DupSchedule), so it gets
    // its own scaling group.
    let mut group = c.benchmark_group("dsh_runtime");
    group.sample_size(10);
    for n in SIZES {
        let g = graph_of(n);
        group.bench_with_input(BenchmarkId::new("DSH", n), &g, |b, g| {
            b.iter(|| black_box(Dsh.schedule(black_box(g), &Clique)))
        });
    }
    group.finish();
}

fn scaling_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_runtime");
    group.sample_size(10);
    for n in SIZES {
        let g = graph_of(n);
        group.bench_with_input(BenchmarkId::new("closure", n), &g, |b, g| {
            b.iter(|| black_box(Closure::new(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("clan_parse", n), &g, |b, g| {
            b.iter(|| black_box(ParseTree::decompose(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("blevels", n), &g, |b, g| {
            b.iter(|| black_box(dagsched_dag::levels::blevels_with_comm(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("generate", n), &n, |b, &n| {
            b.iter(|| black_box(graph_of(n)))
        });
    }
    group.finish();
}

fn scaling_parallel_map(c: &mut Criterion) {
    // The work-stealing substrate against inline execution, on the
    // kind of load the corpus runner produces.
    let graphs: Vec<Dag> = (0..64).map(|i| graph_of(30 + (i % 3) * 10)).collect();
    let mut group = c.benchmark_group("par_map_corpus_eval");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let total: u64 = graphs
                .iter()
                .map(|g| Mcp::default().schedule(g, &Clique).makespan())
                .sum();
            black_box(total)
        })
    });
    group.bench_function("work_stealing", |b| {
        b.iter(|| {
            let spans = dagsched_par::par_map(&graphs, |_, g| {
                Mcp::default().schedule(g, &Clique).makespan()
            });
            black_box(spans.iter().sum::<u64>())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = scaling_schedulers, scaling_duplication, scaling_substrates, scaling_parallel_map
}
criterion_main!(benches);
