//! CLANS — clan-based graph decomposition scheduling (McCreary &
//! Gill), per the paper's appendix A.5 / Figures 15–16.
//!
//! The PDG is parsed into its clan parse tree (`dagsched-clans`), then
//! costs are assigned bottom-up:
//!
//! * a **leaf** costs its node weight;
//! * a **linear** clan executes its children sequentially — cost is
//!   the sum of the (already decided) child costs;
//! * an **independent** clan is where the decision happens: either
//!   *cluster* (serialize all members on the parent's processor, cost
//!   = total node weight) or *parallelize* (the heaviest child stays
//!   on the parent's processor; every other child moves to its own
//!   processor and pays its maximal incoming and outgoing
//!   cross-boundary edge weights, exactly the `5 + 20 + 4 = 29`
//!   computation of Figure 16) — whichever is cheaper. Choosing
//!   *cluster* whenever parallelizing does not strictly win is the
//!   paper's per-linear-node speedup check;
//! * a **primitive** clan (possible in the rewired random graphs,
//!   though never in pure parse-tree graphs) chooses between full
//!   serialization and placing each child on its own processor, the
//!   parallel cost estimated by the longest path through the quotient
//!   of the children.
//!
//! Finally the layout is materialized into a schedule, and — the
//! paper's macro-level guarantee ("CLANS can never produce a speedup
//! less than 1", §4.1.1) — if the realized makespan exceeds the serial
//! time the scheduler falls back to the serial schedule.

use crate::model::MachineModel;
use crate::scheduler::Scheduler;
use dagsched_clans::{ClanId, ClanKind, ParseTree};
use dagsched_dag::bitset::BitSet;
use dagsched_dag::{topo, Dag, LevelCost, NodeId, Weight};
use dagsched_obs as obs;
use dagsched_sim::{Clustering, Machine, Schedule};

/// The CLANS scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Clans;

/// The resolved layout of one clan: which tasks ride on the parent's
/// ("main") processor and which groups get processors of their own.
#[derive(Debug, Clone)]
struct Plan {
    /// Estimated execution time under this layout (the paper's
    /// bottom-up cost).
    cost: Weight,
    /// Tasks on the inherited processor.
    main: Vec<NodeId>,
    /// Task groups placed on fresh processors.
    satellites: Vec<Vec<NodeId>>,
}

impl Clans {
    /// Monomorphized core: plan with boundary edges priced by the
    /// machine's level cost, materialize, speedup-check.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let n = g.num_nodes();
        if n == 0 {
            return Schedule::new(g, vec![]);
        }
        let tree = ParseTree::decompose(g);
        let root = tree.root().expect("non-empty graph has a parse tree root");
        let ctx = Ctx {
            g,
            tree: &tree,
            topo_pos: topo::positions(g.topo_order(), n),
            cost: machine.level_cost(),
        };
        let plan_span = obs::span!("clans.plan");
        let plan = ctx.plan(root);
        drop(plan_span);

        let _span = obs::span!("clans.materialize");
        // Materialize: main = cluster 0, each satellite its own.
        let mut clustering = Clustering::new(n);
        let main_cluster = clustering.create_cluster();
        for &v in &plan.main {
            clustering.assign(v, main_cluster);
        }
        for sat in &plan.satellites {
            let c = clustering.create_cluster();
            for &v in sat {
                clustering.assign(v, c);
            }
        }
        // A machine bound below the cluster count forces serial
        // fallback too (CLANS targets the paper's unbounded model).
        let fits = machine
            .max_procs()
            .is_none_or(|b| clustering.num_used_clusters() <= b);
        let parallel = fits.then(|| {
            clustering
                .materialize(g, machine)
                .expect("plans cover every task")
        });

        // Macro-level speedup check: never slower than serial.
        let serial_time = g.serial_time();
        match parallel {
            Some(s) if s.makespan() <= serial_time => s,
            _ => {
                obs::event("clans.serial_fallback");
                Clustering::serial(n)
                    .materialize(g, machine)
                    .expect("serial clustering is always valid")
            }
        }
    }
}

impl Scheduler for Clans {
    fn name(&self) -> &'static str {
        "CLANS"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

struct Ctx<'a> {
    g: &'a Dag,
    tree: &'a ParseTree,
    topo_pos: Vec<usize>,
    /// Prices cross-boundary edges in the bottom-up cost assignment.
    cost: LevelCost,
}

impl Ctx<'_> {
    fn plan(&self, clan: ClanId) -> Plan {
        let c = self.tree.clan(clan);
        match c.kind {
            ClanKind::Leaf => {
                let v = c.node.expect("leaf carries its node");
                Plan {
                    cost: self.g.node_weight(v),
                    main: vec![v],
                    satellites: Vec::new(),
                }
            }
            ClanKind::Linear => {
                let mut cost = 0;
                let mut main = Vec::new();
                let mut satellites = Vec::new();
                for &ch in &c.children {
                    let p = self.plan(ch);
                    cost += p.cost;
                    main.extend(p.main);
                    satellites.extend(p.satellites);
                }
                Plan {
                    cost,
                    main,
                    satellites,
                }
            }
            ClanKind::Independent => self.plan_independent(clan),
            ClanKind::Primitive => self.plan_primitive(clan),
        }
    }

    /// Total node weight of a clan — its fully serialized cost.
    fn serial_cost(&self, clan: ClanId) -> Weight {
        self.tree
            .clan(clan)
            .members
            .iter()
            .map(|v| self.g.node_weight(NodeId(v as u32)))
            .sum()
    }

    /// Members of `clan` in topological order (the serialized layout).
    fn members_in_topo_order(&self, clan: ClanId) -> Vec<NodeId> {
        let mut m: Vec<NodeId> = self
            .tree
            .clan(clan)
            .members
            .iter()
            .map(|v| NodeId(v as u32))
            .collect();
        m.sort_by_key(|v| self.topo_pos[v.index()]);
        m
    }

    /// Maximal weight of an edge entering `child` from outside
    /// `boundary` (the clan making the decision).
    fn in_comm(&self, child: &BitSet, boundary: &BitSet) -> Weight {
        let mut best = 0;
        for v in child.iter() {
            for e in self.g.in_edges(NodeId(v as u32)) {
                let ed = self.g.edge(*e);
                if !boundary.contains(ed.src.index()) {
                    best = best.max(self.cost.cross_cost(ed.weight));
                }
            }
        }
        best
    }

    /// Maximal weight of an edge leaving `child` toward outside
    /// `boundary`.
    fn out_comm(&self, child: &BitSet, boundary: &BitSet) -> Weight {
        let mut best = 0;
        for v in child.iter() {
            for e in self.g.out_edges(NodeId(v as u32)) {
                let ed = self.g.edge(*e);
                if !boundary.contains(ed.dst.index()) {
                    best = best.max(self.cost.cross_cost(ed.weight));
                }
            }
        }
        best
    }

    fn plan_independent(&self, clan: ClanId) -> Plan {
        let c = self.tree.clan(clan);
        let plans: Vec<Plan> = c.children.iter().map(|&ch| self.plan(ch)).collect();
        let cluster_cost = self.serial_cost(clan);

        // Heaviest child inherits the parent's processor (Figure 16:
        // C₁ "executing on the same processor as the nodes with which
        // it communicates" pays no boundary communication).
        let heaviest = plans
            .iter()
            .enumerate()
            .max_by_key(|(i, p)| (p.cost, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .expect("independent clans have children");
        let mut parallel_cost = plans[heaviest].cost;
        for (i, p) in plans.iter().enumerate() {
            if i == heaviest {
                continue;
            }
            let members = &self.tree.clan(c.children[i]).members;
            let adj =
                p.cost + self.in_comm(members, &c.members) + self.out_comm(members, &c.members);
            parallel_cost = parallel_cost.max(adj);
        }

        if parallel_cost < cluster_cost {
            let mut main = Vec::new();
            let mut satellites = Vec::new();
            for (i, p) in plans.into_iter().enumerate() {
                if i == heaviest {
                    main = p.main;
                    satellites.extend(p.satellites);
                } else {
                    satellites.push(p.main);
                    satellites.extend(p.satellites);
                }
            }
            Plan {
                cost: parallel_cost,
                main,
                satellites,
            }
        } else {
            // The paper's speedup check: serialize the whole clan on
            // the parent's processor.
            Plan {
                cost: cluster_cost,
                main: self.members_in_topo_order(clan),
                satellites: Vec::new(),
            }
        }
    }

    /// Primitive clans: the parse tree offers no linear/independent
    /// structure to exploit, so the children (as macro-tasks costed by
    /// their plans, with the maximal cross edges as communication) are
    /// scheduled by the comm-aware list scheduler on a macro machine.
    /// Children sharing a macro processor are clustered together —
    /// this recovers the partial parallelism that a pure
    /// all-or-nothing rule would forfeit on the rewired random graphs.
    /// Full serialization still wins whenever it is cheaper (the
    /// speedup check).
    fn plan_primitive(&self, clan: ClanId) -> Plan {
        let c = self.tree.clan(clan);
        let plans: Vec<Plan> = c.children.iter().map(|&ch| self.plan(ch)).collect();
        let serial = self.serial_cost(clan);

        // Quotient DAG over the children: edge i→j with the maximal
        // member-to-member edge weight; node weight = plan cost.
        let child_index: std::collections::HashMap<ClanId, usize> = c
            .children
            .iter()
            .enumerate()
            .map(|(i, &ch)| (ch, i))
            .collect();
        let quotient = dagsched_clans::Quotient::of(self.g, self.tree, clan, |ch| {
            plans[child_index[&ch]].cost
        });
        let macro_schedule = crate::listsched::mh::Mh
            .schedule_on(&quotient.graph, &crate::model::LevelPriced(self.cost));
        let parallel = macro_schedule.makespan();

        if parallel < serial && macro_schedule.num_procs() > 1 {
            // Group children by macro processor; the heaviest group
            // inherits the parent's processor.
            let mut groups: Vec<(Weight, Vec<usize>)> =
                vec![(0, Vec::new()); macro_schedule.num_procs()];
            for (q, &ch) in quotient.children.iter().enumerate() {
                let child = child_index[&ch];
                let p = macro_schedule.proc_of(NodeId(q as u32)).index();
                groups[p].0 += plans[child].cost;
                groups[p].1.push(child);
            }
            let main_group = groups
                .iter()
                .enumerate()
                .max_by_key(|(i, (w, _))| (*w, std::cmp::Reverse(*i)))
                .map(|(i, _)| i)
                .expect("at least one macro processor");
            let mut main = Vec::new();
            let mut satellites = Vec::new();
            for (gi, (_, children)) in groups.into_iter().enumerate() {
                let mut cluster = Vec::new();
                for child in children {
                    cluster.extend(plans[child].main.iter().copied());
                    satellites.extend(plans[child].satellites.iter().cloned());
                }
                if gi == main_group {
                    main = cluster;
                } else if !cluster.is_empty() {
                    satellites.push(cluster);
                }
            }
            Plan {
                cost: parallel,
                main,
                satellites,
            }
        } else {
            Plan {
                cost: serial,
                main: self.members_in_topo_order(clan),
                satellites: Vec::new(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, Clique};

    #[test]
    fn fig16_reproduces_the_papers_130() {
        // Figure 16 (C): "Schedule completes in parallel time 130."
        let g = fig16();
        let s = Clans.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        assert_eq!(s.makespan(), 130);
        assert_eq!(s.num_procs(), 2);
        // Node 1 (paper's node 2) runs alone; the spine stays together.
        assert_ne!(s.proc_of(NodeId(1)), s.proc_of(NodeId(0)));
        assert_eq!(s.proc_of(NodeId(2)), s.proc_of(NodeId(0)));
    }

    #[test]
    #[cfg(feature = "obs")]
    fn records_decomposition_shape_when_scoped() {
        let scope = dagsched_obs::run_scope();
        Clans.schedule(&fig16(), &Clique);
        let stats = scope.finish();
        // Figure 16's tree: linear(1, independent(2, linear(3,4)), 5).
        assert_eq!(stats.gauge("clans.tree_clans"), Some(8));
        assert_eq!(stats.gauge("clans.tree_height"), Some(4));
        assert_eq!(stats.counter("clans.linear_clans"), 2);
        assert_eq!(stats.counter("clans.independent_clans"), 1);
        assert!(stats.span("clans.decompose").is_some());
        assert!(stats.span("clans.plan").is_some());
        assert!(stats.span("clans.materialize").is_some());
    }

    #[test]
    fn never_produces_speedup_below_one() {
        // The paper's headline CLANS property (§4.1.1 / Table 2).
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Clans.schedule(&g, &Clique);
            let m = metrics::measures(&g, &s);
            assert!(m.speedup >= 1.0, "speedup {}", m.speedup);
        }
    }

    #[test]
    fn serializes_fine_grains_entirely() {
        let g = fine_fork_join();
        let s = Clans.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 1, "100% efficient serial fallback");
        assert_eq!(s.makespan(), g.serial_time());
    }

    #[test]
    fn parallelizes_coarse_grains() {
        let g = coarse_fork_join();
        let s = Clans.schedule(&g, &Clique);
        let m = metrics::measures(&g, &s);
        assert!(m.speedup > 2.0, "got {}", m.speedup);
        assert!(validate::is_valid(&g, &Clique, &s));
    }

    #[test]
    fn handles_primitive_clans() {
        // The N poset with coarse weights: primitive at the root.
        let g = dagsched_gen::pdg::from_lists(
            &[100, 100, 100, 100],
            &[(0, 2, 2), (1, 2, 2), (1, 3, 2)],
        )
        .unwrap();
        let s = Clans.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        let m = metrics::measures(&g, &s);
        assert!(
            m.speedup > 1.0,
            "coarse primitive should parallelize, got {}",
            m.speedup
        );
        // And the fine version serializes.
        let fine =
            dagsched_gen::pdg::from_lists(&[5, 5, 5, 5], &[(0, 2, 900), (1, 2, 900), (1, 3, 900)])
                .unwrap();
        let s = Clans.schedule(&fine, &Clique);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), fine.serial_time());
    }

    #[test]
    fn independent_root_parallelizes_when_free() {
        let g = dagsched_gen::families::independent(4, 50);
        let s = Clans.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 4);
        assert_eq!(s.makespan(), 50);
    }

    #[test]
    fn chain_is_serial() {
        let g = dagsched_gen::families::chain(7, 10, 3);
        let s = Clans.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), 70);
    }

    #[test]
    fn single_node_and_empty() {
        let mut b = dagsched_dag::DagBuilder::new();
        b.add_node(9);
        let g = b.build().unwrap();
        assert_eq!(Clans.schedule(&g, &Clique).makespan(), 9);
        let empty = dagsched_dag::DagBuilder::new().build().unwrap();
        assert_eq!(Clans.schedule(&empty, &Clique).makespan(), 0);
    }
}
