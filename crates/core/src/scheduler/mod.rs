//! The [`Scheduler`] trait, the shared scheduling [`kernel`] and the
//! heuristic registries.

pub mod kernel;

use crate::model::MachineModel;
use dagsched_dag::Dag;
use dagsched_sim::{Machine, Schedule};

/// A static DAG scheduling heuristic under the paper's model.
///
/// Implementations must produce schedules that pass
/// `dagsched_sim::validate::check` for every valid input DAG — this is
/// enforced by the workspace property tests.
///
/// `Send + Sync` is a supertrait bound so schedulers can be shared
/// with (and moved onto) the fault-isolation harness's watchdog
/// threads; every scheduler in this crate is plain data, so the bound
/// costs nothing.
pub trait Scheduler: Send + Sync {
    /// Short upper-case name as used in the paper's tables
    /// (`"CLANS"`, `"DSC"`, …).
    fn name(&self) -> &'static str;

    /// Schedules `g` on `machine`.
    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule;

    /// Schedules `g` on a sized [`MachineModel`] — the monomorphized
    /// entry point. Every heuristic in this crate overrides the
    /// default to run its generic core directly on `model`, so the
    /// [`PaperUniform`](crate::model::PaperUniform) hot path carries
    /// no dynamic dispatch; the default simply falls back to the
    /// `&dyn Machine` path (used by wrapper schedulers that hold
    /// boxed inner heuristics).
    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule
    where
        Self: Sized,
    {
        self.schedule(g, model)
    }
}

/// The five heuristics the paper compares, in the paper's column order
/// (CLANS, DSC, MCP, MH, HU).
pub fn paper_heuristics() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(crate::clans_sched::Clans),
        Box::new(crate::cp::dsc::Dsc),
        Box::new(crate::cp::mcp::Mcp::default()),
        Box::new(crate::listsched::mh::Mh),
        Box::new(crate::listsched::hu::Hu),
    ]
}

/// Every scheduler in the crate: the five paper heuristics plus the
/// extensions (ETF, HLFET, DLS, linear clustering, serial baseline).
pub fn all_heuristics() -> Vec<Box<dyn Scheduler>> {
    let mut v = paper_heuristics();
    v.push(Box::new(crate::listsched::etf::Etf));
    v.push(Box::new(crate::listsched::hlfet::Hlfet));
    v.push(Box::new(crate::listsched::dls::Dls));
    v.push(Box::new(crate::cp::lc::LinearClustering));
    v.push(Box::new(crate::cp::sarkar::Sarkar));
    v.push(Box::new(crate::serial::Serial));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig16;
    use crate::model::PaperUniform;

    #[test]
    fn registry_names_match_paper_columns() {
        let names: Vec<_> = paper_heuristics().iter().map(|h| h.name()).collect();
        assert_eq!(names, vec!["CLANS", "DSC", "MCP", "MH", "HU"]);
    }

    #[test]
    fn all_heuristics_superset() {
        let all: Vec<_> = all_heuristics().iter().map(|h| h.name()).collect();
        for n in [
            "CLANS", "DSC", "MCP", "MH", "HU", "ETF", "HLFET", "DLS", "LC", "SARKAR", "SERIAL",
        ] {
            assert!(all.contains(&n), "missing {n}");
        }
        // Names are unique.
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn schedule_model_matches_dyn_schedule_for_every_heuristic() {
        // The monomorphized entry point and the trait-object path make
        // the same decisions on the paper's machine.
        let g = fig16();
        let model = PaperUniform;
        macro_rules! check {
            ($($h:expr),* $(,)?) => {$({
                let h = $h;
                assert_eq!(
                    h.schedule_model(&g, &model),
                    h.schedule(&g, &model),
                    "{}",
                    Scheduler::name(&h)
                );
            })*};
        }
        check!(
            crate::clans_sched::Clans,
            crate::cp::dsc::Dsc,
            crate::cp::dsc::DscFast,
            crate::cp::mcp::Mcp::default(),
            crate::cp::mcp::Mcp::with_insertion(),
            crate::listsched::mh::Mh,
            crate::listsched::hu::Hu,
            crate::listsched::etf::Etf,
            crate::listsched::hlfet::Hlfet,
            crate::listsched::dls::Dls,
            crate::cp::lc::LinearClustering,
            crate::cp::sarkar::Sarkar,
            crate::serial::Serial,
        );
    }
}
