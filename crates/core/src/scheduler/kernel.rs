//! The shared scheduling core.
//!
//! Every placement-based heuristic in this crate is one of five
//! dispatch disciplines over the same three mechanisms — ready-set
//! maintenance ([`ReadyQueue`], [`seed_ready`], [`release_succs`]),
//! processor choice ([`PartialSchedule::best_placement`]) and start
//! time computation ([`PartialSchedule::est_on`] /
//! [`PartialSchedule::est_new`]):
//!
//! * [`priority_list`] — pop the highest-priority ready task, place it
//!   earliest (HLFET);
//! * [`event_driven`] — drain the free list in priority order, then
//!   advance simulated time to the next completion (MH);
//! * [`global_scan`] — scan every (ready task, best processor) pair
//!   and commit the extremal one under a caller-chosen key (ETF, DLS);
//! * [`static_order_append`] — place tasks in a precomputed order,
//!   appending to processor timelines (MCP);
//! * [`static_order_insertion`] — same order, but tasks may slot into
//!   idle gaps (MCP-I).
//!
//! The heuristics differ *only* in their priority/clustering
//! decisions; everything here is generic over
//! [`CostModel`](crate::model::CostModel), so a sized machine model
//! monomorphizes the whole core (no dynamic dispatch on the hot path)
//! while `&dyn Machine` callers keep working through the blanket
//! `CostModel` impl and the `?Sized` bounds.
//!
//! [`PartialSchedule`] (and its LIFO [`PartialSchedule::place_tracked`]
//! / [`PartialSchedule::unplace`] pair) is public so the exact
//! branch-and-bound solver in `dagsched-exact` can search over the
//! *same* placement semantics the heuristics commit to — any makespan
//! it proves optimal is optimal for exactly the schedule space the
//! heuristics draw from. The dispatch drivers below remain crate-
//! internal.

use crate::model::CostModel;
use crate::workspace;
pub(crate) use crate::workspace::PendingCounters;
use dagsched_dag::{Dag, NodeId, Weight};
use dagsched_obs as obs;
use dagsched_sim::{ProcId, Schedule};
use std::cmp::Reverse;

/// An in-progress comm-aware schedule: grown one placement at a time,
/// frozen into a [`Schedule`] at the end. Scratch tables come from
/// the thread's `workspace` pool and are recycled on drop.
pub struct PartialSchedule<'a, C: CostModel + ?Sized> {
    g: &'a Dag,
    model: &'a C,
    /// Cached [`CostModel::startup_cost`] — the floor for every fresh
    /// processor's availability.
    startup: Weight,
    proc_avail: Vec<Weight>,
    proc_of: Vec<Option<ProcId>>,
    start: Vec<Weight>,
    finish: Vec<Weight>,
    placed: usize,
}

impl<'a, C: CostModel + ?Sized> PartialSchedule<'a, C> {
    /// An empty partial schedule for `g` under `model`.
    pub fn new(g: &'a Dag, model: &'a C) -> Self {
        let n = g.num_nodes();
        Self {
            g,
            model,
            startup: model.startup_cost(),
            proc_avail: workspace::take_weights(0, 0),
            proc_of: workspace::take_proc_opts(n),
            start: workspace::take_weights(n, 0),
            finish: workspace::take_weights(n, 0),
            placed: 0,
        }
    }

    /// Number of processors opened so far.
    pub fn num_procs(&self) -> usize {
        self.proc_avail.len()
    }

    /// Number of tasks placed so far.
    pub fn num_placed(&self) -> usize {
        self.placed
    }

    /// Availability (finish of the last appended task, floored at the
    /// machine startup cost) of the opened processor `p`.
    pub fn avail_of(&self, p: ProcId) -> Weight {
        self.proc_avail[p.index()]
    }

    /// The processor `v` was placed on, or `None` while unplaced.
    pub fn proc_of(&self, v: NodeId) -> Option<ProcId> {
        self.proc_of[v.index()]
    }

    /// Whether another processor may be opened on this machine.
    pub fn can_open(&self) -> bool {
        self.model
            .processor_limit()
            .is_none_or(|b| self.proc_avail.len() < b)
    }

    /// Finish time of an already placed task.
    pub fn finish_of(&self, v: NodeId) -> Weight {
        debug_assert!(self.proc_of[v.index()].is_some(), "{v} not placed yet");
        self.finish[v.index()]
    }

    /// Earliest time `v`'s inputs are all available on processor `p`
    /// (every predecessor must already be placed).
    pub fn data_ready(&self, v: NodeId, p: ProcId) -> Weight {
        self.g
            .preds(v)
            .map(|(pr, w)| {
                let pp = self.proc_of[pr.index()].expect("predecessors are placed first");
                self.finish[pr.index()] + self.model.comm_cost(w, pp, p)
            })
            .max()
            .unwrap_or(0)
    }

    /// Earliest start of `v` on the *existing* processor `p`.
    pub fn est_on(&self, v: NodeId, p: ProcId) -> Weight {
        self.data_ready(v, p).max(self.proc_avail[p.index()])
    }

    /// Earliest start of `v` on a *fresh* processor (full communication
    /// from every predecessor, floored at the machine's startup cost).
    pub fn est_new(&self, v: NodeId) -> Weight {
        // A fresh processor has a fresh id; any id unequal to existing
        // ones prices full comm on a clique. For hop-cost topologies
        // the concrete id matters; use the next id to be opened.
        let p = ProcId(self.proc_avail.len() as u32);
        self.g
            .preds(v)
            .map(|(pr, w)| {
                let pp = self.proc_of[pr.index()].expect("predecessors are placed first");
                self.finish[pr.index()] + self.model.comm_cost(w, pp, p)
            })
            .max()
            .unwrap_or(0)
            .max(self.startup)
    }

    /// The placement minimizing start time for `v`: scans every
    /// existing processor and (if the machine allows) one fresh
    /// processor. Returns `(proc, start, is_new)`; ties prefer
    /// existing processors, then lower ids.
    pub fn best_placement(&self, v: NodeId) -> (ProcId, Weight, bool) {
        let mut best: Option<(ProcId, Weight, bool)> = None;
        for p in 0..self.proc_avail.len() {
            let pid = ProcId(p as u32);
            let est = self.est_on(v, pid);
            if best.is_none_or(|(_, b, _)| est < b) {
                best = Some((pid, est, false));
            }
        }
        if self.can_open() {
            let est = self.est_new(v);
            if best.is_none_or(|(_, b, _)| est < b) {
                best = Some((ProcId(self.proc_avail.len() as u32), est, true));
            }
        }
        best.expect("either an existing processor or permission to open one")
    }

    /// Places `v` on `p` starting at `start`; opens the processor if
    /// `p` is the next unopened id.
    pub fn place(&mut self, v: NodeId, p: ProcId, start: Weight) {
        debug_assert!(self.proc_of[v.index()].is_none(), "{v} placed twice");
        if p.index() == self.proc_avail.len() {
            assert!(self.can_open(), "machine processor bound exceeded");
            self.proc_avail.push(self.startup);
        }
        assert!(
            p.index() < self.proc_avail.len(),
            "processor ids must be dense"
        );
        debug_assert!(start >= self.proc_avail[p.index()], "processor overlap");
        self.proc_of[v.index()] = Some(p);
        self.start[v.index()] = start;
        let fin = start + self.g.node_weight(v);
        self.finish[v.index()] = fin;
        self.proc_avail[p.index()] = fin;
        self.placed += 1;
    }

    /// Like [`PartialSchedule::place`], but returns an undo token so a
    /// depth-first search can revert the placement and try another.
    /// Tokens must be applied in strict LIFO order (most recent
    /// placement undone first) — they snapshot the processor
    /// availability the placement overwrote, which is only the current
    /// availability again once every later placement is gone.
    pub fn place_tracked(&mut self, v: NodeId, p: ProcId, start: Weight) -> PlacementUndo {
        let opened = p.index() == self.proc_avail.len();
        let prev_avail = if opened {
            self.startup
        } else {
            self.proc_avail[p.index()]
        };
        self.place(v, p, start);
        PlacementUndo {
            v,
            p,
            prev_avail,
            opened,
        }
    }

    /// Reverts the placement recorded by `undo` (LIFO order — see
    /// [`PartialSchedule::place_tracked`]).
    pub fn unplace(&mut self, undo: PlacementUndo) {
        debug_assert_eq!(
            self.proc_of[undo.v.index()],
            Some(undo.p),
            "{} is not the most recent placement",
            undo.v
        );
        self.proc_of[undo.v.index()] = None;
        self.placed -= 1;
        if undo.opened {
            debug_assert_eq!(
                undo.p.index(),
                self.proc_avail.len() - 1,
                "undo out of LIFO order: {} is not the last opened processor",
                undo.p
            );
            self.proc_avail.pop();
        } else {
            self.proc_avail[undo.p.index()] = undo.prev_avail;
        }
    }

    /// The raw `(processor, start)` assignment of a *complete* partial
    /// schedule, without freezing it — a search snapshots its incumbent
    /// this way and keeps going. Panics if any task is unplaced.
    pub fn assignment(&self) -> Vec<(ProcId, Weight)> {
        assert_eq!(self.placed, self.g.num_nodes(), "all tasks must be placed");
        self.proc_of
            .iter()
            .zip(&self.start)
            .map(|(p, &s)| (p.expect("placed"), s))
            .collect()
    }

    /// Freezes into a [`Schedule`]. Panics if any task is unplaced.
    /// (The scratch tables go back to the pool when `self` drops.)
    pub fn into_schedule(self) -> Schedule {
        Schedule::new(self.g, self.assignment())
    }
}

/// Undo token returned by [`PartialSchedule::place_tracked`]; see the
/// LIFO contract there.
#[derive(Debug)]
pub struct PlacementUndo {
    v: NodeId,
    p: ProcId,
    prev_avail: Weight,
    opened: bool,
}

impl<C: CostModel + ?Sized> Drop for PartialSchedule<'_, C> {
    fn drop(&mut self) {
        workspace::recycle_weights(std::mem::take(&mut self.proc_avail));
        workspace::recycle_weights(std::mem::take(&mut self.start));
        workspace::recycle_weights(std::mem::take(&mut self.finish));
        workspace::recycle_proc_opts(std::mem::take(&mut self.proc_of));
    }
}

/// A lazily keyed max-heap of ready tasks: pushes carry the priority,
/// ties break toward the smaller node index for determinism. The heap
/// storage is pooled and recycled on drop.
pub(crate) struct ReadyQueue {
    heap: std::collections::BinaryHeap<(Weight, Reverse<u32>)>,
}

impl ReadyQueue {
    pub(crate) fn new() -> Self {
        Self {
            heap: workspace::take_ready_heap(),
        }
    }

    pub(crate) fn push(&mut self, v: NodeId, priority: Weight) {
        self.heap.push((priority, Reverse(v.0)));
    }

    pub(crate) fn pop(&mut self) -> Option<NodeId> {
        self.heap.pop().map(|(_, Reverse(v))| NodeId(v))
    }

    /// Number of tasks currently ready.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl Drop for ReadyQueue {
    fn drop(&mut self) {
        workspace::recycle_ready_heap(std::mem::take(&mut self.heap));
    }
}

/// Seeds a ready queue with the sources of `g` and returns the
/// remaining in-degree counters used to release successors.
pub(crate) fn seed_ready(g: &Dag, priority: &[Weight], queue: &mut ReadyQueue) -> PendingCounters {
    let pending = PendingCounters::from_in_degrees(g);
    for v in g.nodes() {
        if pending[v.index()] == 0 {
            queue.push(v, priority[v.index()]);
        }
    }
    pending
}

/// Releases the successors of `v` whose predecessors are all placed.
pub(crate) fn release_succs(
    g: &Dag,
    v: NodeId,
    pending: &mut [u32],
    priority: &[Weight],
    queue: &mut ReadyQueue,
) {
    for (s, _) in g.succs(v) {
        pending[s.index()] -= 1;
        if pending[s.index()] == 0 {
            queue.push(s, priority[s.index()]);
        }
    }
}

/// Priority-list dispatch (HLFET): pop the highest-priority ready
/// task, place it at its earliest start, release its successors.
pub(crate) fn priority_list<C: CostModel + ?Sized>(
    g: &Dag,
    model: &C,
    priority: &[Weight],
) -> Schedule {
    let mut ps = PartialSchedule::new(g, model);
    let mut queue = ReadyQueue::new();
    let mut pending = seed_ready(g, priority, &mut queue);
    while let Some(t) = queue.pop() {
        let (p, st, _) = ps.best_placement(t);
        ps.place(t, p, st);
        release_succs(g, t, &mut pending, priority, &mut queue);
    }
    ps.into_schedule()
}

/// Event-driven dispatch (MH): allocate every currently free task in
/// priority order, then advance simulated time to the next completion
/// instant and release the successors satisfied there. `ready_hist`
/// names the histogram recording the free-list length per wave.
pub(crate) fn event_driven<C: CostModel + ?Sized>(
    g: &Dag,
    model: &C,
    priority: &[Weight],
    ready_hist: &'static str,
) -> Schedule {
    let mut ps = PartialSchedule::new(g, model);
    let mut free = ReadyQueue::new();
    let mut pending = seed_ready(g, priority, &mut free);
    // Completion events: (finish time, task).
    let mut events = workspace::take_event_heap();

    loop {
        // The free-list length at each dispatch wave is the
        // paper-relevant shape of the frontier.
        if obs::active() && !free.is_empty() {
            obs::hist_record(ready_hist, free.len() as u64);
        }
        // Allocate every currently free task, highest priority first.
        while let Some(t) = free.pop() {
            let (p, st, _) = ps.best_placement(t);
            ps.place(t, p, st);
            events.push(Reverse((ps.finish_of(t), t.0)));
        }
        // Advance to the next completion instant and release all
        // successors satisfied at that instant.
        let Some(&Reverse((now, _))) = events.peek() else {
            break;
        };
        while let Some(&Reverse((time, tv))) = events.peek() {
            if time != now {
                break;
            }
            events.pop();
            for (s, _) in g.succs(NodeId(tv)) {
                pending[s.index()] -= 1;
                if pending[s.index()] == 0 {
                    free.push(s, priority[s.index()]);
                }
            }
        }
    }
    workspace::recycle_event_heap(events);
    ps.into_schedule()
}

/// Global-scan dispatch (ETF, DLS): at each step compute the best
/// placement of *every* ready task and commit the task whose
/// `(task, start)` pair minimizes the caller's `key`. The scan visits
/// the ready list in insertion order with `swap_remove` compaction, so
/// key ties keep the earliest-scanned entry.
pub(crate) fn global_scan<C: CostModel + ?Sized, K: Ord>(
    g: &Dag,
    model: &C,
    mut key: impl FnMut(NodeId, Weight) -> K,
) -> Schedule {
    let mut ps = PartialSchedule::new(g, model);
    let mut pending = PendingCounters::from_in_degrees(g);
    let mut ready = workspace::take_nodes();
    ready.extend(g.nodes().filter(|&v| pending[v.index()] == 0));

    while !ready.is_empty() {
        let mut best: Option<(usize, ProcId, Weight, K)> = None;
        for (k, &t) in ready.iter().enumerate() {
            let (p, st, _) = ps.best_placement(t);
            let cand = key(t, st);
            let better = match &best {
                None => true,
                Some((_, _, _, bk)) => cand < *bk,
            };
            if better {
                best = Some((k, p, st, cand));
            }
        }
        let (k, p, st, _) = best.expect("ready list non-empty");
        let t = ready.swap_remove(k);
        ps.place(t, p, st);
        for (s, _) in g.succs(t) {
            pending[s.index()] -= 1;
            if pending[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    workspace::recycle_nodes(ready);
    ps.into_schedule()
}

/// Static-order dispatch, append semantics (MCP): place tasks in the
/// given topological order, each at its earliest start, appending to
/// processor timelines.
pub(crate) fn static_order_append<C: CostModel + ?Sized>(
    g: &Dag,
    model: &C,
    order: &[NodeId],
) -> Schedule {
    let mut ps = PartialSchedule::new(g, model);
    for &t in order {
        let (p, st, _) = ps.best_placement(t);
        ps.place(t, p, st);
    }
    ps.into_schedule()
}

/// Static-order dispatch, insertion semantics (MCP-I): tasks may slot
/// into idle gaps between already-placed tasks when data arrives early
/// enough.
pub(crate) fn static_order_insertion<C: CostModel + ?Sized>(
    g: &Dag,
    model: &C,
    order: &[NodeId],
) -> Schedule {
    let n = g.num_nodes();
    let startup = model.startup_cost();
    // Per processor: placed (start, finish) intervals, kept sorted.
    let mut procs: Vec<Vec<(Weight, Weight)>> = Vec::new();
    let mut placement: Vec<(ProcId, Weight)> = vec![(ProcId(0), 0); n];
    let mut finish: Vec<Weight> = vec![0; n];
    let mut proc_of: Vec<ProcId> = vec![ProcId(0); n];
    let can_open = |k: usize| model.processor_limit().is_none_or(|b| k < b);

    for &t in order {
        let w = g.node_weight(t);
        let data_ready = |p: ProcId| -> Weight {
            g.preds(t)
                .map(|(pr, ew)| finish[pr.index()] + model.comm_cost(ew, proc_of[pr.index()], p))
                .max()
                .unwrap_or(0)
                .max(startup)
        };
        // Best gap across existing processors.
        let mut best: Option<(ProcId, Weight, bool)> = None;
        for (pi, intervals) in procs.iter().enumerate() {
            let pid = ProcId(pi as u32);
            let ready = data_ready(pid);
            let st = earliest_gap(intervals, ready, w);
            if best.is_none_or(|(_, b, _)| st < b) {
                best = Some((pid, st, false));
            }
        }
        if can_open(procs.len()) {
            let pid = ProcId(procs.len() as u32);
            let st = data_ready(pid);
            if best.is_none_or(|(_, b, _)| st < b) {
                best = Some((pid, st, true));
            }
        }
        let (p, st, is_new) = best.expect("a processor always exists or can be opened");
        if is_new {
            procs.push(Vec::new());
        }
        let intervals = &mut procs[p.index()];
        let pos = intervals.partition_point(|&(s, _)| s < st);
        intervals.insert(pos, (st, st + w));
        placement[t.index()] = (p, st);
        finish[t.index()] = st + w;
        proc_of[t.index()] = p;
    }
    Schedule::new(g, placement)
}

/// The earliest start ≥ `ready` where a task of length `w` fits into
/// the idle gaps of `intervals` (sorted, non-overlapping).
pub(crate) fn earliest_gap(intervals: &[(Weight, Weight)], ready: Weight, w: Weight) -> Weight {
    let mut candidate = ready;
    for &(s, f) in intervals {
        if candidate + w <= s {
            return candidate;
        }
        candidate = candidate.max(f);
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig16;
    use crate::model::{BoundedUniform, LinkAware, PaperUniform};
    use dagsched_sim::{BoundedClique, Clique};

    #[test]
    fn partial_schedule_tracks_times() {
        let g = fig16();
        let mut ps = PartialSchedule::new(&g, &Clique);
        let (p, st, is_new) = ps.best_placement(NodeId(0));
        assert!(is_new);
        assert_eq!(st, 0);
        ps.place(NodeId(0), p, st);
        assert_eq!(ps.num_procs(), 1);
        assert_eq!(ps.finish_of(NodeId(0)), 10);
        // Node 2 on the same processor: free comm, starts at 10.
        assert_eq!(ps.est_on(NodeId(2), p), 10);
        // On a fresh processor: pays comm 5 → max(10 + 5) = 15.
        assert_eq!(ps.est_new(NodeId(2)), 15);
        // Best placement is the existing processor.
        let (bp, bst, bnew) = ps.best_placement(NodeId(2));
        assert_eq!((bp, bst, bnew), (p, 10, false));
    }

    #[test]
    fn place_tracked_round_trips_through_unplace() {
        let g = fig16();
        let mut ps = PartialSchedule::new(&g, &Clique);
        let u0 = ps.place_tracked(NodeId(0), ProcId(0), 0);
        let before = (ps.num_procs(), ps.avail_of(ProcId(0)));
        // A fresh-processor placement closes its processor on undo.
        let u2 = ps.place_tracked(NodeId(2), ProcId(1), ps.est_new(NodeId(2)));
        assert_eq!(ps.num_procs(), 2);
        ps.unplace(u2);
        assert_eq!((ps.num_procs(), ps.avail_of(ProcId(0))), before);
        assert_eq!(ps.proc_of(NodeId(2)), None);
        // A same-processor placement restores the availability it
        // overwrote.
        let avail0 = ps.avail_of(ProcId(0));
        let u2b = ps.place_tracked(NodeId(2), ProcId(0), ps.est_on(NodeId(2), ProcId(0)));
        assert!(ps.avail_of(ProcId(0)) > avail0);
        ps.unplace(u2b);
        assert_eq!(ps.avail_of(ProcId(0)), avail0);
        ps.unplace(u0);
        assert_eq!((ps.num_procs(), ps.num_placed()), (0, 0));
        // The fully undone schedule rebuilds to completion cleanly.
        for &t in g.topo_order() {
            let (p, st, _) = ps.best_placement(t);
            ps.place(t, p, st);
        }
        assert_eq!(ps.num_placed(), g.num_nodes());
        assert_eq!(ps.assignment().len(), g.num_nodes());
    }

    #[test]
    fn bounded_machines_stop_opening_procs() {
        let g = fig16();
        let m = BoundedClique::new(1);
        let mut ps = PartialSchedule::new(&g, &m);
        assert!(ps.can_open());
        ps.place(NodeId(0), ProcId(0), 0);
        assert!(!ps.can_open());
        let (p, _, is_new) = ps.best_placement(NodeId(2));
        assert_eq!(p, ProcId(0));
        assert!(!is_new);
    }

    #[test]
    fn monomorphized_and_dyn_partial_schedules_agree() {
        // The same model through a sized generic and through a trait
        // object makes identical placements.
        let g = fig16();
        let model = PaperUniform;
        let dynm: &dyn dagsched_sim::Machine = &model;
        let mut mono = PartialSchedule::new(&g, &model);
        let mut dynamic = PartialSchedule::new(&g, dynm);
        for &t in g.topo_order() {
            let a = mono.best_placement(t);
            let b = dynamic.best_placement(t);
            assert_eq!(a, b, "{t}");
            mono.place(t, a.0, a.1);
            dynamic.place(t, b.0, b.1);
        }
        assert_eq!(mono.into_schedule(), dynamic.into_schedule());
    }

    #[test]
    fn startup_cost_floors_fresh_processors() {
        let m = LinkAware::parse("procs 2\nstartup 25\nlatency\n0 1\n1 0\nperunit\n0 1\n1 0\n")
            .unwrap();
        let g = fig16();
        let mut ps = PartialSchedule::new(&g, &m);
        // The source's only placement option is a fresh processor,
        // which cannot start before the machine is up.
        let (p, st, is_new) = ps.best_placement(NodeId(0));
        assert!(is_new);
        assert_eq!(st, 25);
        ps.place(NodeId(0), p, st);
        // The second fresh processor starts at max(data arrival, 25).
        assert!(ps.est_new(NodeId(2)) >= 25);
    }

    #[test]
    fn model_limit_caps_processor_opening() {
        let g = fig16();
        let m = BoundedUniform::new(1);
        let mut ps = PartialSchedule::new(&g, &m);
        ps.place(NodeId(0), ProcId(0), 0);
        assert!(!ps.can_open());
    }

    #[test]
    fn ready_queue_orders_by_priority_then_index() {
        let mut q = ReadyQueue::new();
        q.push(NodeId(3), 5);
        q.push(NodeId(1), 9);
        q.push(NodeId(2), 9);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(NodeId(1)));
        assert_eq!(q.pop(), Some(NodeId(2)));
        assert_eq!(q.pop(), Some(NodeId(3)));
        assert!(q.is_empty());
    }

    #[test]
    fn seed_and_release_walk_the_graph() {
        let g = fig16();
        let pr = vec![0; 5];
        let mut q = ReadyQueue::new();
        let mut pending = seed_ready(&g, &pr, &mut q);
        assert_eq!(q.pop(), Some(NodeId(0)));
        assert!(q.is_empty());
        release_succs(&g, NodeId(0), &mut pending, &pr, &mut q);
        let mut ready: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        ready.sort();
        assert_eq!(ready, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn earliest_gap_logic() {
        // Gaps: [10,20] busy, [30,40] busy.
        let iv = vec![(10, 20), (30, 40)];
        assert_eq!(earliest_gap(&iv, 0, 10), 0); // fits before
        assert_eq!(earliest_gap(&iv, 0, 11), 40); // too big for both gaps
        assert_eq!(earliest_gap(&iv, 12, 5), 20); // middle gap
        assert_eq!(earliest_gap(&iv, 35, 5), 40); // after everything
        assert_eq!(earliest_gap(&[], 7, 5), 7);
    }

    #[test]
    fn drivers_agree_across_model_representations() {
        // Each shared driver produces the same schedule whether the
        // paper model arrives as a sized type or as `&dyn Machine`.
        let g = fig16();
        let model = PaperUniform;
        let dynm: &dyn dagsched_sim::Machine = &model;
        let priority = g.blevels_with_comm();
        assert_eq!(
            priority_list(&g, &model, priority),
            priority_list(&g, dynm, priority)
        );
        assert_eq!(
            event_driven(&g, &model, priority, "kernel.test_hist"),
            event_driven(&g, dynm, priority, "kernel.test_hist")
        );
        assert_eq!(
            global_scan(&g, &model, |t, st| (st, t.0)),
            global_scan(&g, dynm, |t, st| (st, t.0))
        );
        let order: Vec<NodeId> = g.topo_order().to_vec();
        assert_eq!(
            static_order_append(&g, &model, &order),
            static_order_append(&g, dynm, &order)
        );
        assert_eq!(
            static_order_insertion(&g, &model, &order),
            static_order_insertion(&g, dynm, &order)
        );
    }
}
