//! The pluggable machine-model layer.
//!
//! The paper's §2 fixes one machine: an arbitrary pool of homogeneous
//! processors where cross-processor communication costs exactly the
//! edge weight. Every heuristic in this crate prices communication
//! through the [`CostModel`] trait instead of hard-coding that rule,
//! so the same scheduling core runs unchanged on the paper's machine
//! ([`PaperUniform`]), on a bounded pool ([`BoundedUniform`]) and on a
//! per-link latency/bandwidth table ([`LinkAware`]).
//!
//! Three layers:
//!
//! * [`CostModel`] — what a *placement decision* needs: the cost of an
//!   edge between two concrete processors, the processor bound, the
//!   startup cost, and the machine-global edge pricing used by level
//!   (priority) computations. Every [`Machine`] is a `CostModel`
//!   through a blanket impl, so `&dyn Machine` call sites keep
//!   working while generic call sites monomorphize.
//! * [`MachineModel`] — a concrete, sized model with an associated
//!   `CostModel` and a stable [`label`](MachineModel::label) used in
//!   checkpoint spec hashes. Sized models flow through
//!   [`Scheduler::schedule_model`](crate::scheduler::Scheduler::schedule_model)
//!   without dynamic dispatch on the hot path.
//! * [`MachineSpec`] — the parsed form of a `--machine` CLI argument
//!   (`uniform`, `bounded:<p>`, `linkaware:<file>`), buildable into a
//!   machine and hashable into a sweep's checkpoint journal.

use dagsched_dag::model::LevelCost;
use dagsched_dag::Weight;
use dagsched_sim::{BoundedClique, Clique, Hypercube, Machine, Mesh2D, ProcId, Ring};
use std::sync::Arc;

/// Placement-time communication pricing — the only way heuristics in
/// this crate read communication costs.
///
/// # Contract
/// Mirrors [`Machine`]: `comm_cost(w, p, p) == 0` and
/// `comm_cost(0, _, _) == 0`.
pub trait CostModel: Send + Sync {
    /// Cost of moving a message of edge-weight `edge` from processor
    /// `from` to processor `to`.
    fn comm_cost(&self, edge: Weight, from: ProcId, to: ProcId) -> Weight;

    /// Upper bound on usable processors; `None` means the paper's
    /// "arbitrary number of homogeneous processors".
    fn processor_limit(&self) -> Option<usize>;

    /// Time before which no processor can start its first task.
    fn startup_cost(&self) -> Weight;

    /// The machine-global edge pricing that level computations
    /// (b-level, t-level, ALAP) should use for priorities under this
    /// model.
    fn level_pricing(&self) -> LevelCost;
}

/// Every [`Machine`] is a [`CostModel`]: the sim-level trait already
/// carries all four facts, this adapter only swaps the argument order
/// to put the edge first.
impl<M: Machine + ?Sized> CostModel for M {
    #[inline]
    fn comm_cost(&self, edge: Weight, from: ProcId, to: ProcId) -> Weight {
        Machine::comm_cost(self, from, to, edge)
    }

    #[inline]
    fn processor_limit(&self) -> Option<usize> {
        self.max_procs()
    }

    #[inline]
    fn startup_cost(&self) -> Weight {
        Machine::startup_cost(self)
    }

    #[inline]
    fn level_pricing(&self) -> LevelCost {
        self.level_cost()
    }
}

/// Unbounded machine pricing every cross-processor edge through a
/// [`LevelCost`] — the internal estimator heuristics use when they
/// must cost tentative decisions without a concrete processor mapping
/// (CLANS quotient macro-schedules, Sarkar's tentative merges).
/// Degenerates to the paper's clique under [`LevelCost::Uniform`].
pub(crate) struct LevelPriced(pub LevelCost);

impl Machine for LevelPriced {
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to {
            0
        } else {
            self.0.cross_cost(w)
        }
    }

    fn level_cost(&self) -> LevelCost {
        self.0
    }

    fn name(&self) -> &'static str {
        "level-priced"
    }
}

/// A concrete, sized machine model: a [`Machine`] with an associated
/// [`CostModel`] and a stable label for checkpoint spec hashes.
///
/// The `Sized` requirement is the point: passing a `MachineModel` to
/// [`Scheduler::schedule_model`](crate::scheduler::Scheduler::schedule_model)
/// monomorphizes the whole scheduling core for that model, so the
/// `PaperUniform` path compiles down to the same code the pre-model
/// crate ran.
pub trait MachineModel: Machine + Sized {
    /// The cost model placements are priced under (for every model in
    /// this module, the machine itself).
    type Cost: CostModel + ?Sized;

    /// The cost model.
    fn cost(&self) -> &Self::Cost;

    /// Stable spec label (`"uniform"`, `"bounded:4"`,
    /// `"linkaware:<fingerprint>"`) — what checkpoint journals record.
    fn label(&self) -> String;
}

/// The paper's §2 machine: an unbounded pool of homogeneous
/// processors, cross-processor communication at exactly the edge
/// weight, free same-processor communication, no startup cost.
///
/// Semantically identical to [`dagsched_sim::Clique`]; it exists as a
/// distinct type so model-parameterized code has a `Default` anchor
/// and a spec label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaperUniform;

impl Machine for PaperUniform {
    #[inline]
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to {
            0
        } else {
            w
        }
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

impl MachineModel for PaperUniform {
    type Cost = Self;

    fn cost(&self) -> &Self {
        self
    }

    fn label(&self) -> String {
        "uniform".into()
    }
}

/// The paper's machine with a finite processor pool — "P identical
/// machines" with uniform communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedUniform {
    procs: usize,
}

impl BoundedUniform {
    /// A pool of exactly `procs ≥ 1` processors.
    pub fn new(procs: usize) -> Self {
        assert!(procs >= 1, "a machine needs at least one processor");
        Self { procs }
    }

    /// The pool size.
    pub fn procs(&self) -> usize {
        self.procs
    }
}

impl Machine for BoundedUniform {
    #[inline]
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to {
            0
        } else {
            w
        }
    }

    fn max_procs(&self) -> Option<usize> {
        Some(self.procs)
    }

    fn name(&self) -> &'static str {
        "bounded"
    }
}

impl MachineModel for BoundedUniform {
    type Cost = Self;

    fn cost(&self) -> &Self {
        self
    }

    fn label(&self) -> String {
        format!("bounded:{}", self.procs)
    }
}

/// A machine described by per-processor-pair link tables: moving a
/// message of weight `w` from `i` to `j` costs
/// `latency[i][j] + w × per_unit[i][j]` (saturating), optionally after
/// a global startup delay. The processor pool is exactly the table's
/// dimension.
///
/// Level computations can't know the endpoints of a future placement,
/// so [`Machine::level_cost`] prices edges with the *mean* off-diagonal
/// latency and per-unit cost — an affine [`LevelCost::Scaled`] kept as
/// an exact rational (`sum / count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkAware {
    procs: usize,
    /// Row-major `procs × procs` fixed per-message latencies.
    latency: Vec<Weight>,
    /// Row-major `procs × procs` per-weight-unit transfer costs.
    per_unit: Vec<Weight>,
    startup: Weight,
    pricing: LevelCost,
    fingerprint: u64,
}

impl LinkAware {
    /// Builds a model from square `latency` and `per_unit` tables
    /// (row-major, equal dimensions ≥ 1, zero diagonals) and a global
    /// `startup` delay.
    ///
    /// # Errors
    /// A human-readable message when the tables are not square, the
    /// dimensions disagree, or a diagonal entry is non-zero.
    pub fn new(
        latency: Vec<Vec<Weight>>,
        per_unit: Vec<Vec<Weight>>,
        startup: Weight,
    ) -> Result<Self, String> {
        let procs = latency.len();
        if procs == 0 {
            return Err("linkaware model needs at least one processor".into());
        }
        if per_unit.len() != procs {
            return Err(format!(
                "latency table is {procs}×{procs} but per-unit table has {} rows",
                per_unit.len()
            ));
        }
        for (name, table) in [("latency", &latency), ("per-unit", &per_unit)] {
            for (i, row) in table.iter().enumerate() {
                if row.len() != procs {
                    return Err(format!(
                        "{name} row {i} has {} entries, expected {procs}",
                        row.len()
                    ));
                }
                if row[i] != 0 {
                    return Err(format!(
                        "{name}[{i}][{i}] = {} — same-processor communication must be free",
                        row[i]
                    ));
                }
            }
        }
        let flat = |t: Vec<Vec<Weight>>| t.into_iter().flatten().collect::<Vec<_>>();
        let (latency, per_unit) = (flat(latency), flat(per_unit));
        // Mean off-diagonal pricing for level computations, kept exact
        // as a rational: cost(w) ≈ mean_latency + w·(Σ per_unit / cnt).
        let cnt = (procs * procs - procs) as u64;
        let pricing = if cnt == 0 {
            LevelCost::Uniform
        } else {
            let sum_lat: u64 = latency.iter().sum();
            let sum_pu: u64 = per_unit.iter().sum();
            LevelCost::Scaled {
                mul: sum_pu,
                div: cnt,
                add: sum_lat / cnt,
            }
        };
        // Content fingerprint (FNV-1a 64) so two tables with the same
        // costs hash to the same spec label regardless of file path.
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(procs as u64);
        eat(startup);
        latency.iter().chain(per_unit.iter()).for_each(|&w| eat(w));
        Ok(Self {
            procs,
            latency,
            per_unit,
            startup,
            pricing,
            fingerprint: h,
        })
    }

    /// Parses the on-disk table format (the `linkaware:<file>` CLI
    /// argument):
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// procs 3
    /// startup 0          # optional, defaults to 0
    /// latency
    /// 0 5 9
    /// 5 0 4
    /// 9 4 0
    /// perunit
    /// 0 2 3
    /// 2 0 1
    /// 3 1 0
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .map(|l| l.split('#').next().unwrap_or("").trim())
            .filter(|l| !l.is_empty());
        let mut procs: Option<usize> = None;
        let mut startup: Weight = 0;
        let mut latency: Option<Vec<Vec<Weight>>> = None;
        let mut per_unit: Option<Vec<Vec<Weight>>> = None;
        let read_table = |lines: &mut dyn Iterator<Item = &str>,
                          n: usize,
                          what: &str|
         -> Result<Vec<Vec<Weight>>, String> {
            (0..n)
                .map(|i| {
                    let row = lines
                        .next()
                        .ok_or_else(|| format!("{what} table ends after {i} of {n} rows"))?;
                    row.split_whitespace()
                        .map(|t| {
                            t.parse::<Weight>()
                                .map_err(|_| format!("bad {what} entry {t:?} in row {i}"))
                        })
                        .collect()
                })
                .collect()
        };
        while let Some(line) = lines.next() {
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            match key {
                "procs" => {
                    let p = rest
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad procs count {rest:?}"))?;
                    procs = Some(p);
                }
                "startup" => {
                    startup = rest
                        .trim()
                        .parse::<Weight>()
                        .map_err(|_| format!("bad startup cost {rest:?}"))?;
                }
                "latency" => {
                    let n = procs.ok_or("`procs N` must come before the latency table")?;
                    latency = Some(read_table(&mut lines, n, "latency")?);
                }
                "perunit" => {
                    let n = procs.ok_or("`procs N` must come before the perunit table")?;
                    per_unit = Some(read_table(&mut lines, n, "perunit")?);
                }
                other => return Err(format!("unknown directive {other:?}")),
            }
        }
        Self::new(
            latency.ok_or("missing latency table")?,
            per_unit.ok_or("missing perunit table")?,
            startup,
        )
    }

    /// The content fingerprint embedded in this model's spec label.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl Machine for LinkAware {
    #[inline]
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to || w == 0 {
            return 0;
        }
        let i = from.index() * self.procs + to.index();
        self.latency[i].saturating_add(w.saturating_mul(self.per_unit[i]))
    }

    fn max_procs(&self) -> Option<usize> {
        Some(self.procs)
    }

    fn startup_cost(&self) -> Weight {
        self.startup
    }

    fn level_cost(&self) -> LevelCost {
        self.pricing
    }

    fn name(&self) -> &'static str {
        "linkaware"
    }
}

impl MachineModel for LinkAware {
    type Cost = Self;

    fn cost(&self) -> &Self {
        self
    }

    fn label(&self) -> String {
        format!("linkaware:{:016x}", self.fingerprint)
    }
}

/// The parsed form of a `--machine` argument: buildable into a
/// machine, printable into a checkpoint spec hash.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum MachineSpec {
    /// `uniform` — the paper's machine ([`PaperUniform`]).
    #[default]
    Uniform,
    /// `bounded:<p>` — [`BoundedUniform`] with `p` processors.
    Bounded(usize),
    /// `linkaware:<file>` — a [`LinkAware`] table, already loaded.
    LinkAware(Arc<LinkAware>),
}

impl MachineSpec {
    /// Parses a `--machine` argument. `linkaware:<file>` reads and
    /// parses the table file immediately, so a bad table fails at the
    /// CLI boundary rather than mid-sweep.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "uniform" {
            return Ok(MachineSpec::Uniform);
        }
        if let Some(p) = spec.strip_prefix("bounded:") {
            let p: usize = p
                .parse()
                .map_err(|_| format!("bad processor count in {spec:?}"))?;
            if p == 0 {
                return Err("bounded machine needs at least one processor".into());
            }
            return Ok(MachineSpec::Bounded(p));
        }
        if let Some(path) = spec.strip_prefix("linkaware:") {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read linkaware table {path:?}: {e}"))?;
            let model = LinkAware::parse(&text)
                .map_err(|e| format!("bad linkaware table {path:?}: {e}"))?;
            return Ok(MachineSpec::LinkAware(Arc::new(model)));
        }
        Err(format!(
            "unknown machine {spec:?} (expected uniform, bounded:<p> or linkaware:<file>)"
        ))
    }

    /// The stable label recorded in checkpoint spec hashes — matches
    /// [`MachineModel::label`] of the built machine.
    pub fn label(&self) -> String {
        match self {
            MachineSpec::Uniform => "uniform".into(),
            MachineSpec::Bounded(p) => format!("bounded:{p}"),
            MachineSpec::LinkAware(m) => m.label(),
        }
    }

    /// Builds the machine behind a shared pointer (what sweep runners
    /// hand to worker threads).
    pub fn build(&self) -> Arc<dyn Machine> {
        match self {
            MachineSpec::Uniform => {
                dagsched_obs::counter_add("model.build.uniform", 1);
                Arc::new(PaperUniform)
            }
            MachineSpec::Bounded(p) => {
                dagsched_obs::counter_add("model.build.bounded", 1);
                Arc::new(BoundedUniform::new(*p))
            }
            MachineSpec::LinkAware(m) => {
                dagsched_obs::counter_add("model.build.linkaware", 1);
                m.clone()
            }
        }
    }

    /// The spec kind without parameters (`uniform`, `bounded`,
    /// `linkaware`).
    pub fn kind(&self) -> &'static str {
        match self {
            MachineSpec::Uniform => "uniform",
            MachineSpec::Bounded(_) => "bounded",
            MachineSpec::LinkAware(_) => "linkaware",
        }
    }
}

/// Why a `--machine` spec was rejected. [`parse_machine`] reports
/// failures through this structured error so callers — CLI usage
/// text, server error codes, tests — can react to the *kind* of
/// failure instead of substring-matching a message. In particular a
/// degenerate zero-processor machine (`bounded:0`, `ring:0`,
/// `mesh:0x3`) is its own variant: pre-structured-error code paths
/// that let such specs through only failed (or divided by zero in
/// efficiency metrics) far downstream of the parse boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineParseError {
    /// The spec matched no production of the machine grammar.
    UnknownMachine(String),
    /// A numeric field (`ring:<N>`, `bounded:<P>`, …) did not parse.
    BadNumber {
        /// Grammar production the field belongs to.
        kind: &'static str,
        /// Which field failed (`size`, `rows`, `cols`, `dim`, `bound`).
        field: &'static str,
    },
    /// The spec names a machine with zero processors.
    ZeroProcessors {
        /// Grammar production that produced the zero (`bounded`, …).
        kind: &'static str,
    },
    /// A dimension is too large to materialize (`hypercube:50`).
    DimensionTooLarge {
        /// Grammar production the dimension belongs to.
        kind: &'static str,
        /// Largest accepted value.
        max: usize,
    },
    /// The spec's shape is wrong (e.g. `mesh:` without `RxC`).
    Malformed {
        /// Grammar production that failed.
        kind: &'static str,
        /// What the production expects.
        expected: &'static str,
    },
    /// A `linkaware:<FILE>` table could not be read.
    Io {
        /// The file the spec pointed at.
        path: String,
        /// The underlying I/O error, stringified.
        error: String,
    },
    /// A `linkaware:<FILE>` table was read but is invalid.
    BadTable {
        /// The file the spec pointed at.
        path: String,
        /// What the table parser rejected.
        error: String,
    },
}

impl std::fmt::Display for MachineParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineParseError::UnknownMachine(spec) => write!(
                f,
                "unknown machine {spec:?} (expected clique, uniform, ring:<N>, \
                 mesh:<R>x<C>, hypercube:<D>, bounded:<P> or linkaware:<FILE>)"
            ),
            MachineParseError::BadNumber { kind, field } => {
                write!(f, "bad {kind} {field}: not a number")
            }
            MachineParseError::ZeroProcessors { kind } => {
                write!(f, "{kind} machine needs at least one processor")
            }
            MachineParseError::DimensionTooLarge { kind, max } => {
                write!(f, "{kind} dimension too large (max {max})")
            }
            MachineParseError::Malformed { kind, expected } => {
                write!(f, "malformed {kind} spec: expected {expected}")
            }
            MachineParseError::Io { path, error } => {
                write!(f, "cannot read machine file {path}: {error}")
            }
            MachineParseError::BadTable { path, error } => {
                write!(f, "bad linkaware table {path}: {error}")
            }
        }
    }
}

impl std::error::Error for MachineParseError {}

/// Builds a machine from the full `--machine` grammar shared by the
/// CLI and the scheduling server:
///
/// ```text
/// clique | uniform | ring:<N> | mesh:<R>x<C> | hypercube:<D>
/// | bounded:<P> | linkaware:<FILE>
/// ```
///
/// `uniform` is the paper's §2 cost model ([`PaperUniform`]) — the
/// same semantics as `clique`, named by cost model rather than
/// topology. `linkaware:<FILE>` reads the per-pair latency/bandwidth
/// table immediately, so a bad table fails at the request boundary.
/// Degenerate machines (zero processors anywhere in the spec) are
/// rejected here, at parse time, with
/// [`MachineParseError::ZeroProcessors`].
pub fn parse_machine(spec: &str) -> Result<Box<dyn Machine>, MachineParseError> {
    if spec == "clique" {
        return Ok(Box::new(Clique));
    }
    if spec == "uniform" {
        return Ok(Box::new(PaperUniform));
    }
    if let Some(path) = spec.strip_prefix("linkaware:") {
        let text = std::fs::read_to_string(path).map_err(|e| MachineParseError::Io {
            path: path.to_string(),
            error: e.to_string(),
        })?;
        let model = LinkAware::parse(&text).map_err(|e| MachineParseError::BadTable {
            path: path.to_string(),
            error: e,
        })?;
        return Ok(Box::new(model));
    }
    if let Some(n) = spec.strip_prefix("ring:") {
        let n: usize = n.parse().map_err(|_| MachineParseError::BadNumber {
            kind: "ring",
            field: "size",
        })?;
        if n == 0 {
            return Err(MachineParseError::ZeroProcessors { kind: "ring" });
        }
        return Ok(Box::new(Ring::new(n)));
    }
    if let Some(rc) = spec.strip_prefix("mesh:") {
        let (r, c) = rc.split_once('x').ok_or(MachineParseError::Malformed {
            kind: "mesh",
            expected: "<R>x<C>",
        })?;
        let r: usize = r.parse().map_err(|_| MachineParseError::BadNumber {
            kind: "mesh",
            field: "rows",
        })?;
        let c: usize = c.parse().map_err(|_| MachineParseError::BadNumber {
            kind: "mesh",
            field: "cols",
        })?;
        if r == 0 || c == 0 {
            return Err(MachineParseError::ZeroProcessors { kind: "mesh" });
        }
        return Ok(Box::new(Mesh2D::new(r, c)));
    }
    if let Some(d) = spec.strip_prefix("hypercube:") {
        let d: u32 = d.parse().map_err(|_| MachineParseError::BadNumber {
            kind: "hypercube",
            field: "dim",
        })?;
        if d > 20 {
            return Err(MachineParseError::DimensionTooLarge {
                kind: "hypercube",
                max: 20,
            });
        }
        return Ok(Box::new(Hypercube::new(d)));
    }
    if let Some(p) = spec.strip_prefix("bounded:") {
        let p: usize = p.parse().map_err(|_| MachineParseError::BadNumber {
            kind: "bounded",
            field: "bound",
        })?;
        if p == 0 {
            return Err(MachineParseError::ZeroProcessors { kind: "bounded" });
        }
        return Ok(Box::new(BoundedClique::new(p)));
    }
    Err(MachineParseError::UnknownMachine(spec.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn parse_machine_accepts_the_full_grammar() {
        assert_eq!(parse_machine("clique").unwrap().name(), "clique");
        assert_eq!(parse_machine("uniform").unwrap().name(), "uniform");
        assert_eq!(parse_machine("ring:5").unwrap().max_procs(), Some(5));
        assert_eq!(parse_machine("mesh:2x3").unwrap().max_procs(), Some(6));
        assert_eq!(parse_machine("hypercube:3").unwrap().max_procs(), Some(8));
        assert_eq!(parse_machine("bounded:4").unwrap().max_procs(), Some(4));
        for bad in [
            "nope",
            "ring:0",
            "ring:x",
            "mesh:2",
            "mesh:0x3",
            "bounded:0",
            "hypercube:50",
            "linkaware:/no/such/file",
        ] {
            assert!(parse_machine(bad).is_err(), "{bad}");
        }
        // The rejections are structured, not stringly: zero-processor
        // machines in particular get their own variant so callers can
        // tell a degenerate machine from a typo. (`dyn Machine` isn't
        // `Debug`, so project the Ok side onto its name first.)
        use MachineParseError as E;
        let err = |spec: &str| parse_machine(spec).map(|m| m.name()).unwrap_err();
        assert_eq!(err("bounded:0"), E::ZeroProcessors { kind: "bounded" });
        assert_eq!(err("ring:0"), E::ZeroProcessors { kind: "ring" });
        assert_eq!(err("mesh:0x3"), E::ZeroProcessors { kind: "mesh" });
        assert_eq!(err("mesh:3x0"), E::ZeroProcessors { kind: "mesh" });
        assert_eq!(
            err("ring:x"),
            E::BadNumber {
                kind: "ring",
                field: "size"
            }
        );
        assert_eq!(
            err("mesh:2"),
            E::Malformed {
                kind: "mesh",
                expected: "<R>x<C>"
            }
        );
        assert_eq!(
            err("hypercube:50"),
            E::DimensionTooLarge {
                kind: "hypercube",
                max: 20
            }
        );
        assert!(matches!(err("nope"), E::UnknownMachine(s) if s == "nope"));
        assert!(matches!(
            err("linkaware:/no/such/file"),
            E::Io { path, .. } if path == "/no/such/file"
        ));
        // Display stays human-readable for CLI/server surfaces.
        let msg = err("bounded:0").to_string();
        assert!(msg.contains("at least one processor"), "{msg}");
    }

    #[test]
    fn paper_uniform_matches_clique_semantics() {
        let (u, c) = (PaperUniform, dagsched_sim::Clique);
        for (a, b, w) in [(0, 0, 9), (0, 7, 9), (3, 1, 0), (2, 5, 17)] {
            assert_eq!(
                Machine::comm_cost(&u, p(a), p(b), w),
                Machine::comm_cost(&c, p(a), p(b), w)
            );
        }
        assert_eq!(u.max_procs(), None);
        assert_eq!(Machine::startup_cost(&u), 0);
        assert!(u.level_cost().is_uniform());
        assert_eq!(u.label(), "uniform");
    }

    #[test]
    fn cost_model_blanket_swaps_argument_order() {
        // The same machine read through both traits agrees.
        let m = BoundedUniform::new(4);
        assert_eq!(CostModel::comm_cost(&m, 9, p(0), p(2)), 9);
        assert_eq!(CostModel::comm_cost(&m, 9, p(2), p(2)), 0);
        assert_eq!(CostModel::processor_limit(&m), Some(4));
        assert_eq!(CostModel::startup_cost(&m), 0);
        assert!(CostModel::level_pricing(&m).is_uniform());
        // And through a trait object.
        let d: &dyn Machine = &m;
        assert_eq!(CostModel::comm_cost(d, 5, p(1), p(3)), 5);
    }

    #[test]
    fn bounded_uniform_labels_and_limits() {
        let m = BoundedUniform::new(4);
        assert_eq!(m.label(), "bounded:4");
        assert_eq!(m.max_procs(), Some(4));
        assert_eq!(Machine::comm_cost(&m, p(0), p(1), 7), 7);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn bounded_uniform_rejects_zero() {
        BoundedUniform::new(0);
    }

    #[test]
    fn linkaware_prices_pairs_independently() {
        let m = LinkAware::new(
            vec![vec![0, 5, 9], vec![5, 0, 4], vec![9, 4, 0]],
            vec![vec![0, 2, 3], vec![2, 0, 1], vec![3, 1, 0]],
            0,
        )
        .unwrap();
        // cost(0→1, w=10) = 5 + 10·2 = 25; cost(0→2) = 9 + 10·3 = 39.
        assert_eq!(Machine::comm_cost(&m, p(0), p(1), 10), 25);
        assert_eq!(Machine::comm_cost(&m, p(0), p(2), 10), 39);
        assert_eq!(Machine::comm_cost(&m, p(1), p(1), 10), 0);
        // Zero-weight messages stay free even with nonzero latency.
        assert_eq!(Machine::comm_cost(&m, p(0), p(1), 0), 0);
        assert_eq!(m.max_procs(), Some(3));
        // Level pricing is the off-diagonal mean: Σpu=12 over 6 pairs,
        // mean latency (5+9+5+4+9+4)/6 = 6.
        assert_eq!(
            m.level_cost(),
            LevelCost::Scaled {
                mul: 12,
                div: 6,
                add: 6
            }
        );
    }

    #[test]
    fn linkaware_rejects_malformed_tables() {
        // Non-zero diagonal.
        assert!(LinkAware::new(vec![vec![1]], vec![vec![0]], 0).is_err());
        // Ragged row.
        assert!(
            LinkAware::new(vec![vec![0, 1], vec![1]], vec![vec![0, 1], vec![1, 0]], 0).is_err()
        );
        // Dimension mismatch between the two tables.
        assert!(LinkAware::new(vec![vec![0]], vec![vec![0, 1], vec![1, 0]], 0).is_err());
        // Empty.
        assert!(LinkAware::new(vec![], vec![], 0).is_err());
    }

    #[test]
    fn linkaware_parses_the_file_format() {
        let text = "\
# a 2-processor asymmetric machine
procs 2
startup 3
latency
0 5
7 0
perunit
0 2   # comments after values are fine
4 0
";
        let m = LinkAware::parse(text).unwrap();
        assert_eq!(Machine::comm_cost(&m, p(0), p(1), 10), 25);
        assert_eq!(Machine::comm_cost(&m, p(1), p(0), 10), 47);
        assert_eq!(Machine::startup_cost(&m), 3);
        assert_eq!(m.max_procs(), Some(2));
        // Same table → same fingerprint; different → different.
        let again = LinkAware::parse(text).unwrap();
        assert_eq!(m.fingerprint(), again.fingerprint());
        let other = LinkAware::parse(&text.replace("0 5", "0 6")).unwrap();
        assert_ne!(m.fingerprint(), other.fingerprint());
    }

    #[test]
    fn linkaware_parse_errors_are_informative() {
        assert!(LinkAware::parse("latency\n0\n")
            .unwrap_err()
            .contains("procs"));
        assert!(LinkAware::parse("procs 2\nlatency\n0 1\n")
            .unwrap_err()
            .contains("ends after"));
        assert!(LinkAware::parse("bogus 3\n").unwrap_err().contains("bogus"));
        assert!(LinkAware::parse("procs 1\nlatency\n0\n")
            .unwrap_err()
            .contains("perunit"));
    }

    #[test]
    fn machine_spec_round_trips() {
        let u = MachineSpec::parse("uniform").unwrap();
        assert_eq!(u, MachineSpec::Uniform);
        assert_eq!(u.label(), "uniform");
        assert_eq!(u.build().name(), "uniform");

        let b = MachineSpec::parse("bounded:4").unwrap();
        assert_eq!(b, MachineSpec::Bounded(4));
        assert_eq!(b.label(), "bounded:4");
        assert_eq!(b.build().max_procs(), Some(4));

        assert!(MachineSpec::parse("bounded:0").is_err());
        assert!(MachineSpec::parse("bounded:x").is_err());
        assert!(MachineSpec::parse("hyperdrive").is_err());
        assert!(MachineSpec::parse("linkaware:/no/such/file").is_err());
        assert_eq!(MachineSpec::default(), MachineSpec::Uniform);
    }

    #[test]
    fn machine_spec_reads_linkaware_files() {
        let dir = std::env::temp_dir().join(format!("dagsched-model-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("links.machine");
        std::fs::write(&path, "procs 2\nlatency\n0 1\n1 0\nperunit\n0 1\n1 0\n").unwrap();
        let spec = MachineSpec::parse(&format!("linkaware:{}", path.display())).unwrap();
        assert_eq!(spec.kind(), "linkaware");
        assert!(spec.label().starts_with("linkaware:"));
        let m = spec.build();
        assert_eq!(m.max_procs(), Some(2));
        assert_eq!(m.comm_cost(p(0), p(1), 3), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
