//! DSH — a duplication scheduling heuristic in the spirit of
//! Kruatrachue & Lewis (the paper's reference \[12\], by the same
//! authors as MH/HU).
//!
//! The paper's comparison forbids duplication (assumption 3) because
//! "duplication adds additional complexity to an already intractable
//! problem that none of our competing methods use" — while noting that
//! references \[2, 12, 16\] exploit it to cut communication. This module
//! provides that excluded dimension as an extension: list scheduling
//! where, when a task's start on a processor is dominated by a remote
//! predecessor's message, the predecessor is *re-executed* locally if
//! that delivers sooner.
//!
//! Simplifications versus the original (documented, benign for the
//! comparison): duplicated copies append to the end of a processor's
//! timeline rather than filling idle slots, and duplication examines
//! direct predecessors only (no recursive ancestor chains). Both make
//! DSH strictly weaker, so any advantage it shows over the non-
//! duplicating heuristics is a lower bound.

use dagsched_dag::analysis::PricedLevels;
use dagsched_dag::{topo, Dag, NodeId, Weight};
use dagsched_sim::dup::DupSchedule;
use dagsched_sim::{Machine, ProcId};

/// The duplication scheduling heuristic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dsh;

#[derive(Debug, Clone, Copy)]
struct Copy {
    proc: ProcId,
    finish: Weight,
}

/// One candidate placement: the start achieved on a processor plus
/// the predecessor duplications that achieve it.
struct Candidate {
    proc: ProcId,
    start: Weight,
    is_new: bool,
    dups: Vec<(NodeId, Weight)>, // (pred, start of the duplicate)
}

impl Dsh {
    /// Schedules `g` with duplication on `machine` (monomorphized —
    /// `&dyn Machine` also works through the generic's `?Sized` bound).
    pub fn schedule<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> DupSchedule {
        let n = g.num_nodes();
        let levels = PricedLevels::new(g, machine.level_cost());
        let order = topo::priority_topo_order(g, levels.blevels());

        let mut copies: Vec<Vec<Copy>> = vec![Vec::new(); n];
        let mut raw: Vec<Vec<(ProcId, Weight)>> = vec![Vec::new(); n];
        let mut proc_avail: Vec<Weight> = Vec::new();
        let can_open = |k: usize| machine.max_procs().is_none_or(|b| k < b);

        for &t in &order {
            let mut best: Option<Candidate> = None;
            let existing = proc_avail.len();
            #[allow(clippy::needless_range_loop)] // pi == existing encodes "open a new processor"
            for pi in 0..=existing {
                let is_new = pi == existing;
                if is_new && !can_open(existing) {
                    continue;
                }
                let proc = ProcId(pi as u32);
                let avail = if is_new {
                    machine.startup_cost()
                } else {
                    proc_avail[pi]
                };
                let cand = self.evaluate_on(g, machine, &copies, t, proc, avail);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (cand.start, cand.is_new as u8, cand.proc.0)
                            < (b.start, b.is_new as u8, b.proc.0)
                    }
                };
                if better {
                    best = Some(Candidate {
                        proc,
                        is_new,
                        ..cand
                    });
                }
            }
            let cand = best.expect("some processor is always available");
            if cand.is_new {
                proc_avail.push(0);
            }
            // Commit duplications, then the task copy.
            for &(pred, st) in &cand.dups {
                let fin = st + g.node_weight(pred);
                copies[pred.index()].push(Copy {
                    proc: cand.proc,
                    finish: fin,
                });
                raw[pred.index()].push((cand.proc, st));
                proc_avail[cand.proc.index()] = fin;
            }
            let fin = cand.start + g.node_weight(t);
            copies[t.index()].push(Copy {
                proc: cand.proc,
                finish: fin,
            });
            raw[t.index()].push((cand.proc, cand.start));
            proc_avail[cand.proc.index()] = fin;
        }

        DupSchedule::new(g, raw)
    }

    /// Evaluates placing `t` on `proc` (availability `avail`),
    /// greedily duplicating dominant predecessors while that reduces
    /// the start.
    fn evaluate_on<M: Machine + ?Sized>(
        &self,
        g: &Dag,
        machine: &M,
        copies: &[Vec<Copy>],
        t: NodeId,
        proc: ProcId,
        avail: Weight,
    ) -> Candidate {
        let delivery = |v: NodeId, w: Weight, local: &[(NodeId, Weight)]| -> Weight {
            // Earliest delivery of v to `proc`, considering committed
            // copies plus tentative local duplicates.
            let committed = copies[v.index()]
                .iter()
                .map(|c| c.finish + machine.comm_cost(c.proc, proc, w))
                .min();
            let dup = local
                .iter()
                .find(|(d, _)| *d == v)
                .map(|&(_, st)| st + g.node_weight(v));
            match (committed, dup) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!("predecessors are scheduled before successors"),
            }
        };

        let mut local: Vec<(NodeId, Weight)> = Vec::new();
        let mut avail = avail;
        let mut duplicated: std::collections::HashSet<u32> = Default::default();
        loop {
            let arrivals: Vec<(Weight, NodeId)> = g
                .preds(t)
                .map(|(p, w)| (delivery(p, w, &local), p))
                .collect();
            let start = arrivals
                .iter()
                .map(|&(a, _)| a)
                .max()
                .unwrap_or(0)
                .max(avail);
            // The dominant predecessor: latest arrival, strictly after
            // the processor frees up (otherwise duplication cannot
            // help) and not already duplicated here.
            let dominant = arrivals
                .iter()
                .filter(|&&(a, p)| a == start && a > avail && !duplicated.contains(&p.0))
                .map(|&(_, p)| p)
                .min();
            let Some(pred) = dominant else {
                return Candidate {
                    proc,
                    start,
                    is_new: false,
                    dups: local,
                };
            };
            // Can the predecessor itself run here? Its inputs must be
            // deliverable from committed copies (single-level rule:
            // grand-predecessors are not duplicated).
            let dr = g
                .preds(pred)
                .map(|(pp, w)| delivery(pp, w, &local))
                .max()
                .unwrap_or(0);
            let dup_start = dr.max(avail);
            let dup_finish = dup_start + g.node_weight(pred);
            // Recompute the start with the duplicate in place.
            let new_start = arrivals
                .iter()
                .map(|&(a, p)| if p == pred { dup_finish } else { a })
                .max()
                .unwrap_or(0)
                .max(dup_finish);
            // Accept non-worsening duplications: when several remote
            // predecessors tie at the dominant arrival, each duplicate
            // alone leaves the max unchanged and only the set of them
            // lowers it. The loop terminates because every iteration
            // marks a fresh predecessor.
            if new_start <= start {
                duplicated.insert(pred.0);
                local.push((pred, dup_start));
                avail = dup_finish;
            } else {
                return Candidate {
                    proc,
                    start,
                    is_new: false,
                    dups: local,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core_test_helpers::*;
    use dagsched_sim::Clique;

    /// Local helpers (kept in a mod so the path above reads clearly).
    mod dagsched_core_test_helpers {
        pub use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
        pub use crate::listsched::mh::Mh;
        pub use crate::scheduler::Scheduler;
    }

    fn fan_out(fan: usize, src_w: u64, task_w: u64, comm: u64) -> Dag {
        let mut b = dagsched_dag::DagBuilder::new();
        let s = b.add_node(src_w);
        for _ in 0..fan {
            let v = b.add_node(task_w);
            b.add_edge(s, v, comm).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn schedules_are_valid_with_duplication_semantics() {
        for g in [
            fig16(),
            coarse_fork_join(),
            fine_fork_join(),
            fan_out(5, 5, 20, 100),
        ] {
            let s = Dsh.schedule(&g, &Clique);
            let v = s.check(&g, &Clique);
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn duplication_unlocks_fan_out_parallelism() {
        // A tiny source with huge fan-out edges: without duplication
        // the children either serialize behind the source or pay the
        // communication; with it every processor re-runs the source.
        let g = fan_out(6, 5, 50, 1000);
        let dup = Dsh.schedule(&g, &Clique);
        assert!(dup.check(&g, &Clique).is_empty());
        let mh = Mh.schedule(&g, &Clique);
        assert!(
            dup.makespan() < mh.makespan(),
            "DSH {} vs MH {}",
            dup.makespan(),
            mh.makespan()
        );
        // Fully duplicated source: 6 copies + the original is not
        // required, but at least one extra copy must exist.
        assert!(dup.total_copies() > g.num_nodes());
        // Optimal here: every child starts right after a local source
        // copy: makespan = 5 + 50.
        assert_eq!(dup.makespan(), 55);
    }

    #[test]
    fn no_duplication_when_it_cannot_help() {
        // A chain gains nothing from duplication.
        let g = dagsched_gen::families::chain(6, 10, 50);
        let s = Dsh.schedule(&g, &Clique);
        assert!(s.check(&g, &Clique).is_empty());
        assert_eq!(s.total_copies(), 6);
        assert_eq!(s.makespan(), 60);
        assert_eq!(s.num_procs(), 1);
    }

    #[test]
    fn never_worse_than_serial_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Dsh.schedule(&g, &Clique);
            assert!(
                s.makespan() <= g.serial_time(),
                "DSH {} vs serial {}",
                s.makespan(),
                g.serial_time()
            );
        }
    }

    #[test]
    fn respects_processor_bounds() {
        let g = fan_out(6, 5, 50, 1000);
        let m = dagsched_sim::BoundedClique::new(2);
        let s = Dsh.schedule(&g, &m);
        assert!(s.check(&g, &m).is_empty());
        assert!(s.num_procs() <= 2);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = dagsched_dag::DagBuilder::new().build().unwrap();
        assert_eq!(Dsh.schedule(&empty, &Clique).makespan(), 0);
        let mut b = dagsched_dag::DagBuilder::new();
        b.add_node(7);
        let g = b.build().unwrap();
        let s = Dsh.schedule(&g, &Clique);
        assert_eq!(s.makespan(), 7);
        assert_eq!(s.total_copies(), 1);
    }
}
