//! MH — the Mapping Heuristic of El-Rewini & Lewis.
//!
//! Per the paper's appendix A.3 / Figure 11:
//!
//! * each node's priority is its *level* "as defined by Gerasoulis and
//!   Yang" — the b-level including communication costs;
//! * the dispatcher is **event-driven**: when a task completes, its
//!   satisfied successors enter the free list; all currently free
//!   tasks are then allocated in level order, each to "the processor
//!   on which T could start the earliest" (with homogeneous
//!   processors, starting earliest is finishing earliest).
//!
//! The event-driven free list is what distinguishes MH from MCP under
//! a shared earliest-start placement: MH commits a task as soon as it
//! becomes free in simulated time, even when a more critical task
//! will free up a moment later, whereas MCP dispatches strictly in
//! global ALAP order. MH is also the only heuristic here that is
//! topology-aware (messages are priced by the machine), though the
//! paper's experiments — and ours — run it on the fully connected
//! network where every topology degenerates to the clique.
//!
//! The virtual single exit node of Figure 11 exists only to make the
//! level computation well defined on multi-sink graphs; computing
//! b-levels directly is equivalent, so no node is materialized.

use crate::model::MachineModel;
use crate::scheduler::{kernel, Scheduler};
use dagsched_dag::analysis::PricedLevels;
use dagsched_dag::Dag;
use dagsched_obs as obs;
use dagsched_sim::{Machine, Schedule};

/// The Mapping Heuristic (comm- and topology-aware, event-driven list
/// scheduling).
#[derive(Debug, Clone, Copy, Default)]
pub struct Mh;

impl Mh {
    /// Monomorphized core: priority is the communication b-level
    /// priced under the machine's level cost; dispatch is the kernel's
    /// event-driven driver.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let _span = obs::span!("mh.dispatch");
        let levels = PricedLevels::new(g, machine.level_cost());
        let priority = levels.blevels();
        obs::counter_add("mh.priority_computed", g.num_nodes() as u64);
        kernel::event_driven(g, machine, priority, "mh.ready_list_len")
    }
}

impl Scheduler for Mh {
    fn name(&self) -> &'static str {
        "MH"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, BoundedClique, Clique, Ring};

    #[test]
    fn fig16_schedule_is_valid_and_sensible() {
        let g = fig16();
        let s = Mh.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        // MH keeps the critical path 0→2→3→4 local and forks node 1
        // off; parallel time must not exceed serial.
        assert!(s.makespan() <= g.serial_time());
    }

    #[test]
    fn exploits_coarse_parallelism() {
        let g = coarse_fork_join();
        let s = Mh.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        let m = metrics::measures(&g, &s);
        assert!(
            m.speedup > 2.0,
            "coarse fork-join parallelizes well, got {}",
            m.speedup
        );
        assert!(s.num_procs() >= 4);
    }

    #[test]
    fn keeps_fine_grain_on_few_processors() {
        // With comm 500 ≫ node weights, starting anywhere but the data
        // holder is never earliest: MH serializes and stays ≈ serial.
        let g = fine_fork_join();
        let s = Mh.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), g.serial_time());
    }

    #[test]
    fn event_driven_dispatch_allocates_in_completion_order() {
        // Two sources: a long one (high level) and a short one whose
        // successor frees *early*. Event-driven MH must allocate the
        // early successor before the late one becomes free.
        let g = dagsched_gen::pdg::from_lists(&[100, 10, 10, 10], &[(0, 3, 1), (1, 2, 1)]).unwrap();
        let s = Mh.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        // Task 2 (freed at t=10) starts before task 3 (freed at t=100).
        assert!(s.start_of(dagsched_dag::NodeId(2)) < s.start_of(dagsched_dag::NodeId(3)));
    }

    #[test]
    fn respects_bounded_machines() {
        let g = coarse_fork_join();
        for bound in [1usize, 2, 3] {
            let m = BoundedClique::new(bound);
            let s = Mh.schedule(&g, &m);
            assert!(s.num_procs() <= bound);
            assert!(validate::is_valid(&g, &m, &s));
        }
    }

    #[test]
    fn topology_awareness_prices_hops() {
        // On a ring the same decisions must still validate under
        // hop-priced communication.
        let g = coarse_fork_join();
        let m = Ring::new(4);
        let s = Mh.schedule(&g, &m);
        assert!(validate::is_valid(&g, &m, &s));
        assert!(s.num_procs() <= 4);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn records_ready_list_shape_when_scoped() {
        let scope = dagsched_obs::run_scope();
        let g = coarse_fork_join();
        Mh.schedule(&g, &Clique);
        let stats = scope.finish();
        assert_eq!(stats.counter("mh.priority_computed"), g.num_nodes() as u64);
        let h = stats
            .histogram("mh.ready_list_len")
            .expect("waves recorded");
        assert!(h.count() > 0);
        // The fork releases all middle nodes at once.
        assert!(h.max() >= 4);
        assert!(stats.span("mh.dispatch").is_some());
    }

    #[test]
    fn single_node_and_empty() {
        let mut b = dagsched_dag::DagBuilder::new();
        b.add_node(5);
        let g = b.build().unwrap();
        let s = Mh.schedule(&g, &Clique);
        assert_eq!(s.makespan(), 5);
        let empty = dagsched_dag::DagBuilder::new().build().unwrap();
        assert_eq!(Mh.schedule(&empty, &Clique).makespan(), 0);
    }
}
