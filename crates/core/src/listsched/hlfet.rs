//! HLFET — Highest Level First with Estimated Times (Adam, Chandy &
//! Dickson), an extension scheduler beyond the paper's five.
//!
//! Like HU it prioritizes by the *computation-only* static level, but
//! unlike HU its placement is communication-aware (earliest actual
//! start). It isolates how much of HU's deficit comes from the
//! priority function versus the oblivious placement — the
//! `ablation_hu_comm_aware` bench builds on it.

use crate::model::MachineModel;
use crate::scheduler::{kernel, Scheduler};
use dagsched_dag::Dag;
use dagsched_sim::{Machine, Schedule};

/// Highest Level First with Estimated Times.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hlfet;

impl Hlfet {
    /// Monomorphized core: the computation-only static level (a
    /// model-independent priority) through the kernel's priority-list
    /// driver.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        kernel::priority_list(g, machine, g.blevels_computation())
    }
}

impl Scheduler for Hlfet {
    fn name(&self) -> &'static str {
        "HLFET"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use crate::listsched::hu::Hu;
    use dagsched_sim::{metrics, validate, Clique};

    #[test]
    fn valid_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Hlfet.schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s));
        }
    }

    #[test]
    fn comm_aware_placement_beats_hu_on_fine_grains() {
        // Same priority as HU, aware placement: HLFET must not retard
        // the fine-grained fork-join, HU must.
        let g = fine_fork_join();
        let hlfet = metrics::measures(&g, &Hlfet.schedule(&g, &Clique));
        let hu = metrics::measures(&g, &Hu.schedule(&g, &Clique));
        assert!(hlfet.speedup >= 1.0);
        assert!(hu.speedup < 1.0);
        assert!(hlfet.speedup > hu.speedup);
    }
}
