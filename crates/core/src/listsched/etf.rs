//! ETF — Earliest Task First (Hwang, Chow, Anger & Lee), an extension
//! scheduler beyond the paper's five.
//!
//! At each step ETF examines *every* ready task on *every* processor
//! and commits the (task, processor) pair with the globally earliest
//! start time, breaking ties by the higher static level. Compared to
//! MH (which dispatches strictly in priority order), ETF trades
//! O(ready × procs) work per step for better packing.

use crate::model::MachineModel;
use crate::scheduler::{kernel, Scheduler};
use dagsched_dag::analysis::PricedLevels;
use dagsched_dag::Dag;
use dagsched_sim::{Machine, Schedule};

/// Earliest Task First list scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Etf;

impl Etf {
    /// Monomorphized core: the kernel's global scan under the ETF key
    /// — globally earliest `(start, −level, index)` across ready
    /// tasks, levels priced under the machine's model.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let levels = PricedLevels::new(g, machine.level_cost());
        let level = levels.blevels();
        kernel::global_scan(g, machine, |t, st| {
            (st, std::cmp::Reverse(level[t.index()]), t.0)
        })
    }
}

impl Scheduler for Etf {
    fn name(&self) -> &'static str {
        "ETF"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, BoundedClique, Clique};

    #[test]
    fn valid_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Etf.schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s));
        }
    }

    #[test]
    fn never_spreads_fine_grains() {
        let g = fine_fork_join();
        let s = Etf.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), g.serial_time());
    }

    #[test]
    fn parallelizes_coarse_grains() {
        let g = coarse_fork_join();
        let m = metrics::measures(&g, &Etf.schedule(&g, &Clique));
        assert!(m.speedup > 2.0);
    }

    #[test]
    fn respects_processor_bounds() {
        let g = coarse_fork_join();
        let m = BoundedClique::new(3);
        let s = Etf.schedule(&g, &m);
        assert!(s.num_procs() <= 3);
        assert!(validate::is_valid(&g, &m, &s));
    }
}
