//! ETF — Earliest Task First (Hwang, Chow, Anger & Lee), an extension
//! scheduler beyond the paper's five.
//!
//! At each step ETF examines *every* ready task on *every* processor
//! and commits the (task, processor) pair with the globally earliest
//! start time, breaking ties by the higher static level. Compared to
//! MH (which dispatches strictly in priority order), ETF trades
//! O(ready × procs) work per step for better packing.

use crate::listsched::{PartialSchedule, PendingCounters};
use crate::scheduler::Scheduler;
use crate::workspace;
use dagsched_dag::Dag;
use dagsched_sim::{Machine, Schedule};

/// Earliest Task First list scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Etf;

impl Scheduler for Etf {
    fn name(&self) -> &'static str {
        "ETF"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        let level = g.blevels_with_comm();
        let mut ps = PartialSchedule::new(g, machine);
        let mut pending = PendingCounters::from_in_degrees(g);
        let mut ready = workspace::take_nodes();
        ready.extend(g.nodes().filter(|&v| pending[v.index()] == 0));

        while !ready.is_empty() {
            // Globally earliest (start, -level, index) across ready tasks.
            let mut best: Option<(usize, dagsched_sim::ProcId, u64)> = None;
            for (k, &t) in ready.iter().enumerate() {
                let (p, st, _) = ps.best_placement(t);
                let better = match best {
                    None => true,
                    Some((bk, _, bst)) => {
                        let bt = ready[bk];
                        (st, std::cmp::Reverse(level[t.index()]), t.0)
                            < (bst, std::cmp::Reverse(level[bt.index()]), bt.0)
                    }
                };
                if better {
                    best = Some((k, p, st));
                }
            }
            let (k, p, st) = best.expect("ready list non-empty");
            let t = ready.swap_remove(k);
            ps.place(t, p, st);
            for (s, _) in g.succs(t) {
                pending[s.index()] -= 1;
                if pending[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        workspace::recycle_nodes(ready);
        ps.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, BoundedClique, Clique};

    #[test]
    fn valid_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Etf.schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s));
        }
    }

    #[test]
    fn never_spreads_fine_grains() {
        let g = fine_fork_join();
        let s = Etf.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), g.serial_time());
    }

    #[test]
    fn parallelizes_coarse_grains() {
        let g = coarse_fork_join();
        let m = metrics::measures(&g, &Etf.schedule(&g, &Clique));
        assert!(m.speedup > 2.0);
    }

    #[test]
    fn respects_processor_bounds() {
        let g = coarse_fork_join();
        let m = BoundedClique::new(3);
        let s = Etf.schedule(&g, &m);
        assert!(s.num_procs() <= 3);
        assert!(validate::is_valid(&g, &m, &s));
    }
}
