//! DLS — Dynamic Level Scheduling (Sih & Lee), an extension scheduler
//! beyond the paper's five.
//!
//! DLS generalizes static-level list scheduling: at each step it picks
//! the (ready task, processor) pair maximizing the *dynamic level*
//! `DL(t, p) = staticLevel(t) − EST(t, p)` — tasks lose urgency as
//! their best start time slips, which adapts the dispatch order to the
//! communication actually incurred.

use crate::model::MachineModel;
use crate::scheduler::{kernel, Scheduler};
use dagsched_dag::Dag;
use dagsched_sim::{Machine, Schedule};

/// Dynamic Level Scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dls;

impl Dls {
    /// Monomorphized core: the kernel's global scan maximizing the
    /// dynamic level `DL = staticLevel − EST` (ties toward lower
    /// start, then lower index).
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let level = g.blevels_computation();
        kernel::global_scan(g, machine, |t, st| {
            let dl = level[t.index()] as i128 - st as i128;
            (std::cmp::Reverse(dl), st, t.0)
        })
    }
}

impl Scheduler for Dls {
    fn name(&self) -> &'static str {
        "DLS"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, Clique};

    #[test]
    fn valid_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Dls.schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s), "graph failed");
        }
    }

    #[test]
    fn competitive_on_coarse_grains() {
        let g = coarse_fork_join();
        let m = metrics::measures(&g, &Dls.schedule(&g, &Clique));
        assert!(m.speedup > 2.0);
    }

    #[test]
    fn never_retards_fine_grains() {
        let g = fine_fork_join();
        let m = metrics::measures(&g, &Dls.schedule(&g, &Clique));
        assert!(m.speedup >= 1.0);
    }
}
