//! DLS — Dynamic Level Scheduling (Sih & Lee), an extension scheduler
//! beyond the paper's five.
//!
//! DLS generalizes static-level list scheduling: at each step it picks
//! the (ready task, processor) pair maximizing the *dynamic level*
//! `DL(t, p) = staticLevel(t) − EST(t, p)` — tasks lose urgency as
//! their best start time slips, which adapts the dispatch order to the
//! communication actually incurred.

use crate::listsched::{PartialSchedule, PendingCounters};
use crate::scheduler::Scheduler;
use crate::workspace;
use dagsched_dag::Dag;
use dagsched_sim::{Machine, Schedule};

/// Dynamic Level Scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dls;

impl Scheduler for Dls {
    fn name(&self) -> &'static str {
        "DLS"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        let level = g.blevels_computation();
        let mut ps = PartialSchedule::new(g, machine);
        let mut pending = PendingCounters::from_in_degrees(g);
        let mut ready = workspace::take_nodes();
        ready.extend(g.nodes().filter(|&v| pending[v.index()] == 0));

        while !ready.is_empty() {
            // Maximize DL = level − EST; ties toward lower start, then
            // lower index.
            let mut best: Option<(usize, dagsched_sim::ProcId, u64, i128)> = None;
            for (k, &t) in ready.iter().enumerate() {
                let (p, st, _) = ps.best_placement(t);
                let dl = level[t.index()] as i128 - st as i128;
                let better = match best {
                    None => true,
                    Some((bk, _, bst, bdl)) => {
                        (std::cmp::Reverse(dl), st, t.0)
                            < (std::cmp::Reverse(bdl), bst, ready[bk].0)
                    }
                };
                if better {
                    best = Some((k, p, st, dl));
                }
            }
            let (k, p, st, _) = best.expect("ready list non-empty");
            let t = ready.swap_remove(k);
            ps.place(t, p, st);
            for (s, _) in g.succs(t) {
                pending[s.index()] -= 1;
                if pending[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        workspace::recycle_nodes(ready);
        ps.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, Clique};

    #[test]
    fn valid_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Dls.schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s), "graph failed");
        }
    }

    #[test]
    fn competitive_on_coarse_grains() {
        let g = coarse_fork_join();
        let m = metrics::measures(&g, &Dls.schedule(&g, &Clique));
        assert!(m.speedup > 2.0);
    }

    #[test]
    fn never_retards_fine_grains() {
        let g = fine_fork_join();
        let m = metrics::measures(&g, &Dls.schedule(&g, &Clique));
        assert!(m.speedup >= 1.0);
    }
}
