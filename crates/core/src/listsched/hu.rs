//! HU — Hu's classic level algorithm, as modified by Lewis &
//! El-Rewini for the paper's comparison.
//!
//! Per the appendix A.4 / Figure 13: "Find the level for each task and
//! use it as the task's priority… Find processor with earliest start
//! time. Assign t to this processor."
//!
//! Hu's algorithm predates communication-aware scheduling: the level
//! is the *computation-only* longest path, and the earliest-start
//! placement is evaluated as in classical scheduling — i.e. assuming
//! messages are free. The decisions (assignment and per-processor
//! order) are then *costed* under the paper's real model, where every
//! cross-processor edge pays its weight. That obliviousness is what
//! the paper's tables show: HU retards *every* graph in the finest
//! granularity class (Table 2: 420/420), uses the most processors
//! (efficiency ≈ 0, Tables 5/9), and trails the other heuristics by an
//! order of magnitude in relative parallel time.
//!
//! With an unbounded processor pool and free messages, earliest-start
//! placement makes every task start at its no-comm data-ready time —
//! maximal spreading. A new processor is opened whenever no existing
//! processor is idle at that moment (ties reuse the lowest existing
//! processor), which is exactly classical Hu list scheduling.

use crate::listsched::{release_succs, seed_ready, ReadyQueue};
use crate::model::MachineModel;
use crate::scheduler::Scheduler;
use crate::workspace;
use dagsched_dag::Dag;
use dagsched_obs as obs;
use dagsched_sim::evaluate::timed_schedule;
use dagsched_sim::{Machine, ProcId, Schedule};
use std::cmp::Reverse;

/// Hu's communication-oblivious list scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hu;

impl Hu {
    /// Monomorphized core. Phase 1 (classical no-communication list
    /// scheduling) *is* HU's defining decision and deliberately reads
    /// nothing from the cost model but the processor bound; phase 2
    /// costs the fixed decisions under the real model via the shared
    /// timing engine.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let _span = obs::span!("hu.dispatch");
        let n = g.num_nodes();
        let priority = g.blevels_computation();
        obs::counter_add("hu.priority_computed", n as u64);

        // Phase 1: classical (no-communication) list scheduling to fix
        // the assignment and per-processor order.
        let mut queue = ReadyQueue::new();
        let mut pending = seed_ready(g, priority, &mut queue);
        let mut proc_avail = workspace::take_weights(0, 0);
        let mut orders = workspace::take_orders();
        let mut assignment = workspace::take_procs(n, ProcId(0));
        let mut finish_nc = workspace::take_weights(n, 0); // no-comm finish times
                                                           // Min-heap over `(avail, proc)` with lazy invalidation: an
                                                           // entry is live iff its stored avail still matches
                                                           // `proc_avail`, so the top (after skimming stale entries) is
                                                           // exactly `min_by_key((avail, index))` without an O(procs)
                                                           // scan per dispatch.
        let mut avail_heap = workspace::take_event_heap();
        let can_open = |procs: usize| machine.max_procs().is_none_or(|b| procs < b);

        while let Some(t) = queue.pop() {
            if obs::active() {
                // +1: `t` itself was ready at the instant of dispatch.
                obs::hist_record("hu.ready_list_len", queue.len() as u64 + 1);
            }
            let ready = g
                .preds(t)
                .map(|(p, _)| finish_nc[p.index()])
                .max()
                .unwrap_or(0);
            // Earliest no-comm start per processor is max(avail, ready);
            // the minimum over processors is attained by the least
            // loaded one (ties toward the lowest id).
            while let Some(&Reverse((a, i))) = avail_heap.peek() {
                if proc_avail[i as usize] == a {
                    break;
                }
                avail_heap.pop();
            }
            let best_existing = avail_heap
                .peek()
                .map(|&Reverse((a, i))| (i as usize, a.max(ready)));
            let (proc, start) = match best_existing {
                Some((i, st)) if st <= ready || !can_open(proc_avail.len()) => (i, st),
                _ => {
                    // No idle processor at `ready` and we may open one.
                    proc_avail.push(0);
                    workspace::push_order_row(&mut orders);
                    (proc_avail.len() - 1, ready)
                }
            };
            assignment[t.index()] = ProcId(proc as u32);
            orders[proc].push(t);
            finish_nc[t.index()] = start + g.node_weight(t);
            proc_avail[proc] = finish_nc[t.index()];
            avail_heap.push(Reverse((proc_avail[proc], proc as u32)));
            release_succs(g, t, &mut pending, priority, &mut queue);
        }

        // Phase 2: cost the fixed decisions under the real model.
        let schedule = timed_schedule(g, machine, &assignment, &orders)
            .expect("orders derived from a topological dispatch cannot deadlock");
        workspace::recycle_weights(proc_avail);
        workspace::recycle_weights(finish_nc);
        workspace::recycle_procs(assignment);
        workspace::recycle_orders(orders);
        workspace::recycle_event_heap(avail_heap);
        schedule
    }
}

impl Scheduler for Hu {
    fn name(&self) -> &'static str {
        "HU"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use crate::listsched::mh::Mh;
    use dagsched_sim::{metrics, validate, BoundedClique, Clique};

    #[test]
    fn schedules_are_valid_under_the_real_model() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Hu.schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s));
        }
    }

    #[test]
    fn oblivious_spreading_retards_fine_grains() {
        // The paper's Table 2 behaviour: at G < 0.08 HU retards every
        // graph (speedup < 1) because it spreads tasks as if messages
        // were free.
        let g = fine_fork_join();
        let s = Hu.schedule(&g, &Clique);
        let m = metrics::measures(&g, &s);
        assert!(
            m.speedup < 1.0,
            "HU must retard fine grains, got {}",
            m.speedup
        );
        assert!(s.num_procs() > 1, "HU spreads regardless of comm");
    }

    #[test]
    fn uses_maximal_parallelism_on_coarse_graphs() {
        let g = coarse_fork_join();
        let s = Hu.schedule(&g, &Clique);
        // All 6 middle tasks in parallel -> 6 processors.
        assert_eq!(s.num_procs(), 6);
        let m = metrics::measures(&g, &s);
        assert!(m.speedup > 1.0);
        // But MH (comm-aware) is at least as good.
        let mh = metrics::measures(&g, &Mh.schedule(&g, &Clique));
        assert!(mh.speedup >= m.speedup * 0.99);
    }

    #[test]
    fn chain_stays_on_one_processor() {
        let g = dagsched_gen::families::chain(6, 10, 100);
        let s = Hu.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), 60);
    }

    #[test]
    fn respects_bounded_machines() {
        let g = coarse_fork_join();
        let m = BoundedClique::new(2);
        let s = Hu.schedule(&g, &m);
        assert!(s.num_procs() <= 2);
        assert!(validate::is_valid(&g, &m, &s));
    }

    #[test]
    fn independent_tasks_each_get_a_processor() {
        let g = dagsched_gen::families::independent(5, 7);
        let s = Hu.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 5);
        assert_eq!(s.makespan(), 7);
    }
}
