//! List scheduling heuristics and their shared machinery.
//!
//! A list scheduler keeps a priority-ordered list of *ready* tasks
//! (all predecessors scheduled) and repeatedly places the best task on
//! the best processor. The heuristics differ in the priority function
//! and in whether placement accounts for communication:
//!
//! * [`mh`] — the Mapping Heuristic of El-Rewini & Lewis: priority is
//!   the Gerasoulis/Yang level (b-level *with* communication),
//!   placement minimizes the actual start including message arrival;
//! * [`hu`] — Hu's classic algorithm as modified by Lewis & El-Rewini:
//!   priority and placement both ignore communication; the resulting
//!   decisions are then *costed* under the real model;
//! * [`etf`] / [`hlfet`] / [`dls`] — extension schedulers (Earliest
//!   Task First, Highest Level First, Dynamic Level Scheduling) from
//!   the classic literature, included for the paper's "more heuristics
//!   should be added" follow-up.

pub mod dls;
pub mod etf;
pub mod hlfet;
pub mod hu;
pub mod mh;

use crate::workspace;
pub(crate) use crate::workspace::PendingCounters;
use dagsched_dag::{Dag, NodeId, Weight};
use dagsched_sim::{Machine, ProcId, Schedule};

/// An in-progress comm-aware schedule: grown one placement at a time,
/// frozen into a [`Schedule`] at the end. Scratch tables come from
/// the thread's [`workspace`] pool and are recycled on drop.
pub(crate) struct PartialSchedule<'a> {
    g: &'a Dag,
    machine: &'a dyn Machine,
    proc_avail: Vec<Weight>,
    proc_of: Vec<Option<ProcId>>,
    start: Vec<Weight>,
    finish: Vec<Weight>,
    placed: usize,
}

impl<'a> PartialSchedule<'a> {
    pub(crate) fn new(g: &'a Dag, machine: &'a dyn Machine) -> Self {
        let n = g.num_nodes();
        Self {
            g,
            machine,
            proc_avail: workspace::take_weights(0, 0),
            proc_of: workspace::take_proc_opts(n),
            start: workspace::take_weights(n, 0),
            finish: workspace::take_weights(n, 0),
            placed: 0,
        }
    }

    /// Number of processors opened so far.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn num_procs(&self) -> usize {
        self.proc_avail.len()
    }

    /// Whether another processor may be opened on this machine.
    pub(crate) fn can_open(&self) -> bool {
        self.machine
            .max_procs()
            .is_none_or(|b| self.proc_avail.len() < b)
    }

    /// Finish time of an already placed task.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn finish_of(&self, v: NodeId) -> Weight {
        debug_assert!(self.proc_of[v.index()].is_some(), "{v} not placed yet");
        self.finish[v.index()]
    }

    /// Earliest time `v`'s inputs are all available on processor `p`
    /// (every predecessor must already be placed).
    pub(crate) fn data_ready(&self, v: NodeId, p: ProcId) -> Weight {
        self.g
            .preds(v)
            .map(|(pr, w)| {
                let pp = self.proc_of[pr.index()].expect("predecessors are placed first");
                self.finish[pr.index()] + self.machine.comm_cost(pp, p, w)
            })
            .max()
            .unwrap_or(0)
    }

    /// Earliest start of `v` on the *existing* processor `p`.
    pub(crate) fn est_on(&self, v: NodeId, p: ProcId) -> Weight {
        self.data_ready(v, p).max(self.proc_avail[p.index()])
    }

    /// Earliest start of `v` on a *fresh* processor (full communication
    /// from every predecessor).
    pub(crate) fn est_new(&self, v: NodeId) -> Weight {
        // A fresh processor has a fresh id; any id unequal to existing
        // ones prices full comm on a clique. For hop-cost topologies
        // the concrete id matters; use the next id to be opened.
        let p = ProcId(self.proc_avail.len() as u32);
        self.g
            .preds(v)
            .map(|(pr, w)| {
                let pp = self.proc_of[pr.index()].expect("predecessors are placed first");
                self.finish[pr.index()] + self.machine.comm_cost(pp, p, w)
            })
            .max()
            .unwrap_or(0)
    }

    /// The placement minimizing start time for `v`: scans every
    /// existing processor and (if the machine allows) one fresh
    /// processor. Returns `(proc, start, is_new)`; ties prefer
    /// existing processors, then lower ids.
    pub(crate) fn best_placement(&self, v: NodeId) -> (ProcId, Weight, bool) {
        let mut best: Option<(ProcId, Weight, bool)> = None;
        for p in 0..self.proc_avail.len() {
            let pid = ProcId(p as u32);
            let est = self.est_on(v, pid);
            if best.is_none_or(|(_, b, _)| est < b) {
                best = Some((pid, est, false));
            }
        }
        if self.can_open() {
            let est = self.est_new(v);
            if best.is_none_or(|(_, b, _)| est < b) {
                best = Some((ProcId(self.proc_avail.len() as u32), est, true));
            }
        }
        best.expect("either an existing processor or permission to open one")
    }

    /// Places `v` on `p` starting at `start`; opens the processor if
    /// `p` is the next unopened id.
    pub(crate) fn place(&mut self, v: NodeId, p: ProcId, start: Weight) {
        debug_assert!(self.proc_of[v.index()].is_none(), "{v} placed twice");
        if p.index() == self.proc_avail.len() {
            assert!(self.can_open(), "machine processor bound exceeded");
            self.proc_avail.push(0);
        }
        assert!(
            p.index() < self.proc_avail.len(),
            "processor ids must be dense"
        );
        debug_assert!(start >= self.proc_avail[p.index()], "processor overlap");
        self.proc_of[v.index()] = Some(p);
        self.start[v.index()] = start;
        let fin = start + self.g.node_weight(v);
        self.finish[v.index()] = fin;
        self.proc_avail[p.index()] = fin;
        self.placed += 1;
    }

    /// Freezes into a [`Schedule`]. Panics if any task is unplaced.
    /// (The scratch tables go back to the pool when `self` drops.)
    pub(crate) fn into_schedule(self) -> Schedule {
        assert_eq!(self.placed, self.g.num_nodes(), "all tasks must be placed");
        let raw: Vec<(ProcId, Weight)> = self
            .proc_of
            .iter()
            .zip(&self.start)
            .map(|(p, &s)| (p.expect("placed"), s))
            .collect();
        Schedule::new(self.g, raw)
    }
}

impl Drop for PartialSchedule<'_> {
    fn drop(&mut self) {
        workspace::recycle_weights(std::mem::take(&mut self.proc_avail));
        workspace::recycle_weights(std::mem::take(&mut self.start));
        workspace::recycle_weights(std::mem::take(&mut self.finish));
        workspace::recycle_proc_opts(std::mem::take(&mut self.proc_of));
    }
}

/// A lazily keyed max-heap of ready tasks: pushes carry the priority,
/// ties break toward the smaller node index for determinism. The heap
/// storage is pooled and recycled on drop.
pub(crate) struct ReadyQueue {
    heap: std::collections::BinaryHeap<(Weight, std::cmp::Reverse<u32>)>,
}

impl ReadyQueue {
    pub(crate) fn new() -> Self {
        Self {
            heap: workspace::take_ready_heap(),
        }
    }

    pub(crate) fn push(&mut self, v: NodeId, priority: Weight) {
        self.heap.push((priority, std::cmp::Reverse(v.0)));
    }

    pub(crate) fn pop(&mut self) -> Option<NodeId> {
        self.heap.pop().map(|(_, std::cmp::Reverse(v))| NodeId(v))
    }

    /// Number of tasks currently ready.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl Drop for ReadyQueue {
    fn drop(&mut self) {
        workspace::recycle_ready_heap(std::mem::take(&mut self.heap));
    }
}

/// Seeds a ready queue with the sources of `g` and returns the
/// remaining in-degree counters used to release successors.
pub(crate) fn seed_ready(g: &Dag, priority: &[Weight], queue: &mut ReadyQueue) -> PendingCounters {
    let pending = PendingCounters::from_in_degrees(g);
    for v in g.nodes() {
        if pending[v.index()] == 0 {
            queue.push(v, priority[v.index()]);
        }
    }
    pending
}

/// Releases the successors of `v` whose predecessors are all placed.
pub(crate) fn release_succs(
    g: &Dag,
    v: NodeId,
    pending: &mut [u32],
    priority: &[Weight],
    queue: &mut ReadyQueue,
) {
    for (s, _) in g.succs(v) {
        pending[s.index()] -= 1;
        if pending[s.index()] == 0 {
            queue.push(s, priority[s.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig16;
    use dagsched_sim::{BoundedClique, Clique};

    #[test]
    fn partial_schedule_tracks_times() {
        let g = fig16();
        let mut ps = PartialSchedule::new(&g, &Clique);
        let (p, st, is_new) = ps.best_placement(NodeId(0));
        assert!(is_new);
        assert_eq!(st, 0);
        ps.place(NodeId(0), p, st);
        assert_eq!(ps.num_procs(), 1);
        assert_eq!(ps.finish_of(NodeId(0)), 10);
        // Node 2 on the same processor: free comm, starts at 10.
        assert_eq!(ps.est_on(NodeId(2), p), 10);
        // On a fresh processor: pays comm 5 → max(10 + 5) = 15.
        assert_eq!(ps.est_new(NodeId(2)), 15);
        // Best placement is the existing processor.
        let (bp, bst, bnew) = ps.best_placement(NodeId(2));
        assert_eq!((bp, bst, bnew), (p, 10, false));
    }

    #[test]
    fn bounded_machines_stop_opening_procs() {
        let g = fig16();
        let m = BoundedClique::new(1);
        let mut ps = PartialSchedule::new(&g, &m);
        assert!(ps.can_open());
        ps.place(NodeId(0), dagsched_sim::ProcId(0), 0);
        assert!(!ps.can_open());
        let (p, _, is_new) = ps.best_placement(NodeId(2));
        assert_eq!(p, dagsched_sim::ProcId(0));
        assert!(!is_new);
    }

    #[test]
    fn ready_queue_orders_by_priority_then_index() {
        let mut q = ReadyQueue::new();
        q.push(NodeId(3), 5);
        q.push(NodeId(1), 9);
        q.push(NodeId(2), 9);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(NodeId(1)));
        assert_eq!(q.pop(), Some(NodeId(2)));
        assert_eq!(q.pop(), Some(NodeId(3)));
        assert!(q.is_empty());
    }

    #[test]
    fn seed_and_release_walk_the_graph() {
        let g = fig16();
        let pr = vec![0; 5];
        let mut q = ReadyQueue::new();
        let mut pending = seed_ready(&g, &pr, &mut q);
        assert_eq!(q.pop(), Some(NodeId(0)));
        assert!(q.is_empty());
        release_succs(&g, NodeId(0), &mut pending, &pr, &mut q);
        let mut ready: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        ready.sort();
        assert_eq!(ready, vec![NodeId(1), NodeId(2)]);
    }
}
