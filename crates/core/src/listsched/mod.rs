//! List scheduling heuristics.
//!
//! A list scheduler keeps a priority-ordered list of *ready* tasks
//! (all predecessors scheduled) and repeatedly places the best task on
//! the best processor. The heuristics differ in the priority function
//! and in whether placement accounts for communication:
//!
//! * [`mh`] — the Mapping Heuristic of El-Rewini & Lewis: priority is
//!   the Gerasoulis/Yang level (b-level *with* communication),
//!   placement minimizes the actual start including message arrival;
//! * [`hu`] — Hu's classic algorithm as modified by Lewis & El-Rewini:
//!   priority and placement both ignore communication; the resulting
//!   decisions are then *costed* under the real model;
//! * [`etf`] / [`hlfet`] / [`dls`] — extension schedulers (Earliest
//!   Task First, Highest Level First, Dynamic Level Scheduling) from
//!   the classic literature, included for the paper's "more heuristics
//!   should be added" follow-up.
//!
//! The shared machinery — ready-set maintenance, processor choice,
//! start-time computation — lives in the scheduling
//! [`kernel`](crate::scheduler::kernel); each module here contributes
//! only its priority function and dispatch discipline.

pub mod dls;
pub mod etf;
pub mod hlfet;
pub mod hu;
pub mod mh;

pub(crate) use crate::scheduler::kernel::{release_succs, seed_ready, ReadyQueue};
