//! # dagsched-core — the scheduling heuristics
//!
//! The primary contribution of Khan, McCreary & Jones (ICPP 1994) is a
//! *numerical comparison testbed* for static DAG scheduling
//! heuristics. This crate implements the five heuristics the paper
//! compares, behind one [`Scheduler`] trait:
//!
//! | name | family | module |
//! |---|---|---|
//! | CLANS | graph decomposition | [`clans_sched`] |
//! | DSC | critical path / edge zeroing | [`cp::dsc`] |
//! | MCP | critical path / ALAP list | [`cp::mcp`] |
//! | MH | list scheduling, comm-aware | [`listsched::mh`] |
//! | HU | list scheduling, comm-oblivious | [`listsched::hu`] |
//!
//! plus the extension schedulers the paper's §5 calls for ("other
//! scheduling algorithms need to be added"): ETF, HLFET, DLS, linear
//! clustering, and a serial baseline.
//!
//! All heuristics share the execution model of the paper's §2 (see
//! `dagsched-sim`): free same-processor communication, edge-weight
//! cross-processor communication, unbounded homogeneous processors,
//! no duplication, minimize makespan.
//!
//! ```
//! use dagsched_core::{paper_heuristics, Scheduler};
//! use dagsched_core::fixtures::fig16;
//! use dagsched_sim::{validate, Clique};
//!
//! let g = fig16();
//! for h in paper_heuristics() {
//!     let s = h.schedule(&g, &Clique);
//!     assert!(validate::is_valid(&g, &Clique, &s), "{}", h.name());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cachekey;
pub mod clans_sched;
pub mod cp;
pub mod duplication;
pub mod fixtures;
pub mod listsched;
pub mod meta;
pub mod model;
pub mod scheduler;
pub mod serial;
mod workspace;

pub use cachekey::{fingerprint_machine_key, parse_fingerprint_machine_key, schedule_cache_key};
pub use clans_sched::Clans;
pub use cp::dsc::{Dsc, DscFast};
pub use cp::lc::LinearClustering;
pub use cp::mcp::Mcp;
pub use cp::sarkar::Sarkar;
pub use duplication::Dsh;
pub use listsched::dls::Dls;
pub use listsched::etf::Etf;
pub use listsched::hlfet::Hlfet;
pub use listsched::hu::Hu;
pub use listsched::mh::Mh;
pub use meta::{BandSelector, BestOf};
pub use model::{
    parse_machine, BoundedUniform, CostModel, LinkAware, MachineModel, MachineParseError,
    MachineSpec, PaperUniform,
};
pub use scheduler::{all_heuristics, paper_heuristics, Scheduler};
pub use serial::Serial;
