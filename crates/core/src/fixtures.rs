//! Worked-example graphs from the paper's appendix, used across unit
//! tests, examples and documentation.

use dagsched_dag::{Dag, DagBuilder, NodeId};

/// The 5-task graph of the paper's appendix (Figures 8, 10, 12, 14
/// and 16 all step through it).
///
/// Node weights 10, 20, 30, 40, 50 (paper nodes 1–5; 0-based here).
/// Edge weights are reconstructed from the level table printed in
/// Figure 14 — levels 150, 74, 135, 95, 50 pin them to
/// 0→1 (5), 0→2 (5), 2→3 (10), 1→4 (4), 3→4 (5).
///
/// Ground truth used in tests:
/// * serial time 150, critical path (with comm) 150;
/// * clan parse tree `L(0, I(1, L(2, 3)), 4)` (paper: C₃ linear over
///   node 1, C₂ independent, node 5);
/// * CLANS schedules it in parallel time 130 (Figure 16 C).
pub fn fig16() -> Dag {
    let mut b = DagBuilder::new();
    for w in [10u64, 20, 30, 40, 50] {
        b.add_node(w);
    }
    for (s, d, c) in [(0u32, 1, 5u64), (0, 2, 5), (2, 3, 10), (1, 4, 4), (3, 4, 5)] {
        b.add_edge(NodeId(s), NodeId(d), c).unwrap();
    }
    b.build().unwrap()
}

/// A graph where parallelization is clearly profitable: wide
/// fork-join with heavy nodes and light edges (very coarse grained).
pub fn coarse_fork_join() -> Dag {
    let mut b = DagBuilder::new();
    let src = b.add_node(50);
    let mids: Vec<_> = (0..6).map(|_| b.add_node(100)).collect();
    let snk = b.add_node(50);
    for &m in &mids {
        b.add_edge(src, m, 2).unwrap();
        b.add_edge(m, snk, 2).unwrap();
    }
    b.build().unwrap()
}

/// A graph where parallelization is a trap: the same fork-join with
/// tiny nodes and huge communication (very fine grained). Any
/// heuristic that spreads it across processors produces speedup < 1.
pub fn fine_fork_join() -> Dag {
    let mut b = DagBuilder::new();
    let src = b.add_node(5);
    let mids: Vec<_> = (0..6).map(|_| b.add_node(8)).collect();
    let snk = b.add_node(5);
    for &m in &mids {
        b.add_edge(src, m, 500).unwrap();
        b.add_edge(m, snk, 500).unwrap();
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_dag::{levels, metrics};

    #[test]
    fn fig16_ground_truth() {
        let g = fig16();
        assert_eq!(g.serial_time(), 150);
        assert_eq!(levels::critical_path_len(&g), 150);
        assert_eq!(
            levels::blevels_with_comm(&g),
            vec![150, 74, 135, 95, 50],
            "levels must match the paper's Figure 14 table"
        );
    }

    #[test]
    fn fork_join_granularities_land_in_opposite_bands() {
        assert!(metrics::granularity(&coarse_fork_join()) > 2.0);
        assert!(metrics::granularity(&fine_fork_join()) < 0.08);
    }
}
