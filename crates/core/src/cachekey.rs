//! The canonical fingerprint×machine cache key.
//!
//! Several layers cache or journal per-graph results keyed by *what
//! was scheduled where*: the CLI checkpoint journal, the scheduling
//! server's schedule cache and its disk journal. They must all agree
//! on one key format, or a warm restart silently misses (or worse,
//! wrongly hits) entries written by another layer. This module is that
//! single definition; the format below is locked by unit tests and
//! must not change without migrating every journal reader.
//!
//! Format:
//!
//! ```text
//! <digest>@<machine>              fingerprint×machine       ("0x3a5f…9b@ring:4")
//! <digest>@<machine>#<heuristic>  …×heuristic (cache entry) ("0x3a5f…9b@ring:4#DSC")
//! ```
//!
//! `digest` is the graph's content fingerprint
//! (`GraphFingerprint::of(g).digest` in `dagsched-harness`) rendered
//! as `{:#018x}` — `0x` plus 16 lowercase hex digits, so every key has
//! the same length prefix. `machine` is the full machine-spec string
//! (`"ring:4"`, never just `"ring"`), so a key never matches across
//! topologies or sizes.

/// The fingerprint×machine key: `"{digest:#018x}@{machine}"`.
///
/// `machine` must be the complete machine-spec string; it travels
/// verbatim (the `@`/`#` separators cannot collide with the digest
/// prefix, which is always 18 bytes of `0x` + hex).
pub fn fingerprint_machine_key(digest: u64, machine: &str) -> String {
    format!("{digest:#018x}@{machine}")
}

/// The per-heuristic schedule-cache key:
/// `"{digest:#018x}@{machine}#{heuristic}"`.
pub fn schedule_cache_key(digest: u64, machine: &str, heuristic: &str) -> String {
    format!("{digest:#018x}@{machine}#{heuristic}")
}

/// Splits a [`fingerprint_machine_key`] back into its digest and
/// machine-spec parts. Returns `None` when `key` is not in the locked
/// format.
pub fn parse_fingerprint_machine_key(key: &str) -> Option<(u64, &str)> {
    let (digest, machine) = key.split_at_checked(18)?;
    let digest = u64::from_str_radix(digest.strip_prefix("0x")?, 16).ok()?;
    Some((digest, machine.strip_prefix('@')?))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Locks the key format byte-for-byte: journals written by one
    /// release must stay readable by the next.
    #[test]
    fn key_format_is_locked() {
        assert_eq!(
            fingerprint_machine_key(0x3a5f, "ring:4"),
            "0x0000000000003a5f@ring:4"
        );
        assert_eq!(
            schedule_cache_key(0x3a5f, "ring:4", "DSC"),
            "0x0000000000003a5f@ring:4#DSC"
        );
        // Full-width digests keep the same 18-byte prefix.
        assert_eq!(
            fingerprint_machine_key(u64::MAX, "uniform"),
            "0xffffffffffffffff@uniform"
        );
        // The machine spec travels verbatim, parameters included.
        assert_eq!(
            fingerprint_machine_key(1, "mesh:2x3"),
            "0x0000000000000001@mesh:2x3"
        );
    }

    #[test]
    fn keys_round_trip_through_the_parser() {
        for (digest, machine) in [
            (0u64, "uniform"),
            (u64::MAX, "bounded:16"),
            (0xdead_beef, "linkaware:/tmp/t.machine"),
        ] {
            let key = fingerprint_machine_key(digest, machine);
            assert_eq!(parse_fingerprint_machine_key(&key), Some((digest, machine)));
        }
        assert_eq!(parse_fingerprint_machine_key(""), None);
        assert_eq!(parse_fingerprint_machine_key("0x12@uniform"), None);
        assert_eq!(
            parse_fingerprint_machine_key("0x000000000000003a-uniform"),
            None
        );
    }

    #[test]
    fn distinct_inputs_yield_distinct_keys() {
        let a = schedule_cache_key(1, "uniform", "DSC");
        assert_ne!(a, schedule_cache_key(2, "uniform", "DSC"));
        assert_ne!(a, schedule_cache_key(1, "bounded:4", "DSC"));
        assert_ne!(a, schedule_cache_key(1, "uniform", "MCP"));
    }
}
