//! Critical-path heuristics.
//!
//! Both DSC and MCP attack the *dominant sequence* — the heaviest
//! path through the DAG counting node and edge weights — and shorten
//! it by zeroing communication edges (placing their endpoints
//! together):
//!
//! * [`dsc`] — Dominant Sequence Clustering of Yang & Gerasoulis:
//!   incremental edge zeroing driven by `tlevel + blevel` priorities
//!   with the partially-free-node warranty;
//! * [`mcp`] — Modified Critical Path of Wu & Gajski: ALAP bindings,
//!   lexicographic node lists, earliest-start placement (append per
//!   the paper's pseudocode; an insertion variant is provided for the
//!   ablation bench);
//! * [`lc`] — linear clustering of Kim & Browne, an extension beyond
//!   the paper's five: repeatedly cluster the entire current critical
//!   path.

pub mod dsc;
pub mod lc;
pub mod mcp;
pub mod sarkar;
