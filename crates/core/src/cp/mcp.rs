//! MCP — Modified Critical Path (Wu & Gajski), per the paper's
//! appendix A.2 / Figure 9.
//!
//! 1. ALAP-bind every node: `T_L(v) = CP − blevel(v)` (communication
//!    included), so critical-path nodes have the smallest slack.
//! 2. Give each node the list of the ALAP times of itself and all its
//!    descendants (ascending), and order nodes lexicographically by
//!    those lists — the head is the most critical node, and because a
//!    predecessor's ALAP is strictly smaller than its successors'
//!    (positive node weights), the order is topological.
//! 3. Schedule the head on the processor giving the earliest start; a
//!    new processor is opened only when it is strictly earlier than
//!    every existing one (Figure 9's step 5).
//!
//! The paper's pseudocode appends to processors; Wu & Gajski's
//! original also considered inserting into idle slots —
//! [`Mcp::insertion`] enables that variant for the ablation bench.
//! Placement itself is the shared kernel's static-order drivers; MCP
//! contributes only the ALAP-lexicographic dispatch order.

use crate::model::MachineModel;
use crate::scheduler::{kernel, Scheduler};
use dagsched_dag::analysis::PricedLevels;
use dagsched_dag::{topo, Dag, NodeId, Weight};
use dagsched_obs as obs;
use dagsched_sim::{Machine, Schedule};

/// Modified Critical Path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcp {
    /// Use insertion scheduling (fill idle gaps) instead of the
    /// paper's append semantics.
    pub insertion: bool,
}

impl Mcp {
    /// The insertion-scheduling variant (named `MCP-I` in benches).
    pub fn with_insertion() -> Self {
        Mcp { insertion: true }
    }

    /// The MCP dispatch order under the paper's uniform model: nodes
    /// sorted lexicographically by the ascending list of ALAP times of
    /// themselves and their descendants.
    pub fn dispatch_order(g: &Dag) -> Vec<NodeId> {
        Self::order_from_alap(g, g.alap_times())
    }

    /// The lexicographic-ALAP order, made robustly topological via a
    /// priority topological order (relevant only for zero-weight
    /// corner cases).
    fn order_from_alap(g: &Dag, alap: &[Weight]) -> Vec<NodeId> {
        let _span = obs::span!("mcp.priorities");
        let n = g.num_nodes();
        if n == 0 {
            return Vec::new();
        }
        let closure = g.closure();
        let mut lists: Vec<Vec<Weight>> = (0..n)
            .map(|v| {
                let node = NodeId(v as u32);
                let mut l: Vec<Weight> = std::iter::once(alap[v])
                    .chain(closure.descendants(node).map(|d| alap[d.index()]))
                    .collect();
                l.sort_unstable();
                l
            })
            .collect();
        if obs::active() {
            obs::counter_add("mcp.priority_computed", n as u64);
            for l in &lists {
                obs::hist_record("mcp.alap_list_len", l.len() as u64);
            }
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| lists[a as usize].cmp(&lists[b as usize]).then(a.cmp(&b)));
        lists.clear();
        // rank → priority (earlier rank = higher priority), then a
        // priority topological order guards against ALAP ties from
        // zero-weight nodes.
        let mut priority = vec![0u64; n];
        for (rank, &v) in order.iter().enumerate() {
            priority[v as usize] = (n - rank) as u64;
        }
        topo::priority_topo_order(g, &priority)
    }

    /// Monomorphized core: ALAP times priced under the machine's level
    /// cost, placed by the kernel's static-order driver (append or
    /// insertion per [`Mcp::insertion`]).
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let levels = PricedLevels::new(g, machine.level_cost());
        let order = Self::order_from_alap(g, levels.alap());
        let _span = obs::span!("mcp.place");
        if self.insertion {
            kernel::static_order_insertion(g, machine, &order)
        } else {
            kernel::static_order_append(g, machine, &order)
        }
    }
}

impl Scheduler for Mcp {
    fn name(&self) -> &'static str {
        if self.insertion {
            "MCP-I"
        } else {
            "MCP"
        }
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, BoundedClique, Clique};

    #[test]
    fn dispatch_order_is_topological_and_cp_first() {
        let g = fig16();
        let order = Mcp::dispatch_order(&g);
        assert!(topo::is_topological(&g, &order));
        // ALAPs: [0, 76, 15, 55, 100]; lists l(0)=[0,15,55,76,100] <
        // l(2)=[15,55,100] < l(3)=[55,100] < l(1)=[76,100] <
        // l(4)=[100] — the CP spine first, the slack node 1 next, the
        // sink last.
        assert_eq!(
            order,
            vec![NodeId(0), NodeId(2), NodeId(3), NodeId(1), NodeId(4)]
        );
    }

    #[test]
    fn fig16_schedule() {
        let g = fig16();
        let s = Mcp::default().schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        // MCP keeps the CP local: 0,2,3 run back-to-back; 4 waits for
        // node 1's message only if 1 was forked off.
        assert!(s.makespan() <= g.serial_time());
    }

    #[test]
    fn both_variants_valid_everywhere() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            for mcp in [Mcp::default(), Mcp::with_insertion()] {
                let s = mcp.schedule(&g, &Clique);
                assert!(validate::is_valid(&g, &Clique, &s), "{}", mcp.name());
            }
        }
    }

    #[test]
    fn insertion_never_loses_to_append() {
        // On these fixtures gap-filling can only help (it considers a
        // superset of the append placements at every step is *not*
        // generally true, but holds here and guards gross regressions).
        for g in [fig16(), coarse_fork_join()] {
            let append = Mcp::default().schedule(&g, &Clique).makespan();
            let insert = Mcp::with_insertion().schedule(&g, &Clique).makespan();
            assert!(insert <= append, "insertion {insert} vs append {append}");
        }
    }

    #[test]
    fn parallelizes_coarse_serializes_fine() {
        let coarse = coarse_fork_join();
        let m = metrics::measures(&coarse, &Mcp::default().schedule(&coarse, &Clique));
        assert!(m.speedup > 2.0);
        let fine = fine_fork_join();
        let s = Mcp::default().schedule(&fine, &Clique);
        assert_eq!(s.num_procs(), 1, "never-earlier processors are not opened");
    }

    #[test]
    fn respects_processor_bounds() {
        let g = coarse_fork_join();
        let m = BoundedClique::new(2);
        for mcp in [Mcp::default(), Mcp::with_insertion()] {
            let s = mcp.schedule(&g, &m);
            assert!(s.num_procs() <= 2);
            assert!(validate::is_valid(&g, &m, &s));
        }
    }

    #[test]
    fn empty_graph() {
        let g = dagsched_dag::DagBuilder::new().build().unwrap();
        assert_eq!(Mcp::default().schedule(&g, &Clique).makespan(), 0);
        assert_eq!(Mcp::with_insertion().schedule(&g, &Clique).makespan(), 0);
    }
}
