//! MCP — Modified Critical Path (Wu & Gajski), per the paper's
//! appendix A.2 / Figure 9.
//!
//! 1. ALAP-bind every node: `T_L(v) = CP − blevel(v)` (communication
//!    included), so critical-path nodes have the smallest slack.
//! 2. Give each node the list of the ALAP times of itself and all its
//!    descendants (ascending), and order nodes lexicographically by
//!    those lists — the head is the most critical node, and because a
//!    predecessor's ALAP is strictly smaller than its successors'
//!    (positive node weights), the order is topological.
//! 3. Schedule the head on the processor giving the earliest start; a
//!    new processor is opened only when it is strictly earlier than
//!    every existing one (Figure 9's step 5).
//!
//! The paper's pseudocode appends to processors; Wu & Gajski's
//! original also considered inserting into idle slots —
//! [`Mcp::insertion`] enables that variant for the ablation bench.

use crate::listsched::PartialSchedule;
use crate::scheduler::Scheduler;
use dagsched_dag::{topo, Dag, NodeId, Weight};
use dagsched_obs as obs;
use dagsched_sim::{Machine, ProcId, Schedule};

/// Modified Critical Path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcp {
    /// Use insertion scheduling (fill idle gaps) instead of the
    /// paper's append semantics.
    pub insertion: bool,
}

impl Mcp {
    /// The insertion-scheduling variant (named `MCP-I` in benches).
    pub fn with_insertion() -> Self {
        Mcp { insertion: true }
    }

    /// The MCP dispatch order: nodes sorted lexicographically by the
    /// ascending list of ALAP times of themselves and their
    /// descendants, made robustly topological via a priority
    /// topological order (relevant only for zero-weight corner cases).
    pub fn dispatch_order(g: &Dag) -> Vec<NodeId> {
        let _span = obs::span!("mcp.priorities");
        let n = g.num_nodes();
        if n == 0 {
            return Vec::new();
        }
        let alap = g.alap_times();
        let closure = g.closure();
        let mut lists: Vec<Vec<Weight>> = (0..n)
            .map(|v| {
                let node = NodeId(v as u32);
                let mut l: Vec<Weight> = std::iter::once(alap[v])
                    .chain(closure.descendants(node).map(|d| alap[d.index()]))
                    .collect();
                l.sort_unstable();
                l
            })
            .collect();
        if obs::active() {
            obs::counter_add("mcp.priority_computed", n as u64);
            for l in &lists {
                obs::hist_record("mcp.alap_list_len", l.len() as u64);
            }
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| lists[a as usize].cmp(&lists[b as usize]).then(a.cmp(&b)));
        lists.clear();
        // rank → priority (earlier rank = higher priority), then a
        // priority topological order guards against ALAP ties from
        // zero-weight nodes.
        let mut priority = vec![0u64; n];
        for (rank, &v) in order.iter().enumerate() {
            priority[v as usize] = (n - rank) as u64;
        }
        topo::priority_topo_order(g, &priority)
    }
}

impl Scheduler for Mcp {
    fn name(&self) -> &'static str {
        if self.insertion {
            "MCP-I"
        } else {
            "MCP"
        }
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        let order = Self::dispatch_order(g);
        let _span = obs::span!("mcp.place");
        if self.insertion {
            schedule_insertion(g, machine, &order)
        } else {
            let mut ps = PartialSchedule::new(g, machine);
            for &t in &order {
                let (p, st, _) = ps.best_placement(t);
                ps.place(t, p, st);
            }
            ps.into_schedule()
        }
    }
}

/// Insertion scheduling: tasks may slot into idle gaps between
/// already-placed tasks when data arrives early enough.
fn schedule_insertion(g: &Dag, machine: &dyn Machine, order: &[NodeId]) -> Schedule {
    let n = g.num_nodes();
    // Per processor: placed (start, finish) intervals, kept sorted.
    let mut procs: Vec<Vec<(Weight, Weight)>> = Vec::new();
    let mut placement: Vec<(ProcId, Weight)> = vec![(ProcId(0), 0); n];
    let mut finish: Vec<Weight> = vec![0; n];
    let mut proc_of: Vec<ProcId> = vec![ProcId(0); n];
    let can_open = |k: usize| machine.max_procs().is_none_or(|b| k < b);

    for &t in order {
        let w = g.node_weight(t);
        let data_ready = |p: ProcId| -> Weight {
            g.preds(t)
                .map(|(pr, ew)| finish[pr.index()] + machine.comm_cost(proc_of[pr.index()], p, ew))
                .max()
                .unwrap_or(0)
        };
        // Best gap across existing processors.
        let mut best: Option<(ProcId, Weight, bool)> = None;
        for (pi, intervals) in procs.iter().enumerate() {
            let pid = ProcId(pi as u32);
            let ready = data_ready(pid);
            let st = earliest_gap(intervals, ready, w);
            if best.is_none_or(|(_, b, _)| st < b) {
                best = Some((pid, st, false));
            }
        }
        if can_open(procs.len()) {
            let pid = ProcId(procs.len() as u32);
            let st = data_ready(pid);
            if best.is_none_or(|(_, b, _)| st < b) {
                best = Some((pid, st, true));
            }
        }
        let (p, st, is_new) = best.expect("a processor always exists or can be opened");
        if is_new {
            procs.push(Vec::new());
        }
        let intervals = &mut procs[p.index()];
        let pos = intervals.partition_point(|&(s, _)| s < st);
        intervals.insert(pos, (st, st + w));
        placement[t.index()] = (p, st);
        finish[t.index()] = st + w;
        proc_of[t.index()] = p;
    }
    Schedule::new(g, placement)
}

/// The earliest start ≥ `ready` where a task of length `w` fits into
/// the idle gaps of `intervals` (sorted, non-overlapping).
fn earliest_gap(intervals: &[(Weight, Weight)], ready: Weight, w: Weight) -> Weight {
    let mut candidate = ready;
    for &(s, f) in intervals {
        if candidate + w <= s {
            return candidate;
        }
        candidate = candidate.max(f);
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, BoundedClique, Clique};

    #[test]
    fn dispatch_order_is_topological_and_cp_first() {
        let g = fig16();
        let order = Mcp::dispatch_order(&g);
        assert!(topo::is_topological(&g, &order));
        // ALAPs: [0, 76, 15, 55, 100]; lists l(0)=[0,15,55,76,100] <
        // l(2)=[15,55,100] < l(3)=[55,100] < l(1)=[76,100] <
        // l(4)=[100] — the CP spine first, the slack node 1 next, the
        // sink last.
        assert_eq!(
            order,
            vec![NodeId(0), NodeId(2), NodeId(3), NodeId(1), NodeId(4)]
        );
    }

    #[test]
    fn fig16_schedule() {
        let g = fig16();
        let s = Mcp::default().schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        // MCP keeps the CP local: 0,2,3 run back-to-back; 4 waits for
        // node 1's message only if 1 was forked off.
        assert!(s.makespan() <= g.serial_time());
    }

    #[test]
    fn both_variants_valid_everywhere() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            for mcp in [Mcp::default(), Mcp::with_insertion()] {
                let s = mcp.schedule(&g, &Clique);
                assert!(validate::is_valid(&g, &Clique, &s), "{}", mcp.name());
            }
        }
    }

    #[test]
    fn insertion_never_loses_to_append() {
        // On these fixtures gap-filling can only help (it considers a
        // superset of the append placements at every step is *not*
        // generally true, but holds here and guards gross regressions).
        for g in [fig16(), coarse_fork_join()] {
            let append = Mcp::default().schedule(&g, &Clique).makespan();
            let insert = Mcp::with_insertion().schedule(&g, &Clique).makespan();
            assert!(insert <= append, "insertion {insert} vs append {append}");
        }
    }

    #[test]
    fn parallelizes_coarse_serializes_fine() {
        let coarse = coarse_fork_join();
        let m = metrics::measures(&coarse, &Mcp::default().schedule(&coarse, &Clique));
        assert!(m.speedup > 2.0);
        let fine = fine_fork_join();
        let s = Mcp::default().schedule(&fine, &Clique);
        assert_eq!(s.num_procs(), 1, "never-earlier processors are not opened");
    }

    #[test]
    fn respects_processor_bounds() {
        let g = coarse_fork_join();
        let m = BoundedClique::new(2);
        for mcp in [Mcp::default(), Mcp::with_insertion()] {
            let s = mcp.schedule(&g, &m);
            assert!(s.num_procs() <= 2);
            assert!(validate::is_valid(&g, &m, &s));
        }
    }

    #[test]
    fn earliest_gap_logic() {
        // Gaps: [10,20] busy, [30,40] busy.
        let iv = vec![(10, 20), (30, 40)];
        assert_eq!(earliest_gap(&iv, 0, 10), 0); // fits before
        assert_eq!(earliest_gap(&iv, 0, 11), 40); // too big for both gaps
        assert_eq!(earliest_gap(&iv, 12, 5), 20); // middle gap
        assert_eq!(earliest_gap(&iv, 35, 5), 40); // after everything
        assert_eq!(earliest_gap(&[], 7, 5), 7);
    }

    #[test]
    fn empty_graph() {
        let g = dagsched_dag::DagBuilder::new().build().unwrap();
        assert_eq!(Mcp::default().schedule(&g, &Clique).makespan(), 0);
        assert_eq!(Mcp::with_insertion().schedule(&g, &Clique).makespan(), 0);
    }
}
