//! SARKAR — Sarkar's edge-zeroing clustering (reference \[1\] of the
//! paper, where the scheduling problem is the "initialization
//! pre-pass"), an extension scheduler beyond the compared five.
//!
//! Edges are visited in descending weight order; each is tentatively
//! *zeroed* (its endpoints' clusters merged) and the merge is kept iff
//! the estimated parallel time does not increase. This is the
//! canonical O(e·(n+e)) clustering baseline that DSC was designed to
//! outrun at equal quality.

use crate::model::{LevelPriced, MachineModel};
use crate::scheduler::Scheduler;
use dagsched_dag::Dag;
use dagsched_sim::{Clustering, Machine, Schedule};

/// Sarkar's edge-zeroing clustering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sarkar;

impl Sarkar {
    /// Monomorphized core: tentative merges are estimated on the
    /// unbounded level-priced machine (the paper's clique under the
    /// uniform model); the kept clustering is re-timed on the actual
    /// machine.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let n = g.num_nodes();
        if n == 0 {
            return Schedule::new(g, vec![]);
        }
        // Cluster membership as a union-find over nodes. No path
        // compression: a tentative merge must be undoable by resetting
        // a single parent pointer. Evaluation happens on the unbounded
        // level-priced machine; the final schedule is re-timed on the
        // actual machine.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &[u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                x = parent[x as usize];
            }
            x
        }
        let clustering_of = |parent: &[u32]| -> Clustering {
            let ids: Vec<u32> = (0..parent.len() as u32).map(|v| find(parent, v)).collect();
            Clustering::from_assignment(&ids)
        };

        let eval = LevelPriced(machine.level_cost());
        let mut best_pt = clustering_of(&parent)
            .materialize(g, &eval)
            .expect("complete clustering")
            .makespan();

        // Descending edge weight, ties toward the lower edge id.
        let mut edges: Vec<_> = g.edge_ids().collect();
        edges.sort_by_key(|&e| (std::cmp::Reverse(g.edge(e).weight), e.0));

        for e in edges {
            let ed = g.edge(e);
            let (ra, rb) = (find(&parent, ed.src.0), find(&parent, ed.dst.0));
            if ra == rb {
                continue; // already zeroed transitively
            }
            // Tentative merge, undone by restoring one root pointer.
            parent[rb as usize] = ra;
            let pt = clustering_of(&parent)
                .materialize(g, &eval)
                .expect("complete clustering")
                .makespan();
            if pt <= best_pt {
                best_pt = pt;
            } else {
                parent[rb as usize] = rb; // undo
            }
        }

        let mut clustering = clustering_of(&parent);
        if let Some(bound) = machine.max_procs() {
            if clustering.num_used_clusters() > bound {
                clustering = clustering.fold_to(g, bound);
            }
        }
        clustering
            .materialize(g, machine)
            .expect("complete clustering")
    }
}

impl Scheduler for Sarkar {
    fn name(&self) -> &'static str {
        "SARKAR"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_dag::levels;
    use dagsched_sim::{metrics, validate, BoundedClique, Clique};

    #[test]
    fn valid_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Sarkar.schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s));
        }
    }

    #[test]
    fn never_worse_than_fully_parallel() {
        // Sarkar starts from singletons and only accepts improving (or
        // neutral) merges — the same invariant as DSC.
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Sarkar.schedule(&g, &Clique);
            assert!(s.makespan() <= levels::critical_path_len(&g));
        }
    }

    #[test]
    fn zeroes_the_heavy_edges_of_fig16() {
        use dagsched_dag::NodeId;
        let g = fig16();
        let s = Sarkar.schedule(&g, &Clique);
        // The heaviest edge 2→3 (weight 10) is zeroed first and the
        // chain 2→3→4 ends up clustered; greedy edge order settles at
        // parallel time 135 ({0,1} | {2,3,4}).
        assert_eq!(s.proc_of(NodeId(2)), s.proc_of(NodeId(3)));
        assert_eq!(s.proc_of(NodeId(3)), s.proc_of(NodeId(4)));
        assert_eq!(s.makespan(), 135);
    }

    #[test]
    fn parallelizes_coarse_grains() {
        let g = coarse_fork_join();
        let m = metrics::measures(&g, &Sarkar.schedule(&g, &Clique));
        assert!(m.speedup > 2.0, "got {}", m.speedup);
    }

    #[test]
    fn chain_collapses_to_one_cluster() {
        let g = dagsched_gen::families::chain(6, 10, 100);
        let s = Sarkar.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), 60);
    }

    #[test]
    fn respects_bounds_via_folding() {
        let g = coarse_fork_join();
        let m = BoundedClique::new(2);
        let s = Sarkar.schedule(&g, &m);
        assert!(s.num_procs() <= 2);
        assert!(validate::is_valid(&g, &m, &s));
    }

    #[test]
    fn empty_graph() {
        let g = dagsched_dag::DagBuilder::new().build().unwrap();
        assert_eq!(Sarkar.schedule(&g, &Clique).makespan(), 0);
    }
}
