//! LC — linear clustering (Kim & Browne), an extension scheduler
//! beyond the paper's five.
//!
//! Repeatedly find the heaviest remaining path (node + edge weights),
//! cluster it whole, and remove it; leftover nodes become singleton
//! clusters. A classic edge-zeroing baseline whose clusters are always
//! *linear* (chains), contrasting with DSC's more general merges in
//! the ablation bench.

use crate::model::MachineModel;
use crate::scheduler::Scheduler;
use dagsched_dag::{Dag, NodeId, Weight};
use dagsched_sim::{Clustering, Machine, Schedule};

/// Linear clustering.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearClustering;

impl LinearClustering {
    /// Monomorphized core: the clustering itself is model-free (path
    /// weights only); the machine prices the materialized timing and
    /// bounds the cluster count.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let n = g.num_nodes();
        let mut clustering = Clustering::new(n);
        let mut remaining = vec![true; n];
        let mut left = n;
        while left > 0 {
            let path = heaviest_remaining_path(g, &remaining);
            debug_assert!(!path.is_empty());
            let c = clustering.create_cluster();
            for &v in &path {
                clustering.assign(v, c);
                remaining[v.index()] = false;
                left -= 1;
            }
        }
        if let Some(bound) = machine.max_procs() {
            if clustering.num_used_clusters() > bound {
                clustering = clustering.fold_to(g, bound);
            }
        }
        clustering
            .materialize(g, machine)
            .expect("every task was clustered")
    }
}

impl Scheduler for LinearClustering {
    fn name(&self) -> &'static str {
        "LC"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

/// The maximal-weight path (node weights + edge weights) within the
/// still-remaining induced subgraph.
fn heaviest_remaining_path(g: &Dag, remaining: &[bool]) -> Vec<NodeId> {
    // Longest-path DP over the (acyclic) remaining subgraph.
    let mut best_down: Vec<Weight> = vec![0; g.num_nodes()];
    let mut next: Vec<Option<NodeId>> = vec![None; g.num_nodes()];
    for &v in g.topo_order().iter().rev() {
        if !remaining[v.index()] {
            continue;
        }
        let mut best: Option<(Weight, NodeId)> = None;
        for (s, w) in g.succs(v) {
            if !remaining[s.index()] {
                continue;
            }
            let cand = w + best_down[s.index()];
            if best.is_none_or(|(b, bs)| cand > b || (cand == b && s < bs)) {
                best = Some((cand, s));
            }
        }
        best_down[v.index()] = g.node_weight(v) + best.map_or(0, |(b, _)| b);
        next[v.index()] = best.map(|(_, s)| s);
    }
    let Some(mut cur) = g
        .nodes()
        .filter(|v| remaining[v.index()])
        .min_by_key(|v| (std::cmp::Reverse(best_down[v.index()]), v.0))
    else {
        return Vec::new();
    };
    let mut path = vec![cur];
    while let Some(nx) = next[cur.index()] {
        path.push(nx);
        cur = nx;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{validate, Clique};

    #[test]
    fn valid_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = LinearClustering.schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s));
        }
    }

    #[test]
    fn chain_becomes_one_cluster() {
        let g = dagsched_gen::families::chain(6, 10, 100);
        let s = LinearClustering.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), 60);
    }

    #[test]
    fn fig16_clusters_the_dominant_sequence() {
        let g = fig16();
        let s = LinearClustering.schedule(&g, &Clique);
        // CP = 0,2,3,4 in one cluster; node 1 alone.
        assert_eq!(s.num_procs(), 2);
        assert_eq!(s.proc_of(NodeId(0)), s.proc_of(NodeId(2)));
        assert_eq!(s.proc_of(NodeId(0)), s.proc_of(NodeId(4)));
        assert_ne!(s.proc_of(NodeId(0)), s.proc_of(NodeId(1)));
        assert_eq!(s.makespan(), 130);
    }

    #[test]
    fn fork_join_clusters_are_paths() {
        let g = coarse_fork_join();
        let s = LinearClustering.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        // src + one mid + sink in the first cluster, each other mid
        // alone: 6 processors.
        assert_eq!(s.num_procs(), 6);
    }
}
