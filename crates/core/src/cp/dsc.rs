//! DSC — Dominant Sequence Clustering (Yang & Gerasoulis), per the
//! paper's appendix A.1 / Figure 7.
//!
//! DSC starts from the fully parallel clustering (every task alone)
//! and examines tasks one at a time in order of
//! `priority = tlevel + blevel` — the length of the longest path
//! through the task, i.e. the *dominant sequence* when the task lies
//! on it. Examining a free task tries to *zero* incoming edges by
//! appending the task to the cluster of one of its predecessors,
//! accepting the merge only when it does not increase the task's
//! start time (the paper's CT1). When a *partially free* task outranks
//! every free task, the merge is additionally constrained so that the
//! partially free task's potential start never increases (the paper's
//! CT2, Yang & Gerasoulis' DSRW warranty).
//!
//! The output is a clustering; clusters map one-to-one onto
//! processors, and the examination order doubles as the per-cluster
//! execution order, so the final timing is exactly what the algorithm
//! computed internally (asserted in debug builds).

use crate::model::MachineModel;
use crate::scheduler::Scheduler;
use dagsched_dag::analysis::PricedLevels;
use dagsched_dag::{Dag, LevelCost, NodeId, Weight};
use dagsched_obs as obs;
use dagsched_sim::evaluate::timed_schedule;
use dagsched_sim::{Clustering, Machine, ProcId, Schedule};

/// Dominant Sequence Clustering.
///
/// ```
/// use dagsched_core::{Dsc, Scheduler};
/// use dagsched_sim::Clique;
///
/// // A chain with heavy communication collapses onto one processor.
/// let g = dagsched_gen::families::chain(5, 10, 300);
/// let s = Dsc.schedule(&g, &Clique);
/// assert_eq!(s.num_procs(), 1);
/// assert_eq!(s.makespan(), 50);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Dsc;

struct State<'a> {
    g: &'a Dag,
    blevel: &'a [Weight],
    /// Prices cross-cluster edges during examination (uniform under
    /// the paper's model; scaled under link-aware models).
    cost: LevelCost,
    examined: Vec<bool>,
    start: Vec<Weight>,
    finish: Vec<Weight>,
    cluster_of: Vec<Option<u32>>,
    cluster_last: Vec<Weight>,
    cluster_tasks: Vec<Vec<NodeId>>,
    examined_preds: Vec<u32>,
    /// `max over examined preds (finish + edge weight)` — the task's
    /// start lower bound on a fresh cluster (the paper's
    /// `startbound`); exact for free tasks, partial for others.
    startbound: Vec<Weight>,
}

impl<'a> State<'a> {
    fn new(g: &'a Dag, blevel: &'a [Weight], cost: LevelCost) -> Self {
        let n = g.num_nodes();
        State {
            g,
            blevel,
            cost,
            examined: vec![false; n],
            start: vec![0; n],
            finish: vec![0; n],
            cluster_of: vec![None; n],
            cluster_last: Vec::new(),
            cluster_tasks: Vec::new(),
            examined_preds: vec![0; n],
            startbound: vec![0; n],
        }
    }

    fn is_free(&self, v: NodeId) -> bool {
        !self.examined[v.index()] && self.examined_preds[v.index()] as usize == self.g.in_degree(v)
    }

    fn is_partially_free(&self, v: NodeId) -> bool {
        !self.examined[v.index()]
            && self.examined_preds[v.index()] > 0
            && (self.examined_preds[v.index()] as usize) < self.g.in_degree(v)
    }

    fn priority(&self, v: NodeId) -> Weight {
        self.startbound[v.index()] + self.blevel[v.index()]
    }

    /// Start time of `v` if appended to cluster `c` now (edges from
    /// members of `c` zeroed).
    fn st_in_cluster(&self, v: NodeId, c: u32) -> Weight {
        let arrivals = self
            .g
            .preds(v)
            .filter(|(p, _)| self.examined[p.index()])
            .map(|(p, w)| {
                let pc = self.cluster_of[p.index()].expect("examined preds are clustered");
                self.finish[p.index()] + if pc == c { 0 } else { self.cost.cross_cost(w) }
            })
            .max()
            .unwrap_or(0);
        arrivals.max(self.cluster_last[c as usize])
    }

    /// Candidate clusters for `v`: the distinct clusters of its
    /// examined predecessors, ascending.
    fn parent_clusters(&self, v: NodeId) -> Vec<u32> {
        let mut cs: Vec<u32> = self
            .g
            .preds(v)
            .filter(|(p, _)| self.examined[p.index()])
            .map(|(p, _)| self.cluster_of[p.index()].expect("clustered"))
            .collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Commits `v` to cluster `c` at time `st`.
    fn commit(&mut self, v: NodeId, c: u32, st: Weight) {
        self.examined[v.index()] = true;
        self.cluster_of[v.index()] = Some(c);
        self.start[v.index()] = st;
        let fin = st + self.g.node_weight(v);
        self.finish[v.index()] = fin;
        self.cluster_last[c as usize] = fin;
        self.cluster_tasks[c as usize].push(v);
        for (s, w) in self.g.succs(v) {
            self.examined_preds[s.index()] += 1;
            // startbound uses full communication (the successor is not
            // merged yet).
            self.startbound[s.index()] =
                self.startbound[s.index()].max(fin + self.cost.cross_cost(w));
        }
    }

    fn new_cluster(&mut self) -> u32 {
        self.cluster_last.push(0);
        self.cluster_tasks.push(Vec::new());
        (self.cluster_last.len() - 1) as u32
    }

    /// Number of incoming edges of `v` zeroed by joining cluster `c`
    /// (instrumentation only).
    fn zeroed_edges(&self, v: NodeId, c: u32) -> u64 {
        self.g
            .preds(v)
            .filter(|(p, _)| self.examined[p.index()] && self.cluster_of[p.index()] == Some(c))
            .count() as u64
    }
}

/// Records the accept/reject outcome of one examination step.
fn record_step(st: &State<'_>, nf: NodeId, accept: Option<(u32, Weight)>) {
    if !obs::active() {
        return;
    }
    match accept {
        Some((c, _)) => {
            obs::event("dsc.merges");
            obs::counter_add("dsc.edges_zeroed", st.zeroed_edges(nf, c));
        }
        None => obs::event("dsc.new_clusters"),
    }
}

impl Dsc {
    /// Monomorphized core: cluster with edges priced by the machine's
    /// level cost, then finalize under the machine.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        let n = g.num_nodes();
        if n == 0 {
            return dagsched_sim::Schedule::new(g, vec![]);
        }
        let cost = machine.level_cost();
        let levels = PricedLevels::new(g, cost);
        let mut st = State::new(g, levels.blevels(), cost);
        let span = obs::span!("dsc.cluster");

        for _ in 0..n {
            // Highest-priority free and partially free tasks (a scan
            // keeps the implementation transparent; the corpus sizes
            // make the O(n²) total negligible).
            let nf = g
                .nodes()
                .filter(|&v| st.is_free(v))
                .max_by_key(|&v| (st.priority(v), std::cmp::Reverse(v.0)))
                .expect("a DAG always has a free task while unexamined tasks remain");
            // The paper's ny: the single highest-priority partially
            // free task (ties toward the smaller index).
            let npf = g
                .nodes()
                .filter(|&v| st.is_partially_free(v))
                .max_by_key(|&v| (st.priority(v), std::cmp::Reverse(v.0)));

            let startbound = st.startbound[nf.index()];
            let candidates = st.parent_clusters(nf);
            let best = candidates
                .iter()
                .map(|&c| (st.st_in_cluster(nf, c), c))
                .min();

            let constrained = npf.is_some_and(|y| st.priority(y) > st.priority(nf));
            let accept = match best {
                // CT1: never increase the task's own start.
                Some((stc, c)) if stc <= startbound => {
                    if !constrained {
                        Some((c, stc))
                    } else {
                        // CT2 / DSRW: appending nf to c must not
                        // increase the potential start of ny (the
                        // pseudocode's single dominant partially free
                        // task).
                        let y = npf.expect("constrained implies ny exists");
                        let nf_fin = stc + g.node_weight(nf);
                        let ok = if st.parent_clusters(y).contains(&c) {
                            let before = st.st_in_cluster(y, c);
                            let after = before.max(nf_fin);
                            after <= before.max(st.startbound[y.index()])
                        } else {
                            true
                        };
                        ok.then_some((c, stc))
                    }
                }
                _ => None,
            };

            record_step(&st, nf, accept);
            match accept {
                Some((c, stc)) => st.commit(nf, c, stc),
                None => {
                    let c = st.new_cluster();
                    st.commit(nf, c, startbound);
                }
            }
        }
        drop(span);

        finalize(g, machine, st)
    }
}

impl Scheduler for Dsc {
    fn name(&self) -> &'static str {
        "DSC"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

/// Heap-driven DSC with the complexity the paper quotes,
/// O((v+e) log v): free and partially-free candidates live in lazy
/// max-heaps instead of being rescanned each round.
///
/// * a free task's priority is frozen the moment it becomes free
///   (all predecessors examined ⇒ its startbound no longer moves), so
///   free-heap entries are never stale;
/// * a partially free task's priority only grows; every growth pushes
///   a fresh entry and peeks discard entries whose stored priority no
///   longer matches.
///
/// Produces **identical schedules** to [`Dsc`] (differential-tested
/// in the property suite) — same selection rule, same tie-breaks,
/// same CT1/CT2 decisions — just found faster.
#[derive(Debug, Clone, Copy, Default)]
pub struct DscFast;

impl DscFast {
    /// Monomorphized core, identical decisions to [`Dsc::schedule_on`]
    /// found via lazy heaps.
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = g.num_nodes();
        if n == 0 {
            return dagsched_sim::Schedule::new(g, vec![]);
        }
        let cost = machine.level_cost();
        let levels = PricedLevels::new(g, cost);
        let mut st = State::new(g, levels.blevels(), cost);
        let span = obs::span!("dsc.cluster");

        // Max-heaps of (priority, Reverse(node id)).
        let mut free_heap: BinaryHeap<(Weight, Reverse<u32>)> = g
            .nodes()
            .filter(|&v| st.is_free(v))
            .map(|v| (st.priority(v), Reverse(v.0)))
            .collect();
        let mut pfree_heap: BinaryHeap<(Weight, Reverse<u32>)> = BinaryHeap::new();

        for _ in 0..n {
            let nf = loop {
                let (prio, Reverse(v)) = free_heap.pop().expect("a free task always exists");
                let v = NodeId(v);
                // Free entries go stale only by being examined (their
                // priority froze when they became free).
                if !st.examined[v.index()] {
                    debug_assert_eq!(prio, st.priority(v));
                    break v;
                }
            };
            // Lazily clean the partially-free head.
            let npf = loop {
                match pfree_heap.peek() {
                    None => break None,
                    Some(&(prio, Reverse(v))) => {
                        let v = NodeId(v);
                        if st.is_partially_free(v) && prio == st.priority(v) {
                            break Some(v);
                        }
                        pfree_heap.pop();
                    }
                }
            };

            let startbound = st.startbound[nf.index()];
            let candidates = st.parent_clusters(nf);
            let best = candidates
                .iter()
                .map(|&c| (st.st_in_cluster(nf, c), c))
                .min();
            let constrained = npf.is_some_and(|y| st.priority(y) > st.priority(nf));
            let accept = match best {
                Some((stc, c)) if stc <= startbound => {
                    if !constrained {
                        Some((c, stc))
                    } else {
                        let y = npf.expect("constrained implies ny exists");
                        let nf_fin = stc + g.node_weight(nf);
                        let ok = if st.parent_clusters(y).contains(&c) {
                            let before = st.st_in_cluster(y, c);
                            let after = before.max(nf_fin);
                            after <= before.max(st.startbound[y.index()])
                        } else {
                            true
                        };
                        ok.then_some((c, stc))
                    }
                }
                _ => None,
            };
            record_step(&st, nf, accept);
            match accept {
                Some((c, stc)) => st.commit(nf, c, stc),
                None => {
                    let c = st.new_cluster();
                    st.commit(nf, c, startbound);
                }
            }
            // Commit bumped the successors' startbounds: requeue them
            // under their new priorities.
            for (s, _) in g.succs(nf) {
                if st.is_free(s) {
                    free_heap.push((st.priority(s), Reverse(s.0)));
                    obs::event("dsc.priority_requeues");
                } else if st.is_partially_free(s) {
                    pfree_heap.push((st.priority(s), Reverse(s.0)));
                    obs::event("dsc.priority_requeues");
                }
            }
        }
        drop(span);

        finalize(g, machine, st)
    }
}

impl Scheduler for DscFast {
    fn name(&self) -> &'static str {
        "DSC-F"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

/// Turns the DSC clustering into a [`Schedule`]. On the unbounded
/// clique this replays DSC's own orders and must reproduce its
/// internal times exactly; on a bounded machine the excess clusters
/// are first folded together (least-loaded pairs) and re-timed.
fn finalize<M: Machine + ?Sized>(g: &Dag, machine: &M, st: State<'_>) -> Schedule {
    let _span = obs::span!("dsc.finalize");
    let num_clusters = st.cluster_tasks.len();
    let within_bound = machine.max_procs().is_none_or(|b| num_clusters <= b);
    if within_bound {
        let assignment: Vec<ProcId> = st
            .cluster_of
            .iter()
            .map(|c| ProcId(c.expect("all tasks clustered")))
            .collect();
        let schedule = timed_schedule(g, machine, &assignment, &st.cluster_tasks)
            .expect("DSC examination order is topological");
        // On the paper's clique the replayed times are exactly what
        // the algorithm computed internally; hop-priced topologies
        // re-time with their own costs.
        #[cfg(debug_assertions)]
        if matches!(machine.name(), "clique" | "uniform") {
            for v in g.nodes() {
                debug_assert_eq!(schedule.start_of(v), st.start[v.index()], "{v}");
            }
        }
        return schedule;
    }
    // Bounded machine: fold clusters (least-loaded pairs) until they
    // fit, then re-time.
    let bound = machine.max_procs().expect("bounded branch").max(1);
    let mut clustering = Clustering::new(g.num_nodes());
    for tasks in &st.cluster_tasks {
        let c = clustering.create_cluster();
        for &t in tasks {
            clustering.assign(t, c);
        }
    }
    clustering
        .fold_to(g, bound)
        .materialize(g, machine)
        .expect("folded clustering covers all tasks")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_sim::{metrics, validate, BoundedClique, Clique};

    #[test]
    fn fig16_schedule_is_valid_and_short() {
        let g = fig16();
        let s = Dsc.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        // DSC keeps the dominant sequence 0→2→3→4 in one cluster and
        // zeroes nothing it shouldn't: parallel time 130 (node 1 off
        // to the side) or better.
        assert!(s.makespan() <= 130, "got {}", s.makespan());
    }

    #[test]
    #[cfg(feature = "obs")]
    fn records_clustering_metrics_when_scoped() {
        let scope = dagsched_obs::run_scope();
        let g = fig16();
        Dsc.schedule(&g, &Clique);
        let stats = scope.finish();
        // Every examination either merges or opens a cluster.
        assert_eq!(
            stats.counter("dsc.merges") + stats.counter("dsc.new_clusters"),
            g.num_nodes() as u64
        );
        assert!(stats.span("dsc.cluster").is_some());
        assert!(stats.span("dsc.finalize").is_some());
        // The fast variant additionally counts heap requeues and makes
        // the same merge decisions.
        let scope = dagsched_obs::run_scope();
        DscFast.schedule(&g, &Clique);
        let fast = scope.finish();
        assert_eq!(fast.counter("dsc.merges"), stats.counter("dsc.merges"));
        assert!(fast.counter("dsc.priority_requeues") > 0);
    }

    #[test]
    fn never_worse_than_fully_parallel() {
        // DSC starts from the fully parallel clustering and only
        // accepts start-time-reducing merges, so it can never exceed
        // the critical path with communication.
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = Dsc.schedule(&g, &Clique);
            assert!(s.makespan() <= dagsched_dag::levels::critical_path_len(&g));
        }
    }

    #[test]
    fn zeroes_chains_completely() {
        let g = dagsched_gen::families::chain(8, 10, 500);
        let s = Dsc.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), 80);
    }

    #[test]
    fn coarse_fork_join_parallelizes() {
        let g = coarse_fork_join();
        let s = Dsc.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        let m = metrics::measures(&g, &s);
        assert!(m.speedup > 2.0, "got {}", m.speedup);
    }

    #[test]
    fn fine_fork_join_collapses_but_can_retard() {
        // DSC's guarantee is "no worse than fully parallel", not "no
        // worse than serial" — the Table 2 behaviour. On this fixture
        // it zeroes down to few clusters.
        let g = fine_fork_join();
        let s = Dsc.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        assert!(s.makespan() <= dagsched_dag::levels::critical_path_len(&g));
    }

    #[test]
    fn independent_tasks_stay_parallel() {
        let g = dagsched_gen::families::independent(4, 9);
        let s = Dsc.schedule(&g, &Clique);
        assert_eq!(s.num_procs(), 4);
        assert_eq!(s.makespan(), 9);
    }

    #[test]
    fn bounded_machine_folds_clusters() {
        let g = coarse_fork_join();
        let m = BoundedClique::new(2);
        let s = Dsc.schedule(&g, &m);
        assert!(s.num_procs() <= 2);
        assert!(validate::is_valid(&g, &m, &s));
    }

    #[test]
    fn empty_graph() {
        let g = dagsched_dag::DagBuilder::new().build().unwrap();
        assert_eq!(Dsc.schedule(&g, &Clique).makespan(), 0);
    }

    #[test]
    fn fast_dsc_matches_scan_dsc_on_fixtures() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let slow = Dsc.schedule(&g, &Clique);
            let fast = DscFast.schedule(&g, &Clique);
            assert_eq!(slow, fast);
        }
    }

    #[test]
    fn fast_dsc_matches_on_random_corpus_samples() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for band in dagsched_gen::GranularityBand::ALL {
            let g = dagsched_gen::pdg::generate(
                &dagsched_gen::PdgSpec {
                    nodes: 45,
                    anchor: 3,
                    weights: dagsched_gen::WeightRange::new(20, 200),
                    band,
                },
                &mut rng,
            )
            .unwrap();
            let slow = Dsc.schedule(&g, &Clique);
            let fast = DscFast.schedule(&g, &Clique);
            assert_eq!(slow, fast, "band {band:?}");
        }
    }

    #[test]
    fn ct1_rejects_merges_that_delay_the_task() {
        // A(10) → C(200) with comm 1, A → x(10) with comm 5. DSC
        // examines C before x (higher b-level) and zeroes A→C, making
        // A's cluster busy until 210. Joining that cluster would start
        // x at 210; its startbound alone is 15 — CT1 must reject the
        // merge and open a fresh cluster.
        use dagsched_dag::DagBuilder;
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(200);
        let x = b.add_node(10);
        b.add_edge(a, c, 1).unwrap();
        b.add_edge(a, x, 5).unwrap();
        let g = b.build().unwrap();
        let s = Dsc.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        assert_eq!(s.proc_of(a), s.proc_of(c), "A→C zeroed");
        assert_ne!(
            s.proc_of(x),
            s.proc_of(a),
            "x must not join the busy cluster"
        );
        assert_eq!(s.start_of(x), 15, "x starts at its startbound");
        assert_eq!(s.makespan(), 210);
    }

    #[test]
    fn merging_zeroes_all_edges_from_the_chosen_cluster() {
        // Diamond where both parents end up in one cluster: the join
        // node's merge zeroes both incoming edges at once.
        use dagsched_dag::DagBuilder;
        let mut b = DagBuilder::new();
        let s0 = b.add_node(10);
        let l = b.add_node(10);
        let r = b.add_node(10);
        let j = b.add_node(10);
        b.add_edge(s0, l, 100).unwrap();
        b.add_edge(s0, r, 100).unwrap();
        b.add_edge(l, j, 100).unwrap();
        b.add_edge(r, j, 100).unwrap();
        let g = b.build().unwrap();
        let s = Dsc.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        // With comm 100 ≫ weights, DSC collapses the whole diamond.
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.makespan(), 40);
    }
}
