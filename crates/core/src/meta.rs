//! The paper's motivating application (§5.2): "A parallelizing
//! compiler will require the best scheduler to be selected … The best
//! scheduler may be different for different classes of graphs."
//!
//! [`BandSelector`] implements exactly that selection rule, using the
//! study's own conclusion: **granularity** predicts which heuristic
//! wins. Below the threshold the paper identifies
//! (`0.08 < G < 0.2` "seems to be a threshold after which all
//! heuristics perform relatively well") it dispatches to CLANS — "the
//! scheduler of choice at low granularities" — and above it to MCP,
//! which "gave good results at high granularities".
//!
//! [`BestOf`] is the oracle upper bound: run every candidate and keep
//! the shortest schedule (what a compiler with unlimited compile-time
//! budget would do; its parallel time *is* the study's
//! `BestParallelTime`).

use crate::model::MachineModel;
use crate::scheduler::Scheduler;
use dagsched_dag::{metrics, Dag};
use dagsched_sim::{Machine, Schedule};

/// Granularity-dispatched meta-scheduler (CLANS below the threshold,
/// MCP above).
#[derive(Debug, Clone, Copy)]
pub struct BandSelector {
    /// Granularity threshold; the paper's suggested switch point is
    /// 0.2 (the upper edge of the `0.08 < G < 0.2` band).
    pub threshold: f64,
}

impl Default for BandSelector {
    fn default() -> Self {
        BandSelector { threshold: 0.2 }
    }
}

impl Scheduler for BandSelector {
    fn name(&self) -> &'static str {
        "SELECT"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        if metrics::granularity(g) < self.threshold {
            crate::clans_sched::Clans.schedule_on(g, machine)
        } else {
            crate::cp::mcp::Mcp::default().schedule_on(g, machine)
        }
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        if metrics::granularity(g) < self.threshold {
            crate::clans_sched::Clans.schedule_on(g, model)
        } else {
            crate::cp::mcp::Mcp::default().schedule_on(g, model)
        }
    }
}

/// Oracle meta-scheduler: runs every given candidate and returns the
/// schedule with the smallest makespan (ties keep the earlier
/// candidate).
pub struct BestOf {
    candidates: Vec<Box<dyn Scheduler>>,
}

impl BestOf {
    /// Best-of over an explicit candidate list (must be non-empty).
    pub fn new(candidates: Vec<Box<dyn Scheduler>>) -> Self {
        assert!(
            !candidates.is_empty(),
            "BestOf needs at least one candidate"
        );
        BestOf { candidates }
    }

    /// Best-of over the paper's five heuristics.
    pub fn paper() -> Self {
        BestOf::new(crate::scheduler::paper_heuristics())
    }
}

impl Scheduler for BestOf {
    fn name(&self) -> &'static str {
        "BEST-OF"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.candidates
            .iter()
            .map(|h| h.schedule(g, machine))
            .min_by_key(Schedule::makespan)
            .expect("non-empty candidate list")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use crate::scheduler::paper_heuristics;
    use dagsched_sim::{validate, Clique};

    #[test]
    fn selector_dispatches_by_granularity() {
        // Fine grain → CLANS's serial-safe behaviour.
        let fine = fine_fork_join();
        let s = BandSelector::default().schedule(&fine, &Clique);
        assert_eq!(s.makespan(), fine.serial_time());
        assert_eq!(s.num_procs(), 1);
        // Coarse grain → MCP's schedule.
        let coarse = coarse_fork_join();
        let sel = BandSelector::default().schedule(&coarse, &Clique);
        let mcp = crate::cp::mcp::Mcp::default().schedule(&coarse, &Clique);
        assert_eq!(sel, mcp);
    }

    #[test]
    fn selector_is_valid_and_never_retards_fine_grain() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let s = BandSelector::default().schedule(&g, &Clique);
            assert!(validate::is_valid(&g, &Clique, &s));
        }
    }

    #[test]
    fn best_of_matches_the_column_minimum() {
        let oracle = BestOf::paper();
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let best = oracle.schedule(&g, &Clique).makespan();
            let min = paper_heuristics()
                .iter()
                .map(|h| h.schedule(&g, &Clique).makespan())
                .min()
                .unwrap();
            assert_eq!(best, min);
        }
    }

    #[test]
    fn best_of_on_fig16_is_130() {
        let s = BestOf::paper().schedule(&fig16(), &Clique);
        assert_eq!(s.makespan(), 130);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_best_of_panics() {
        BestOf::new(Vec::new());
    }
}
