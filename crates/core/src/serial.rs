//! The serial baseline: everything on one processor.

use crate::model::MachineModel;
use crate::scheduler::Scheduler;
use dagsched_dag::Dag;
use dagsched_sim::{Clustering, Machine, Schedule};

/// Places every task on a single processor in topological order. Its
/// makespan is the graph's serial time — the numerator of every
/// speedup the paper reports, and the fallback CLANS reverts to when
/// parallelization would retard execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl Serial {
    /// Monomorphized core (trivially model-independent apart from the
    /// startup floor applied during materialization).
    pub fn schedule_on<M: Machine + ?Sized>(&self, g: &Dag, machine: &M) -> Schedule {
        Clustering::serial(g.num_nodes())
            .materialize(g, machine)
            .expect("the serial clustering is always valid")
    }
}

impl Scheduler for Serial {
    fn name(&self) -> &'static str {
        "SERIAL"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.schedule_on(g, machine)
    }

    fn schedule_model<M: MachineModel>(&self, g: &Dag, model: &M) -> Schedule {
        self.schedule_on(g, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dagsched_sim::{metrics, validate, Clique};

    #[test]
    fn serial_makespan_is_serial_time() {
        for g in [
            fixtures::fig16(),
            fixtures::coarse_fork_join(),
            fixtures::fine_fork_join(),
        ] {
            let s = Serial.schedule(&g, &Clique);
            assert_eq!(s.makespan(), g.serial_time());
            assert_eq!(s.num_procs(), 1);
            assert!(validate::is_valid(&g, &Clique, &s));
            let m = metrics::measures(&g, &s);
            assert_eq!(m.speedup, 1.0);
            assert_eq!(m.efficiency, 1.0);
        }
    }

    #[test]
    fn empty_graph() {
        let g = dagsched_dag::DagBuilder::new().build().unwrap();
        let s = Serial.schedule(&g, &Clique);
        assert_eq!(s.makespan(), 0);
    }
}
