//! Reusable scheduler scratch buffers (the per-thread `Workspace`).
//!
//! Every list-scheduler run needs the same transient storage: ready
//! queues, pending-predecessor counters, per-processor timelines and
//! per-node start/finish tables. Allocating them afresh for each of
//! the corpus's thousands of (graph, heuristic) runs puts the
//! allocator on the hot path; this module keeps one pool of recycled
//! buffers per worker thread instead, so steady-state corpus sweeps
//! run allocation-free in the dispatch loops.
//!
//! Design:
//!
//! * The pool is a **stack per buffer shape** — `take_*` pops a
//!   recycled buffer (or allocates the first time) and `recycle_*`
//!   clears and pushes it back. A stack discipline is naturally
//!   re-entrant: CLANS scheduling a quotient graph through MH simply
//!   pops a second set of buffers.
//! * Recycling is wired into `Drop` where a clear owner exists
//!   ([`PendingCounters`], the listsched `PartialSchedule` and
//!   `ReadyQueue`), and explicit elsewhere. A buffer dropped without
//!   recycling (panic unwinds, …) is simply deallocated — the pool is
//!   an optimization, never a correctness dependency.
//! * Buffers are cleared *on recycle* and refilled by `take_*`, so a
//!   pooled buffer is indistinguishable from a fresh allocation;
//!   schedules are byte-identical either way (locked by the
//!   differential suite in `tests/analysis_cache.rs`).

use dagsched_dag::{NodeId, Weight};
use dagsched_sim::ProcId;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::{Deref, DerefMut};

/// One worker thread's stacks of recycled buffers.
#[derive(Default)]
struct Pool {
    weights: Vec<Vec<Weight>>,
    counts: Vec<Vec<u32>>,
    proc_opts: Vec<Vec<Option<ProcId>>>,
    procs: Vec<Vec<ProcId>>,
    ready: Vec<Vec<(Weight, Reverse<u32>)>>,
    events: Vec<Vec<Reverse<(Weight, u32)>>>,
    nodes: Vec<Vec<NodeId>>,
    orders: Vec<Vec<Vec<NodeId>>>,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

fn with_pool<R>(f: impl FnOnce(&mut Pool) -> R) -> R {
    POOL.with(|p| f(&mut p.borrow_mut()))
}

/// A `Weight` table of length `len`, every slot `fill`.
pub(crate) fn take_weights(len: usize, fill: Weight) -> Vec<Weight> {
    let mut v = with_pool(|p| p.weights.pop()).unwrap_or_default();
    v.resize(len, fill);
    debug_assert!(v.iter().all(|&w| w == fill));
    v
}

pub(crate) fn recycle_weights(mut v: Vec<Weight>) {
    v.clear();
    with_pool(|p| p.weights.push(v));
}

/// An empty `u32` counter buffer (capacity recycled).
pub(crate) fn take_counts() -> Vec<u32> {
    with_pool(|p| p.counts.pop()).unwrap_or_default()
}

pub(crate) fn recycle_counts(mut v: Vec<u32>) {
    v.clear();
    with_pool(|p| p.counts.push(v));
}

/// A `proc_of` table of length `len`, every slot `None`.
pub(crate) fn take_proc_opts(len: usize) -> Vec<Option<ProcId>> {
    let mut v = with_pool(|p| p.proc_opts.pop()).unwrap_or_default();
    v.resize(len, None);
    v
}

pub(crate) fn recycle_proc_opts(mut v: Vec<Option<ProcId>>) {
    v.clear();
    with_pool(|p| p.proc_opts.push(v));
}

/// A `ProcId` table of length `len`, every slot `fill`.
pub(crate) fn take_procs(len: usize, fill: ProcId) -> Vec<ProcId> {
    let mut v = with_pool(|p| p.procs.pop()).unwrap_or_default();
    v.resize(len, fill);
    v
}

pub(crate) fn recycle_procs(mut v: Vec<ProcId>) {
    v.clear();
    with_pool(|p| p.procs.push(v));
}

/// An empty max-heap for `(priority, Reverse(node))` ready entries.
pub(crate) fn take_ready_heap() -> BinaryHeap<(Weight, Reverse<u32>)> {
    BinaryHeap::from(with_pool(|p| p.ready.pop()).unwrap_or_default())
}

pub(crate) fn recycle_ready_heap(h: BinaryHeap<(Weight, Reverse<u32>)>) {
    let mut v = h.into_vec();
    v.clear();
    with_pool(|p| p.ready.push(v));
}

/// An empty min-heap for `Reverse((time, id))` entries (completion
/// events, processor availability).
pub(crate) fn take_event_heap() -> BinaryHeap<Reverse<(Weight, u32)>> {
    BinaryHeap::from(with_pool(|p| p.events.pop()).unwrap_or_default())
}

pub(crate) fn recycle_event_heap(h: BinaryHeap<Reverse<(Weight, u32)>>) {
    let mut v = h.into_vec();
    v.clear();
    with_pool(|p| p.events.push(v));
}

/// An empty node list (ready lists, dispatch orders).
pub(crate) fn take_nodes() -> Vec<NodeId> {
    with_pool(|p| p.nodes.pop()).unwrap_or_default()
}

pub(crate) fn recycle_nodes(mut v: Vec<NodeId>) {
    v.clear();
    with_pool(|p| p.nodes.push(v));
}

/// An empty list of per-processor execution orders. The inner lists
/// are pooled too (see [`recycle_orders`]).
pub(crate) fn take_orders() -> Vec<Vec<NodeId>> {
    with_pool(|p| p.orders.pop()).unwrap_or_default()
}

pub(crate) fn recycle_orders(mut v: Vec<Vec<NodeId>>) {
    with_pool(|p| {
        for mut inner in v.drain(..) {
            inner.clear();
            p.nodes.push(inner);
        }
        p.orders.push(v);
    });
}

/// Grows `orders` by one pooled per-processor list.
pub(crate) fn push_order_row(orders: &mut Vec<Vec<NodeId>>) {
    orders.push(take_nodes());
}

/// Remaining-predecessor counters, recycled on drop. Derefs to the
/// underlying `[u32]` so index updates read like a plain vector.
pub(crate) struct PendingCounters(Vec<u32>);

impl PendingCounters {
    pub(crate) fn from_in_degrees(g: &dagsched_dag::Dag) -> Self {
        let mut v = take_counts();
        v.extend((0..g.num_nodes()).map(|i| g.in_degree(NodeId(i as u32)) as u32));
        PendingCounters(v)
    }
}

impl Deref for PendingCounters {
    type Target = [u32];
    fn deref(&self) -> &[u32] {
        &self.0
    }
}

impl DerefMut for PendingCounters {
    fn deref_mut(&mut self) -> &mut [u32] {
        &mut self.0
    }
}

impl Drop for PendingCounters {
    fn drop(&mut self) {
        recycle_counts(std::mem::take(&mut self.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_refills_and_reuses_capacity() {
        let mut v = take_weights(4, 7);
        assert_eq!(v, vec![7, 7, 7, 7]);
        v[0] = 99;
        let cap = v.capacity();
        recycle_weights(v);
        // The recycled allocation comes back cleared and refilled.
        let v2 = take_weights(3, 0);
        assert_eq!(v2, vec![0, 0, 0]);
        assert!(v2.capacity() >= cap.min(3));
        recycle_weights(v2);
    }

    #[test]
    fn pool_is_a_stack_so_nested_takes_are_independent() {
        let a = take_weights(2, 1);
        let b = take_weights(2, 2); // nested (re-entrant) take
        assert_eq!(a, vec![1, 1]);
        assert_eq!(b, vec![2, 2]);
        recycle_weights(a);
        recycle_weights(b);
    }

    #[test]
    fn heaps_come_back_empty() {
        let mut h = take_ready_heap();
        h.push((5, Reverse(1)));
        recycle_ready_heap(h);
        let h2 = take_ready_heap();
        assert!(h2.is_empty());
        recycle_ready_heap(h2);
    }

    #[test]
    fn orders_recycle_inner_lists() {
        let mut orders = take_orders();
        push_order_row(&mut orders);
        push_order_row(&mut orders);
        orders[0].push(NodeId(3));
        recycle_orders(orders);
        let again = take_orders();
        assert!(again.is_empty());
        recycle_orders(again);
        let node_buf = take_nodes();
        assert!(node_buf.is_empty());
        recycle_nodes(node_buf);
    }

    #[test]
    fn pending_counters_track_in_degrees() {
        let g = crate::fixtures::fig16();
        let mut pending = PendingCounters::from_in_degrees(&g);
        assert_eq!(&pending[..], &[0, 1, 1, 1, 2]);
        pending[4] -= 1;
        assert_eq!(pending[4], 1);
    }
}
