//! The clan parse tree data structure.

use dagsched_dag::bitset::BitSet;
use dagsched_dag::{Dag, NodeId};
use dagsched_obs as obs;
use std::fmt;

/// Index of a clan within a [`ParseTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClanId(pub u32);

impl ClanId {
    /// The clan index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Classification of a clan in the parse tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClanKind {
    /// A single graph node.
    Leaf,
    /// Children are totally ordered by ancestry; they execute
    /// sequentially. Children are stored in execution order.
    Linear,
    /// Children are pairwise unrelated; they may execute concurrently.
    Independent,
    /// Neither linear nor independent; children are the maximal proper
    /// strong clans.
    Primitive,
}

/// One clan of the parse tree.
#[derive(Debug, Clone)]
pub struct Clan {
    /// Structural classification.
    pub kind: ClanKind,
    /// Graph nodes contained in this clan (non-empty).
    pub members: BitSet,
    /// Child clans; empty iff `kind == Leaf`. For linear clans the
    /// order is the execution (ancestry) order; otherwise ascending by
    /// smallest member index.
    pub children: Vec<ClanId>,
    /// The graph node, for leaves.
    pub node: Option<NodeId>,
    /// Parent clan; `None` for the root.
    pub parent: Option<ClanId>,
}

impl Clan {
    /// Number of graph nodes in the clan.
    pub fn size(&self) -> usize {
        self.members.count()
    }
}

/// The unique hierarchy of strong clans of a DAG.
///
/// Construct with [`ParseTree::decompose`]. The tree of the empty
/// graph has no clans and no root.
#[derive(Debug, Clone)]
pub struct ParseTree {
    pub(crate) clans: Vec<Clan>,
    pub(crate) root: Option<ClanId>,
    /// Leaf clan of each graph node.
    pub(crate) node_leaf: Vec<ClanId>,
}

impl ParseTree {
    /// Decomposes `g` into its clan parse tree.
    pub fn decompose(g: &Dag) -> ParseTree {
        let _span = obs::span!("clans.decompose");
        let tree = crate::decompose::decompose(g);
        if obs::active() {
            let (linear, independent, primitive) = tree.kind_counts();
            obs::counter_add("clans.linear_clans", linear as u64);
            obs::counter_add("clans.independent_clans", independent as u64);
            obs::counter_add("clans.primitive_clans", primitive as u64);
            obs::gauge_set("clans.tree_clans", tree.num_clans() as u64);
            obs::gauge_set("clans.tree_height", tree.height() as u64);
        }
        tree
    }

    /// The root clan (the whole graph), or `None` for the empty graph.
    #[inline]
    pub fn root(&self) -> Option<ClanId> {
        self.root
    }

    /// Access a clan by id.
    #[inline]
    pub fn clan(&self, id: ClanId) -> &Clan {
        &self.clans[id.index()]
    }

    /// Total number of clans (leaves included).
    #[inline]
    pub fn num_clans(&self) -> usize {
        self.clans.len()
    }

    /// Iterator over all clan ids.
    pub fn clan_ids(&self) -> impl Iterator<Item = ClanId> + '_ {
        (0..self.clans.len() as u32).map(ClanId)
    }

    /// The leaf clan holding graph node `v`.
    #[inline]
    pub fn leaf_of(&self, v: NodeId) -> ClanId {
        self.node_leaf[v.index()]
    }

    /// Clans in bottom-up (children before parents) order.
    pub fn bottom_up(&self) -> Vec<ClanId> {
        // Clans are appended parent-first during construction, so the
        // reverse id order is a valid bottom-up order; assert in debug.
        let order: Vec<ClanId> = (0..self.clans.len() as u32).rev().map(ClanId).collect();
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; self.clans.len()];
            for &c in &order {
                for &ch in &self.clans[c.index()].children {
                    debug_assert!(seen[ch.index()], "child {ch} must precede parent {c}");
                }
                seen[c.index()] = true;
            }
        }
        order
    }

    /// Number of internal clans of each kind
    /// `(linear, independent, primitive)`.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.clans {
            match c.kind {
                ClanKind::Linear => counts.0 += 1,
                ClanKind::Independent => counts.1 += 1,
                ClanKind::Primitive => counts.2 += 1,
                ClanKind::Leaf => {}
            }
        }
        counts
    }

    /// Height of the tree (1 for a single leaf, 0 when empty).
    pub fn height(&self) -> usize {
        fn rec(t: &ParseTree, c: ClanId) -> usize {
            1 + t
                .clan(c)
                .children
                .iter()
                .map(|&ch| rec(t, ch))
                .max()
                .unwrap_or(0)
        }
        self.root.map_or(0, |r| rec(self, r))
    }

    /// A compact single-line rendering, e.g.
    /// `L(0, I(1, L(2, 3)), 4)` — useful in tests and examples.
    pub fn render(&self) -> String {
        fn rec(t: &ParseTree, c: ClanId, out: &mut String) {
            let clan = t.clan(c);
            match clan.kind {
                ClanKind::Leaf => out.push_str(&clan.node.unwrap().0.to_string()),
                kind => {
                    out.push(match kind {
                        ClanKind::Linear => 'L',
                        ClanKind::Independent => 'I',
                        ClanKind::Primitive => 'P',
                        ClanKind::Leaf => unreachable!(),
                    });
                    out.push('(');
                    for (i, &ch) in clan.children.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        rec(t, ch, out);
                    }
                    out.push(')');
                }
            }
        }
        let mut s = String::new();
        if let Some(r) = self.root {
            rec(self, r, &mut s);
        }
        s
    }

    /// Graphviz rendering of the parse tree.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph parsetree {\n  node [shape=box];\n");
        for id in self.clan_ids() {
            let c = self.clan(id);
            let label = match c.kind {
                ClanKind::Leaf => format!("n{}", c.node.unwrap().0),
                ClanKind::Linear => "LIN".into(),
                ClanKind::Independent => "IND".into(),
                ClanKind::Primitive => "PRIM".into(),
            };
            writeln!(out, "  c{} [label=\"{}\"];", id.0, label).unwrap();
            for &ch in &c.children {
                writeln!(out, "  c{} -> c{};", id.0, ch.0).unwrap();
            }
        }
        out.push_str("}\n");
        out
    }
}
