//! The clan decomposition algorithm (see the crate docs for the
//! construction and its correctness argument).

use crate::tree::{Clan, ClanId, ClanKind, ParseTree};
use dagsched_dag::bitset::BitSet;
use dagsched_dag::closure::Closure;
use dagsched_dag::{Dag, NodeId};

/// Decomposes `g` into its clan parse tree.
pub(crate) fn decompose(g: &Dag) -> ParseTree {
    let n = g.num_nodes();
    if n == 0 {
        return ParseTree {
            clans: Vec::new(),
            root: None,
            node_leaf: Vec::new(),
        };
    }
    let closure = g.closure();
    let mut b = Builder {
        n,
        closure,
        clans: Vec::new(),
        node_leaf: vec![ClanId(0); n],
    };
    let all: Vec<u32> = (0..n as u32).collect();
    let root = b.build(all, None);
    ParseTree {
        clans: b.clans,
        root: Some(root),
        node_leaf: b.node_leaf,
    }
}

struct Builder<'a> {
    n: usize,
    closure: &'a Closure,
    clans: Vec<Clan>,
    node_leaf: Vec<ClanId>,
}

impl Builder<'_> {
    /// True iff the two graph nodes are comparable (one reaches the
    /// other).
    #[inline]
    fn related(&self, a: u32, b: u32) -> bool {
        self.closure.reaches(NodeId(a), NodeId(b)) || self.closure.reaches(NodeId(b), NodeId(a))
    }

    /// Allocates the clan record for `set` (parent-first so that
    /// descending ids are a bottom-up order), then classifies it and
    /// recurses into the children.
    fn build(&mut self, set: Vec<u32>, parent: Option<ClanId>) -> ClanId {
        let id = ClanId(self.clans.len() as u32);
        let members = BitSet::from_iter_with_len(self.n, set.iter().map(|&v| v as usize));
        self.clans.push(Clan {
            kind: ClanKind::Leaf, // patched below
            members,
            children: Vec::new(),
            node: None,
            parent,
        });

        if set.len() == 1 {
            let v = NodeId(set[0]);
            self.clans[id.index()].node = Some(v);
            self.node_leaf[v.index()] = id;
            return id;
        }

        // 1. Independent: components of the comparability graph.
        let comp = components(&set, |a, b| self.related(a, b));
        if comp.len() > 1 {
            return self.finish(id, ClanKind::Independent, sort_groups(comp));
        }

        // 2. Linear: components of the incomparability graph, totally
        //    ordered by ancestry (a theorem for partial orders).
        let mut blocks = components(&set, |a, b| !self.related(a, b));
        if blocks.len() > 1 {
            blocks.sort_by(|x, y| {
                let (a, b) = (x[0], y[0]);
                if self.closure.reaches(NodeId(a), NodeId(b)) {
                    std::cmp::Ordering::Less
                } else {
                    debug_assert!(
                        self.closure.reaches(NodeId(b), NodeId(a)),
                        "blocks of a linear clan must be pairwise comparable"
                    );
                    std::cmp::Ordering::Greater
                }
            });
            #[cfg(debug_assertions)]
            self.assert_uniform_orientation(&blocks);
            return self.finish(id, ClanKind::Linear, blocks);
        }

        // 3. Primitive: children are the maximal proper strong clans —
        //    the classes of u ≡ v  ⇔  module-closure({u,v}) ≠ set.
        let classes = self.primitive_classes(&set);
        self.finish(id, ClanKind::Primitive, sort_groups(classes))
    }

    fn finish(&mut self, id: ClanId, kind: ClanKind, groups: Vec<Vec<u32>>) -> ClanId {
        let children: Vec<ClanId> = groups
            .into_iter()
            .map(|grp| self.build(grp, Some(id)))
            .collect();
        let c = &mut self.clans[id.index()];
        c.kind = kind;
        c.children = children;
        id
    }

    #[cfg(debug_assertions)]
    fn assert_uniform_orientation(&self, blocks: &[Vec<u32>]) {
        for w in blocks.windows(2) {
            for &a in &w[0] {
                for &b in &w[1] {
                    debug_assert!(
                        self.closure.reaches(NodeId(a), NodeId(b)),
                        "linear blocks must be uniformly oriented"
                    );
                }
            }
        }
    }

    /// Partition of a primitive `set` into the classes of the
    /// equivalence `u ≡ v ⇔ M(u, v) ⊊ set`, where `M` is the smallest
    /// module (clan) containing both. Classes are extracted
    /// representative by representative: `class(u) = {u} ∪ {v : M(u,v) ⊊ set}`.
    fn primitive_classes(&self, set: &[u32]) -> Vec<Vec<u32>> {
        let k = set.len();
        let mut assigned = vec![false; k];
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for i in 0..k {
            if assigned[i] {
                continue;
            }
            let mut class = vec![set[i]];
            assigned[i] = true;
            for j in i + 1..k {
                if assigned[j] {
                    continue;
                }
                if self.module_closure_is_proper(set, i, j) {
                    class.push(set[j]);
                    assigned[j] = true;
                }
            }
            classes.push(class);
        }
        // Theory guarantees a primitive clan of size ≥ 2 has ≥ 2
        // children; fall back to singletons if that is ever violated
        // so the recursion always terminates.
        if classes.len() <= 1 && k > 1 {
            debug_assert!(false, "primitive clan produced a single class");
            return set.iter().map(|&v| vec![v]).collect();
        }
        classes
    }

    /// Grows the smallest module containing `set[i]` and `set[j]` by
    /// repeatedly absorbing every outside element whose relation to
    /// some member differs from its relation to the seed. Returns
    /// whether the fixpoint is a *proper* subset of `set`.
    fn module_closure_is_proper(&self, set: &[u32], i: usize, j: usize) -> bool {
        let k = set.len();
        let mut in_m = vec![false; k];
        in_m[i] = true;
        in_m[j] = true;
        let mut size = 2usize;
        // rel_to_seed[z] caches relation(set[z], seed); an outside z
        // joins the module the moment its relation to any member
        // deviates from that reference.
        let seed = set[i];
        let rel = |a: u32, b: u32| self.closure.relation(NodeId(a), NodeId(b));
        let rel_to_seed: Vec<_> = set
            .iter()
            .map(|&z| if z == seed { None } else { Some(rel(z, seed)) })
            .collect();
        let mut queue = vec![j];
        while let Some(w) = queue.pop() {
            let wv = set[w];
            if wv == seed {
                continue;
            }
            for z in 0..k {
                if in_m[z] || set[z] == wv {
                    continue;
                }
                if rel(set[z], wv) != rel_to_seed[z].expect("z != seed") {
                    in_m[z] = true;
                    size += 1;
                    if size == k {
                        return false; // blew up to the whole set
                    }
                    queue.push(z);
                }
            }
        }
        size < k
    }
}

/// Connected components of the graph on `set` whose edges are the
/// pairs accepted by `adj`. O(k²) pair scans with a union-find.
fn components(set: &[u32], adj: impl Fn(u32, u32) -> bool) -> Vec<Vec<u32>> {
    let k = set.len();
    let mut uf = UnionFind::new(k);
    for i in 0..k {
        for j in i + 1..k {
            if uf.find(i) != uf.find(j) && adj(set[i], set[j]) {
                uf.union(i, j);
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
    for (i, &v) in set.iter().enumerate() {
        groups.entry(uf.find(i)).or_default().push(v);
    }
    groups.into_values().collect()
}

/// Deterministic group order: ascending by smallest member.
fn sort_groups(mut groups: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    for grp in &mut groups {
        grp.sort_unstable();
    }
    groups.sort_by_key(|grp| grp[0]);
    groups
}

struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_dag::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn build(edges: &[(u32, u32)], nodes: u32) -> Dag {
        let mut b = DagBuilder::new();
        for _ in 0..nodes {
            b.add_node(1);
        }
        for &(s, d) in edges {
            b.add_edge(n(s), n(d), 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn empty_graph() {
        let t = ParseTree::decompose(&DagBuilder::new().build().unwrap());
        assert!(t.root().is_none());
        assert_eq!(t.num_clans(), 0);
        assert_eq!(t.height(), 0);
        assert_eq!(t.render(), "");
    }

    #[test]
    fn single_node() {
        let t = ParseTree::decompose(&build(&[], 1));
        let r = t.root().unwrap();
        assert_eq!(t.clan(r).kind, ClanKind::Leaf);
        assert_eq!(t.clan(r).node, Some(n(0)));
        assert_eq!(t.height(), 1);
        assert_eq!(t.render(), "0");
    }

    #[test]
    fn chain_is_linear() {
        let t = ParseTree::decompose(&build(&[(0, 1), (1, 2), (2, 3)], 4));
        assert_eq!(t.render(), "L(0, 1, 2, 3)");
    }

    #[test]
    fn antichain_is_independent() {
        let t = ParseTree::decompose(&build(&[], 3));
        assert_eq!(t.render(), "I(0, 1, 2)");
    }

    #[test]
    fn fig16_structure() {
        // The paper's Figure 16: C1={3,4} linear, C2={2,{3,4}}
        // independent, C3 = {1, C2, 5} linear (0-based: nodes 0..4).
        let g = build(&[(0, 1), (0, 2), (2, 3), (1, 4), (3, 4)], 5);
        let t = ParseTree::decompose(&g);
        assert_eq!(t.render(), "L(0, I(1, L(2, 3)), 4)");
        assert_eq!(t.kind_counts(), (2, 1, 0));
        assert_eq!(t.height(), 4);
    }

    #[test]
    fn n_poset_is_primitive() {
        // a→c, b→c, b→d: the classic smallest primitive partial order.
        let t = ParseTree::decompose(&build(&[(0, 2), (1, 2), (1, 3)], 4));
        let r = t.root().unwrap();
        assert_eq!(t.clan(r).kind, ClanKind::Primitive);
        assert_eq!(t.clan(r).children.len(), 4);
        assert_eq!(t.render(), "P(0, 1, 2, 3)");
    }

    #[test]
    fn primitive_with_composite_child() {
        // Replace node 0 of the N poset by a two-node chain {0,4}:
        // the chain is a module and must appear as a linear child.
        let t = ParseTree::decompose(&build(&[(0, 4), (4, 2), (1, 2), (1, 3)], 5));
        assert_eq!(t.render(), "P(L(0, 4), 1, 2, 3)");
    }

    #[test]
    fn fork_join_nests_linear_over_independent() {
        // 0 -> {1,2,3} -> 4
        let t = ParseTree::decompose(&build(&[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)], 5));
        assert_eq!(t.render(), "L(0, I(1, 2, 3), 4)");
    }

    #[test]
    fn parallel_chains() {
        // Two independent 2-chains.
        let t = ParseTree::decompose(&build(&[(0, 1), (2, 3)], 4));
        assert_eq!(t.render(), "I(L(0, 1), L(2, 3))");
    }

    #[test]
    fn leaves_cover_all_nodes() {
        let g = build(&[(0, 2), (1, 2), (1, 3), (3, 5), (2, 5), (0, 4)], 6);
        let t = ParseTree::decompose(&g);
        for v in g.nodes() {
            let leaf = t.leaf_of(v);
            assert_eq!(t.clan(leaf).node, Some(v));
            assert_eq!(t.clan(leaf).kind, ClanKind::Leaf);
        }
        // Root contains everything.
        assert_eq!(t.clan(t.root().unwrap()).size(), 6);
    }

    #[test]
    fn bottom_up_order_is_children_first() {
        let g = build(&[(0, 1), (0, 2), (2, 3), (1, 4), (3, 4)], 5);
        let t = ParseTree::decompose(&g);
        let order = t.bottom_up();
        let mut seen = vec![false; t.num_clans()];
        for c in order {
            for &ch in &t.clan(c).children {
                assert!(seen[ch.index()]);
            }
            seen[c.index()] = true;
        }
    }

    #[test]
    fn deeply_nested_series_parallel_structures() {
        use dagsched_dag::compose::{parallel, series, task};
        // L( t, I( L(t,t), I(t,t) ... wait: I inside I flattens ), t )
        // Build: series(t, parallel(series(t,t), parallel(t,t)… ) —
        // parallel of parallel flattens in the canonical tree, so use
        // parallel(series, series) for a true two-level nest.
        let inner_a = series(&[&task(1), &task(2)], |_, _, _| 1).unwrap();
        let inner_b = series(&[&task(3), &task(4), &task(5)], |_, _, _| 1).unwrap();
        let mid = parallel(&[&inner_a, &inner_b]).unwrap();
        let g = series(&[&task(9), &mid, &task(9)], |_, _, _| 1).unwrap();
        let t = ParseTree::decompose(&g);
        assert_eq!(t.render(), "L(0, I(L(1, 2), L(3, 4, 5)), 6)");
        assert_eq!(t.kind_counts(), (3, 1, 0));
        assert_eq!(t.height(), 4);
    }

    #[test]
    fn nested_independent_flattens_canonically() {
        use dagsched_dag::compose::{parallel, task};
        // parallel(parallel(t,t), t) must parse as one independent
        // clan with three children — the canonical tree has no
        // independent-under-independent.
        let inner = parallel(&[&task(1), &task(2)]).unwrap();
        let g = parallel(&[&inner, &task(3)]).unwrap();
        let t = ParseTree::decompose(&g);
        assert_eq!(t.render(), "I(0, 1, 2)");
    }

    #[test]
    fn nested_series_flattens_canonically() {
        use dagsched_dag::compose::{series, task};
        let inner = series(&[&task(1), &task(2)], |_, _, _| 1).unwrap();
        let g = series(&[&inner, &task(3)], |_, _, _| 1).unwrap();
        let t = ParseTree::decompose(&g);
        assert_eq!(t.render(), "L(0, 1, 2)");
    }

    #[test]
    fn primitive_nested_inside_series() {
        use dagsched_dag::compose::{series, task};
        // The N poset sandwiched between two tasks: the primitive
        // survives as a child of the outer linear clan.
        let n_poset = build(&[(0, 2), (1, 2), (1, 3)], 4);
        let g = series(&[&task(9), &n_poset, &task(9)], |_, _, _| 1).unwrap();
        let t = ParseTree::decompose(&g);
        assert_eq!(t.render(), "L(0, P(1, 2, 3, 4), 5)");
        assert!(crate::verify::check_tree(&g, &t).is_empty());
    }

    #[test]
    fn children_partition_parent() {
        let g = build(&[(0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (0, 5)], 6);
        let t = ParseTree::decompose(&g);
        for id in t.clan_ids() {
            let c = t.clan(id);
            if c.kind == ClanKind::Leaf {
                continue;
            }
            let mut union = BitSet::new(g.num_nodes());
            let mut total = 0;
            for &ch in &c.children {
                let m = &t.clan(ch).members;
                assert!(!union.intersects(m), "children must be disjoint");
                union.union_with(m);
                total += m.count();
            }
            assert_eq!(union, c.members);
            assert_eq!(total, c.size());
        }
    }
}
