//! # dagsched-clans — clan decomposition of weighted DAGs
//!
//! Implements the graph-decomposition substrate behind the CLANS
//! scheduler of McCreary & Gill, as described in the appendix of
//! Khan, McCreary & Jones (ICPP 1994).
//!
//! A set of vertices `C` of a DAG `G` is a **clan** iff for all
//! `x, y ∈ C` and `z ∈ G − C`:
//!
//! 1. `z` is an ancestor of `x` iff `z` is an ancestor of `y`, and
//! 2. `z` is a descendant of `x` iff `z` is a descendant of `y`.
//!
//! Equivalently, `C` is a *module* of the three-valued relation
//! (ancestor / descendant / unrelated) induced by the transitive
//! closure: every outside vertex relates to all of `C` in the same
//! way. The strong (non-overlapping) clans form a unique hierarchy —
//! the **parse tree** — whose internal nodes are:
//!
//! * **linear** — children are totally ordered by ancestry and must
//!   execute sequentially;
//! * **independent** — children are pairwise unrelated and may
//!   execute concurrently;
//! * **primitive** — neither; cannot be decomposed into linear and
//!   independent parts at this level.
//!
//! The decomposition here is the classic quotient construction for
//! 2-structures, specialized to partial orders:
//!
//! 1. if the *comparability* graph on the set is disconnected, the
//!    components are the children of an independent clan;
//! 2. otherwise, if the *incomparability* graph is disconnected, its
//!    components are totally ordered (this is a theorem for partial
//!    orders) and form the children of a linear clan;
//! 3. otherwise the clan is primitive and its children are the
//!    maximal proper strong clans, found by closing node pairs under
//!    the module property.
//!
//! Complexity is O(n³)-ish with small constants (bitset rows), which
//! matches the paper's note that "the current version of the parse is
//! O(n³)".
//!
//! ```
//! use dagsched_dag::DagBuilder;
//! use dagsched_clans::{ParseTree, ClanKind};
//!
//! // Figure 16 of the paper: linear( 1, independent( 2, linear(3,4) ), 5 ).
//! let mut b = DagBuilder::new();
//! let n: Vec<_> = [10u64, 20, 30, 40, 50].iter().map(|&w| b.add_node(w)).collect();
//! b.add_edge(n[0], n[1], 4).unwrap();
//! b.add_edge(n[0], n[2], 3).unwrap();
//! b.add_edge(n[2], n[3], 5).unwrap();
//! b.add_edge(n[1], n[4], 4).unwrap();
//! b.add_edge(n[3], n[4], 6).unwrap();
//! let g = b.build().unwrap();
//!
//! let tree = ParseTree::decompose(&g);
//! let root = tree.root().unwrap();
//! assert_eq!(tree.clan(root).kind, ClanKind::Linear);
//! assert_eq!(tree.clan(root).children.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
pub mod quotient;
pub mod tree;
pub mod verify;

pub use quotient::Quotient;
pub use tree::{Clan, ClanId, ClanKind, ParseTree};
