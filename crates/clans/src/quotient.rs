//! Quotient graphs of clans.
//!
//! For an internal clan, the *quotient* contracts each child to one
//! macro-node. Because children are clans (outside vertices relate
//! uniformly to all members), the quotient is well defined: there is
//! an edge between two macro-nodes iff any member edge crosses them,
//! and the natural communication weight is the heaviest such edge.
//! The CLANS scheduler uses quotients to cost primitive clans; they
//! are also the right granularity for visualizing big parse trees.

use crate::tree::{ClanId, ParseTree};
use dagsched_dag::{Dag, DagBuilder, NodeId, Weight};

/// The quotient of `clan`'s children in `tree`.
#[derive(Debug, Clone)]
pub struct Quotient {
    /// The quotient DAG: one node per child of the clan, edges are
    /// the maximal member-to-member edge weights.
    pub graph: Dag,
    /// `children[q]` is the child clan contracted into quotient node
    /// `q`. Quotient node ids follow a topological order of the
    /// children (ascending by earliest member in `g`'s topological
    /// order).
    pub children: Vec<ClanId>,
}

impl Quotient {
    /// Builds the quotient of `clan`, weighting each macro-node with
    /// `node_weight(child)`.
    ///
    /// # Panics
    /// If `clan` is a leaf (leaves have no children to contract).
    pub fn of(
        g: &Dag,
        tree: &ParseTree,
        clan: ClanId,
        mut node_weight: impl FnMut(ClanId) -> Weight,
    ) -> Quotient {
        let c = tree.clan(clan);
        assert!(
            !c.children.is_empty(),
            "leaves have no quotient; asked for {clan}"
        );
        let k = c.children.len();

        // Map members to child slots.
        let mut child_of: Vec<Option<usize>> = vec![None; g.num_nodes()];
        for (i, &ch) in c.children.iter().enumerate() {
            for v in tree.clan(ch).members.iter() {
                child_of[v] = Some(i);
            }
        }

        // Topological order of children via earliest member position.
        let pos = dagsched_dag::topo::positions(g.topo_order(), g.num_nodes());
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&i| {
            tree.clan(c.children[i])
                .members
                .iter()
                .map(|v| pos[v])
                .min()
        });

        let mut qid = vec![0usize; k];
        let mut b = DagBuilder::with_capacity(k, 2 * k);
        let mut children = Vec::with_capacity(k);
        for (q, &i) in order.iter().enumerate() {
            qid[i] = q;
            b.add_node(node_weight(c.children[i]));
            children.push(c.children[i]);
        }

        let mut best: std::collections::HashMap<(usize, usize), Weight> = Default::default();
        for e in g.edges() {
            if let (Some(a), Some(bb)) = (child_of[e.src.index()], child_of[e.dst.index()]) {
                if a != bb {
                    let key = (qid[a], qid[bb]);
                    let w = best.entry(key).or_insert(0);
                    *w = (*w).max(e.weight);
                }
            }
        }
        for ((a, d), w) in best {
            b.add_edge(NodeId(a as u32), NodeId(d as u32), w)
                .expect("contracted edges are unique");
        }
        Quotient {
            graph: b.build().expect("a quotient of a DAG is a DAG"),
            children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ClanKind;
    use dagsched_dag::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn fig16() -> Dag {
        let mut b = DagBuilder::new();
        for w in [10u64, 20, 30, 40, 50] {
            b.add_node(w);
        }
        for (s, d, c) in [(0u32, 1, 5u64), (0, 2, 5), (2, 3, 10), (1, 4, 4), (3, 4, 5)] {
            b.add_edge(n(s), n(d), c).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn root_quotient_of_fig16_is_a_chain() {
        let g = fig16();
        let tree = ParseTree::decompose(&g);
        let root = tree.root().unwrap();
        let q = Quotient::of(&g, &tree, root, |c| tree.clan(c).size() as u64);
        // Root is linear(0, I(1, L(2,3)), 4): three macro nodes in a
        // chain.
        assert_eq!(q.graph.num_nodes(), 3);
        assert_eq!(q.graph.num_edges(), 2);
        assert_eq!(q.graph.sources().len(), 1);
        assert_eq!(q.graph.sinks().len(), 1);
        // Edge weights are the maxima of the crossing edges:
        // node0 → {1,2,3} crosses with weights 5 and 5 → 5;
        // {1,2,3} → node4 crosses with 4 and 5 → 5.
        let ws: Vec<u64> = q.graph.edges().iter().map(|e| e.weight).collect();
        assert_eq!(ws, vec![5, 5]);
        // Node weights from the callback (member counts 1, 3, 1 in
        // topological order).
        assert_eq!(q.graph.node_weights(), &[1, 3, 1]);
    }

    #[test]
    fn quotient_of_independent_clan_is_edgeless() {
        let g = fig16();
        let tree = ParseTree::decompose(&g);
        let root = tree.root().unwrap();
        let ind = tree.clan(root).children[1];
        assert_eq!(tree.clan(ind).kind, ClanKind::Independent);
        let q = Quotient::of(&g, &tree, ind, |_| 1);
        assert_eq!(q.graph.num_nodes(), 2);
        assert_eq!(q.graph.num_edges(), 0);
    }

    #[test]
    fn quotient_children_map_back() {
        let g = fig16();
        let tree = ParseTree::decompose(&g);
        let root = tree.root().unwrap();
        let q = Quotient::of(&g, &tree, root, |_| 1);
        assert_eq!(q.children.len(), 3);
        let sizes: Vec<usize> = q.children.iter().map(|&c| tree.clan(c).size()).collect();
        assert_eq!(sizes, vec![1, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "no quotient")]
    fn leaf_quotient_panics() {
        let g = fig16();
        let tree = ParseTree::decompose(&g);
        let leaf = tree.leaf_of(n(0));
        let _ = Quotient::of(&g, &tree, leaf, |_| 1);
    }
}
