//! Independent verification of parse trees against the paper's clan
//! definition — used by tests, property tests and debug assertions.

use crate::tree::{ClanKind, ParseTree};
use dagsched_dag::bitset::BitSet;
use dagsched_dag::closure::{Closure, Relation};
use dagsched_dag::{Dag, NodeId};

/// Checks the paper's clan definition directly: for every `z` outside
/// `members`, `z` relates (ancestor / descendant / unrelated) the same
/// way to every member.
pub fn is_clan(g: &Dag, closure: &Closure, members: &BitSet) -> bool {
    let mut iter = members.iter();
    let Some(first) = iter.next() else {
        return false; // clans are non-empty
    };
    let rest: Vec<usize> = iter.collect();
    for z in 0..g.num_nodes() {
        if members.contains(z) {
            continue;
        }
        let zref = relation(closure, z, first);
        for &m in &rest {
            if relation(closure, z, m) != zref {
                return false;
            }
        }
    }
    true
}

fn relation(closure: &Closure, a: usize, b: usize) -> Relation {
    closure.relation(NodeId(a as u32), NodeId(b as u32))
}

/// Everything that can go wrong with a parse tree, as reported by
/// [`check_tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeViolation {
    /// A clan's member set fails the clan definition.
    NotAClan(u32),
    /// An internal clan's children do not partition its members.
    BadPartition(u32),
    /// A linear clan whose children are not totally ordered earliest
    /// to latest (some cross-pair is not ancestor → descendant).
    LinearNotOrdered(u32),
    /// An independent clan with a comparable cross-pair.
    IndependentNotParallel(u32),
    /// A leaf clan that is not a single graph node, or an internal
    /// clan with fewer than two children.
    Malformed(u32),
    /// The root does not cover all graph nodes, or a node's leaf
    /// pointer is wrong.
    BadCover,
}

/// Validates every structural invariant of `tree` against `g`.
/// Returns all violations (empty = valid).
pub fn check_tree(g: &Dag, tree: &ParseTree) -> Vec<TreeViolation> {
    let mut violations = Vec::new();
    let closure = g.closure();

    match tree.root() {
        None => {
            if g.num_nodes() != 0 {
                violations.push(TreeViolation::BadCover);
            }
            return violations;
        }
        Some(root) => {
            if tree.clan(root).size() != g.num_nodes() {
                violations.push(TreeViolation::BadCover);
            }
        }
    }

    for v in g.nodes() {
        if tree.clan(tree.leaf_of(v)).node != Some(v) {
            violations.push(TreeViolation::BadCover);
            break;
        }
    }

    for id in tree.clan_ids() {
        let c = tree.clan(id);
        if !is_clan(g, closure, &c.members) {
            violations.push(TreeViolation::NotAClan(id.0));
        }
        match c.kind {
            ClanKind::Leaf => {
                if c.size() != 1 || c.node.is_none() || !c.children.is_empty() {
                    violations.push(TreeViolation::Malformed(id.0));
                }
            }
            kind => {
                if c.children.len() < 2 || c.node.is_some() {
                    violations.push(TreeViolation::Malformed(id.0));
                    continue;
                }
                // Children partition the members.
                let mut union = BitSet::new(g.num_nodes());
                let mut disjoint = true;
                for &ch in &c.children {
                    let m = &tree.clan(ch).members;
                    if union.intersects(m) {
                        disjoint = false;
                    }
                    union.union_with(m);
                }
                if !disjoint || union != c.members {
                    violations.push(TreeViolation::BadPartition(id.0));
                }
                match kind {
                    ClanKind::Linear if !linear_children_ordered(tree, closure, id.0) => {
                        violations.push(TreeViolation::LinearNotOrdered(id.0));
                    }
                    ClanKind::Independent
                        if !independent_children_parallel(tree, closure, id.0) =>
                    {
                        violations.push(TreeViolation::IndependentNotParallel(id.0));
                    }
                    _ => {}
                }
            }
        }
    }
    violations
}

fn linear_children_ordered(tree: &ParseTree, closure: &Closure, id: u32) -> bool {
    let c = tree.clan(crate::tree::ClanId(id));
    for (i, &a) in c.children.iter().enumerate() {
        for &b in &c.children[i + 1..] {
            let am: Vec<usize> = tree.clan(a).members.iter().collect();
            let bm: Vec<usize> = tree.clan(b).members.iter().collect();
            for &x in &am {
                for &y in &bm {
                    if relation(closure, x, y) != Relation::Ancestor {
                        return false;
                    }
                }
            }
        }
    }
    true
}

fn independent_children_parallel(tree: &ParseTree, closure: &Closure, id: u32) -> bool {
    let c = tree.clan(crate::tree::ClanId(id));
    for (i, &a) in c.children.iter().enumerate() {
        for &b in &c.children[i + 1..] {
            let am: Vec<usize> = tree.clan(a).members.iter().collect();
            let bm: Vec<usize> = tree.clan(b).members.iter().collect();
            for &x in &am {
                for &y in &bm {
                    if relation(closure, x, y) != Relation::Unrelated {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_dag::DagBuilder;

    fn build(edges: &[(u32, u32)], nodes: u32) -> Dag {
        let mut b = DagBuilder::new();
        for _ in 0..nodes {
            b.add_node(1);
        }
        for &(s, d) in edges {
            b.add_edge(NodeId(s), NodeId(d), 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn fig16_tree_is_valid() {
        let g = build(&[(0, 1), (0, 2), (2, 3), (1, 4), (3, 4)], 5);
        let tree = ParseTree::decompose(&g);
        assert_eq!(check_tree(&g, &tree), Vec::new());
    }

    #[test]
    fn primitive_tree_is_valid() {
        let g = build(&[(0, 2), (1, 2), (1, 3)], 4);
        let tree = ParseTree::decompose(&g);
        assert_eq!(check_tree(&g, &tree), Vec::new());
    }

    #[test]
    fn is_clan_accepts_and_rejects() {
        let g = build(&[(0, 1), (0, 2), (2, 3), (1, 4), (3, 4)], 5);
        let closure = Closure::new(&g);
        let clan = BitSet::from_iter_with_len(5, [2usize, 3]);
        assert!(is_clan(&g, &closure, &clan));
        let whole = BitSet::full(5);
        assert!(is_clan(&g, &closure, &whole));
        let single = BitSet::from_iter_with_len(5, [1usize]);
        assert!(is_clan(&g, &closure, &single));
        // {1, 2} is not a clan: node 3 descends from 2 but not from 1.
        let not = BitSet::from_iter_with_len(5, [1usize, 2]);
        assert!(!is_clan(&g, &closure, &not));
        // The empty set is not a clan by convention.
        assert!(!is_clan(&g, &closure, &BitSet::new(5)));
    }

    #[test]
    fn empty_graph_tree_checks_out() {
        let g = DagBuilder::new().build().unwrap();
        let tree = ParseTree::decompose(&g);
        assert!(check_tree(&g, &tree).is_empty());
    }

    #[test]
    fn every_family_produces_valid_trees() {
        let families: Vec<Dag> = vec![
            build(&[], 1),
            build(&[], 6),
            build(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5),
            build(&[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)], 5),
            build(&[(0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (0, 5)], 6),
            build(&[(0, 4), (4, 2), (1, 2), (1, 3)], 5),
        ];
        for g in families {
            let tree = ParseTree::decompose(&g);
            assert_eq!(check_tree(&g, &tree), Vec::new(), "graph {:?}", g);
        }
    }
}
