//! Crash/kill/restart tests against the real `dagsched-server`
//! binary, in the style of the repo's `tests/resume.rs`: a daemon
//! killed with SIGKILL must lose nothing it already journaled — the
//! restarted process warm-starts its cache from disk and serves the
//! same bits as a hit — and SIGTERM must drain and exit zero.
#![cfg(unix)]

use dagsched_obs::Json;
use dagsched_server::client::{encode_schedule_request, submit};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SAMPLE: &str = "\
nodes 4
node 0 10
node 1 20
node 2 30
node 3 10
edge 0 1 5
edge 0 2 5
edge 1 3 2
edge 2 3 2
";

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dagsched-restart-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Starts the daemon on an ephemeral port and blocks until it prints
/// its readiness line; returns the child and the bound address.
fn spawn_server(cache_dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dagsched-server"))
        .args(["--addr", "127.0.0.1:0", "--cache-dir"])
        .arg(cache_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("readiness line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on the readiness line")
        .to_string();
    assert!(line.contains("listening on"), "unexpected banner: {line}");
    (child, addr)
}

/// `submit` with a short retry loop: right after a restart the
/// listener can briefly refuse connections.
fn submit_retrying(addr: &str, line: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match submit(addr, line) {
            Ok(response) => return response,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("server never answered: {e}"),
        }
    }
}

fn placements_of(response: &str) -> Vec<(u64, u64)> {
    Json::parse(response)
        .expect("response is JSON")
        .get("placements")
        .and_then(Json::as_arr)
        .expect("placements array")
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().expect("placement pair");
            (pair[0].as_u64().unwrap(), pair[1].as_u64().unwrap())
        })
        .collect()
}

#[test]
fn sigkilled_server_restarts_with_a_warm_cache_and_sigterm_drains() {
    let dir = tmp("warm");
    let request = encode_schedule_request(SAMPLE, "DSC", "uniform", None, None);

    // First life: compute once (journaled), prove it was a miss.
    let (mut child, addr) = spawn_server(&dir);
    let first = submit_retrying(&addr, &request);
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    assert!(first.contains("\"cached\":false"), "{first}");
    let computed = placements_of(&first);

    // SIGKILL: no drain, no flush hook — only the journal survives.
    child.kill().expect("SIGKILL delivered");
    child.wait().expect("killed child reaped");

    // Second life: the answer comes from the warm-started cache and
    // is bit-identical to the computed one.
    let (mut child, addr) = spawn_server(&dir);
    let hit = submit_retrying(&addr, &request);
    assert!(
        hit.contains("\"cached\":true"),
        "warm start served a hit: {hit}"
    );
    assert_eq!(placements_of(&hit), computed);

    // New work after the resume still lands in the journal…
    let other = encode_schedule_request(SAMPLE, "HU", "uniform", None, None);
    assert!(submit_retrying(&addr, &other).contains("\"cached\":false"));

    // …and SIGTERM drains cleanly: exit code 0, journal intact.
    #[allow(unsafe_code)]
    let delivered = unsafe { libc::kill(child.id() as libc::pid_t, libc::SIGTERM) };
    assert_eq!(delivered, 0, "SIGTERM delivered");
    let status = child.wait().expect("drained child reaped");
    assert!(status.success(), "drain exits zero, got {status:?}");

    // Third life: both entries survive the full kill/drain history.
    let (mut child, addr) = spawn_server(&dir);
    assert!(submit_retrying(&addr, &request).contains("\"cached\":true"));
    assert!(submit_retrying(&addr, &other).contains("\"cached\":true"));
    child.kill().ok();
    child.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}
