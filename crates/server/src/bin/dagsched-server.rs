//! The `dagsched-server` daemon binary.
//!
//! Binds, prints the bound address (tests and scripts wait for that
//! line), then idles while connection threads do the work. SIGTERM —
//! or a protocol `shutdown` request — triggers the drain: stop
//! accepting, finish in-flight requests, flush the cache journal. A
//! journal flush failure exits nonzero so supervisors notice lost
//! durability instead of a silent clean-looking exit.

use dagsched_server::server::{start, ServerConfig};
use dagsched_server::signal::{install_sigterm_hook, sigterm_received};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
dagsched-server: the scheduling daemon (see docs/SERVICE.md)

USAGE:
    dagsched-server [OPTIONS]

OPTIONS:
    --addr ADDR            bind address [default: 127.0.0.1:7411]
    --workers N            concurrent scheduling computations [default: 4]
    --queue N              admission queue depth before shedding [default: 16]
    --budget MS            default per-request budget in ms, 0 disables
                           [default: 5000]
    --cache-capacity N     in-memory schedule cache entries [default: 1024]
    --cache-dir DIR        journal the cache to DIR/cache.jsonl and
                           warm-start from it on restart
    --chaos                also register the CHAOS-* fixture heuristics
                           (testing only)
    --slow-threshold MS    keep requests at least this slow as span-tree
                           exemplars in `stats` responses [default: 100]
    --slow-exemplars N     worst exemplars retained, 0 disables
                           [default: 8]
    -h, --help             print this help
";

fn parse_args(args: &[String]) -> Result<Option<ServerConfig>, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7411".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--addr" => config.addr = value("--addr")?.to_string(),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue needs an integer".to_string())?;
            }
            "--budget" => {
                let ms: u64 = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget needs an integer (milliseconds)".to_string())?;
                config.default_budget = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--cache-capacity" => {
                config.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity needs an integer".to_string())?;
            }
            "--cache-dir" => config.cache_dir = Some(value("--cache-dir")?.into()),
            "--chaos" => config.chaos = true,
            "--slow-threshold" => {
                let ms: u64 = value("--slow-threshold")?
                    .parse()
                    .map_err(|_| "--slow-threshold needs an integer (milliseconds)".to_string())?;
                config.slow_threshold = Duration::from_millis(ms);
            }
            "--slow-exemplars" => {
                config.slow_exemplars = value("--slow-exemplars")?
                    .parse()
                    .map_err(|_| "--slow-exemplars needs an integer".to_string())?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("dagsched-server: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    install_sigterm_hook();
    let handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("dagsched-server: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts and tests block on this exact line for readiness.
    println!("dagsched-server listening on {}", handle.local_addr());
    let _ = std::io::stdout().flush();

    while !sigterm_received() && !handle.stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("dagsched-server: draining");
    match handle.shutdown() {
        Ok(()) => {
            eprintln!("dagsched-server: drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dagsched-server: shutdown lost data: {e}");
            ExitCode::FAILURE
        }
    }
}
