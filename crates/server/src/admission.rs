//! Admission control: a bounded worker pool with a bounded wait queue.
//!
//! Scheduling work is CPU-bound, so the server caps concurrent
//! computations at a fixed number of *worker slots*. Requests beyond
//! that wait in a bounded queue; requests beyond the queue are **shed**
//! immediately (a 429-style `overloaded` response) instead of growing
//! an unbounded backlog — under sustained overload the server's memory
//! and tail latency stay flat and callers get an honest signal to back
//! off. Cache hits bypass admission entirely (they do no scheduling
//! work), so a hot working set keeps answering even while the compute
//! slots are saturated.

use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct AdmissionState {
    /// Computations currently holding a worker slot.
    active: usize,
    /// Admitted requests waiting for a slot.
    waiting: usize,
}

/// The admission gate. [`Admission::try_admit`] either returns a
/// [`Permit`] (possibly after queueing) or `None` (shed).
#[derive(Debug)]
pub struct Admission {
    state: Mutex<AdmissionState>,
    freed: Condvar,
    workers: usize,
    queue_capacity: usize,
}

impl Admission {
    /// A gate with `workers` concurrent slots and room for
    /// `queue_capacity` waiters. Both are clamped to at least 1 slot /
    /// 0 waiters.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        Admission {
            state: Mutex::new(AdmissionState::default()),
            freed: Condvar::new(),
            workers: workers.max(1),
            queue_capacity,
        }
    }

    /// Admits the caller, blocking in the wait queue if every worker
    /// slot is busy. Returns `None` — *without blocking* — when the
    /// queue is already full: the request must be shed.
    pub fn try_admit(&self) -> Option<Permit<'_>> {
        self.try_admit_hooked(|| {})
    }

    /// The admission path with a wake hook: `on_wake` runs after every
    /// condvar wakeup while the caller still occupies a queue slot.
    /// Tests use it to unwind a waiter at exactly the point the
    /// pre-guard code leaked its `waiting` slot.
    fn try_admit_hooked(&self, mut on_wake: impl FnMut()) -> Option<Permit<'_>> {
        // Declared before the lock guard so that on unwind the mutex
        // guard drops first and `Unqueue::drop` can safely re-lock.
        let mut unqueue = Unqueue {
            gate: self,
            armed: false,
        };
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if st.active < self.workers {
            st.active += 1;
            return Some(Permit { gate: self });
        }
        if st.waiting >= self.queue_capacity {
            return None;
        }
        st.waiting += 1;
        unqueue.armed = true;
        while st.active >= self.workers {
            st = self
                .freed
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            on_wake();
        }
        st.waiting -= 1;
        st.active += 1;
        unqueue.armed = false;
        Some(Permit { gate: self })
    }

    /// Currently admitted computations (for gauges/tests).
    pub fn active(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .active
    }

    /// Requests currently parked in the wait queue (for gauges/tests).
    pub fn waiting(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .waiting
    }
}

/// Unwind guard for a queued waiter: if the waiting thread panics
/// while parked on the condvar (or in any code run while queued), the
/// queue slot it occupies must be handed back — otherwise `waiting`
/// stays incremented forever and the queue capacity shrinks
/// permanently. Disarmed on the normal path, where the slot is
/// released under the already-held lock.
struct Unqueue<'a> {
    gate: &'a Admission,
    armed: bool,
}

impl Drop for Unqueue<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = self
            .gate
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        st.waiting -= 1;
        drop(st);
        // The wakeup that roused this waiter is consumed; pass it on so
        // another queued waiter (if any) can claim the freed slot.
        self.gate.freed.notify_one();
    }
}

/// An admitted computation's slot; dropping it frees the slot and
/// wakes one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self
            .gate
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        st.active -= 1;
        drop(st);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn admits_up_to_workers_then_queues_then_sheds() {
        let gate = Arc::new(Admission::new(1, 1));
        let holder = gate.try_admit().expect("first request takes the slot");
        assert_eq!(gate.active(), 1);

        // One more fits in the queue; launched on a thread because it
        // blocks until the holder releases. The queued thread needs
        // time to actually enqueue before the shed probe below.
        let queued = {
            let gate2: Arc<Admission> = Arc::clone(&gate);
            std::thread::spawn(move || gate2.try_admit().is_some())
        };
        std::thread::sleep(Duration::from_millis(50));

        // Queue is now full: the third request is shed immediately.
        assert!(gate.try_admit().is_none(), "third request must shed");

        drop(holder);
        assert!(queued.join().unwrap(), "queued request runs after release");
    }

    #[test]
    fn a_panicking_queued_waiter_returns_its_queue_slot() {
        let gate = Arc::new(Admission::new(1, 1));
        let holder = gate.try_admit().expect("first request takes the slot");

        // A waiter enqueues, then unwinds the moment it is woken —
        // standing in for a thread that panics during the condvar wait.
        let panicker = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _ = gate.try_admit_hooked(|| panic!("injected panic while queued"));
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(gate.waiting(), 1, "waiter is parked in the queue");

        drop(holder); // wakes the waiter, which panics mid-queue
        assert!(panicker.join().is_err(), "waiter unwound as intended");
        assert_eq!(gate.waiting(), 0, "unwound waiter gave its slot back");

        // The queue capacity is genuinely usable again: take the
        // worker slot, then verify a new request queues rather than
        // shedding. Pre-fix, the leaked slot shed it immediately.
        let holder = gate.try_admit().expect("slot is free again");
        let queued = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.try_admit().is_some())
        };
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(gate.waiting(), 1, "fresh waiter fits in the queue");
        drop(holder);
        assert!(queued.join().unwrap(), "fresh waiter was admitted");
    }

    #[test]
    fn concurrency_never_exceeds_the_worker_cap() {
        let gate = Arc::new(Admission::new(3, 64));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..24)
            .map(|_| {
                let (gate, running, peak) =
                    (Arc::clone(&gate), Arc::clone(&running), Arc::clone(&peak));
                std::thread::spawn(move || {
                    let _permit = gate.try_admit().expect("queue is large enough");
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    running.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "cap respected");
        assert_eq!(gate.active(), 0, "every permit was released");
    }
}
