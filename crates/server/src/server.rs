//! The daemon proper: accept loop, per-connection request handling,
//! single-flight coalescing, and the drain/shutdown path.
//!
//! Threading model: one nonblocking accept loop thread spawns one
//! thread per connection; each connection handles its requests
//! serially (one response line per request line, in order). CPU-bound
//! scheduling work is bounded by [`Admission`] regardless of how many
//! connections are open, and identical concurrent requests coalesce
//! onto a single computation, so the worst adversarial client mix
//! costs bounded compute and bounded queueing — everyone else is shed
//! with an honest `overloaded` answer.

use crate::admission::Admission;
use crate::cache::{CachedSchedule, ScheduleCache};
use crate::proto::{self, code, Request, ScheduleAnswer, ScheduleRequest};
use dagsched_core::{all_heuristics, parse_machine, schedule_cache_key, Scheduler};
use dagsched_dag::{textio, Dag, NodeId};
use dagsched_experiments::checkpoint::StoredIncident;
use dagsched_harness::{GraphFingerprint, HarnessConfig, RobustScheduler};
use dagsched_obs as obs;
use dagsched_sim::{metrics, Machine, ProcId, Schedule};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the daemon is provisioned. [`ServerConfig::default`] matches
/// the binary's flag defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is available from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Concurrent scheduling computations ([`Admission`] slots).
    pub workers: usize,
    /// Requests allowed to wait for a slot before shedding starts.
    pub queue_capacity: usize,
    /// Per-request wall-clock budget when the request names none.
    /// `None` disables the default deadline.
    pub default_budget: Option<Duration>,
    /// Schedule cache entries kept in memory.
    pub cache_capacity: usize,
    /// Directory for the cache journal; `None` keeps the cache
    /// memory-only (no warm-start across restarts).
    pub cache_dir: Option<PathBuf>,
    /// Also register the harness chaos fixtures (`CHAOS-PANIC`,
    /// `CHAOS-INVALID`, `CHAOS-SLEEPY`) so tests and demos can request
    /// misbehaving heuristics through the front door.
    pub chaos: bool,
    /// Requests at least this slow are kept as slow-request exemplars
    /// (their span trees appear in `stats` responses).
    pub slow_threshold: Duration,
    /// How many of the worst exemplars to retain.
    pub slow_exemplars: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 16,
            default_budget: Some(Duration::from_secs(5)),
            cache_capacity: 1024,
            cache_dir: None,
            chaos: false,
            slow_threshold: Duration::from_millis(100),
            slow_exemplars: 8,
        }
    }
}

/// How long the chaos `CHAOS-SLEEPY` fixture sleeps — long enough that
/// any test budget under it forces the deadline-degradation path.
const CHAOS_SLEEP: Duration = Duration::from_millis(250);

/// Accept-loop poll interval; also bounds how stale a drain check on an
/// idle connection can be.
const POLL: Duration = Duration::from_millis(25);

/// Read timeout on connection sockets, so idle connections notice a
/// drain promptly without busy-waiting.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// What a coalesced follower learns from its leader.
#[derive(Clone)]
enum FlightOutcome {
    /// The leader computed (and cached) an answer.
    Answer(Arc<CachedSchedule>),
    /// The leader was shed by admission control.
    Overloaded,
    /// The leader hit an internal error.
    Failed(Arc<str>),
}

/// A single-flight rendezvous: the first request for a key computes,
/// concurrent duplicates wait here for the outcome.
struct InFlight {
    slot: Mutex<Option<FlightOutcome>>,
    done: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn resolve(&self, outcome: FlightOutcome) {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }

    /// Waits for the leader; `None` when the server starts draining
    /// before the outcome lands (the follower answers `shutting-down`
    /// instead of hanging a drain forever).
    fn wait(&self, stop: &AtomicBool) -> Option<FlightOutcome> {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _timeout) = self
                .done
                .wait_timeout(slot, READ_TIMEOUT)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slot = guard;
        }
    }
}

/// State shared by every connection thread.
struct Shared {
    registry: HashMap<&'static str, Arc<dyn Scheduler>>,
    admission: Admission,
    cache: ScheduleCache,
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
    stats: Mutex<obs::RunStats>,
    /// Worst-latency request exemplars, worst first, capped at
    /// `slow_exemplars`.
    slow: Mutex<Vec<proto::SlowExemplar>>,
    slow_threshold: Duration,
    slow_exemplars: usize,
    /// Source of per-request `trace_id`s (`t-{:016x}`).
    trace_seq: AtomicU64,
    default_budget: Option<Duration>,
    stop: Arc<AtomicBool>,
}

fn build_registry(chaos: bool) -> HashMap<&'static str, Arc<dyn Scheduler>> {
    let mut registry: HashMap<&'static str, Arc<dyn Scheduler>> = HashMap::new();
    for h in all_heuristics() {
        let h: Arc<dyn Scheduler> = Arc::from(h);
        registry.insert(h.name(), h);
    }
    // The exact branch-and-bound anchor is addressable by name but
    // deliberately not part of `all_heuristics()`: it is a reference
    // solver, not a competitor, and on graphs past its node cap it
    // falls back to the best of MCP/HU/HLFET internally.
    let exact: Arc<dyn Scheduler> = Arc::new(dagsched_exact::ExactScheduler::default());
    registry.insert(exact.name(), exact);
    if chaos {
        use dagsched_harness::chaos::{InvalidScheduler, PanicScheduler, SleepyScheduler};
        for h in [
            Arc::new(PanicScheduler) as Arc<dyn Scheduler>,
            Arc::new(InvalidScheduler),
            Arc::new(SleepyScheduler { delay: CHAOS_SLEEP }),
        ] {
            registry.insert(h.name(), h);
        }
    }
    registry
}

/// A running server. Dropping the handle does *not* stop the daemon;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a drain has been requested (via [`ServerHandle::shutdown`]
    /// or a protocol `shutdown` request).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Drains and stops the server: no new connections or schedule
    /// requests are accepted, in-flight requests finish, connection
    /// threads are joined, and the cache journal is flushed and
    /// closed. A journal flush failure (or an accept-loop I/O error)
    /// is returned — the binary exits nonzero on it.
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        self.accept_thread
            .join()
            .map_err(|_| io::Error::other("server accept thread panicked"))?
    }
}

/// Binds and starts a server. Returns once the listener is accepting.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let cache = match &config.cache_dir {
        Some(dir) => {
            let (cache, loaded) = ScheduleCache::with_disk(config.cache_capacity, dir)?;
            if loaded > 0 {
                eprintln!("dagsched-server: warm-started {loaded} cache entries from {dir:?}");
            }
            cache
        }
        None => ScheduleCache::in_memory(config.cache_capacity),
    };

    let stop = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        registry: build_registry(config.chaos),
        admission: Admission::new(config.workers, config.queue_capacity),
        cache,
        inflight: Mutex::new(HashMap::new()),
        stats: Mutex::new(obs::RunStats::default()),
        slow: Mutex::new(Vec::new()),
        slow_threshold: config.slow_threshold,
        slow_exemplars: config.slow_exemplars,
        trace_seq: AtomicU64::new(0),
        default_budget: config.default_budget,
        stop: Arc::clone(&stop),
    });

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || accept_loop(listener, shared, accept_stop));

    Ok(ServerHandle {
        local_addr,
        stop,
        accept_thread,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                connections.push(std::thread::spawn(move || {
                    serve_connection(stream, &shared)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // Transient accept errors (e.g. a reset mid-handshake)
                // must not kill the daemon.
                eprintln!("dagsched-server: accept error: {e}");
                std::thread::sleep(POLL);
            }
        }
        connections.retain(|h| !h.is_finished());
    }
    // Drain: every connection thread observes the stop flag within one
    // read timeout and exits once its current request completes.
    for h in connections {
        let _ = h.join();
    }
    match Arc::try_unwrap(shared) {
        Ok(shared) => shared.cache.close(),
        // Unreachable once every connection is joined, but never
        // panic the drain path over it.
        Err(_) => Ok(()),
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            // EOF. A final unterminated line still gets a response.
            Ok(0) => {
                if !buf.is_empty() {
                    let line = String::from_utf8_lossy(&buf).into_owned();
                    let _ = handle_line(line.trim_end_matches(['\n', '\r']), shared, &mut writer);
                }
                return;
            }
            Ok(_) => {
                if buf.last() != Some(&b'\n') {
                    continue; // partial line before EOF; next read settles it
                }
                let line = String::from_utf8_lossy(&buf).into_owned();
                let line = line.trim_end_matches(['\n', '\r']);
                if !line.is_empty() && handle_line(line, shared, &mut writer).is_err() {
                    return;
                }
                buf.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line: dispatch, write the response line, and
/// fold the request's instrumentation into the server-wide stats.
/// Every request runs under its own collector scope with a fresh
/// `trace_id`; requests slower than the configured threshold leave
/// their span tree in the slow-request exemplar buffer.
fn handle_line(line: &str, shared: &Arc<Shared>, writer: &mut TcpStream) -> io::Result<()> {
    let trace_id = format!(
        "t-{:016x}",
        shared.trace_seq.fetch_add(1, Ordering::Relaxed) + 1
    );
    let scope = obs::run_scope();
    let started = Instant::now();
    obs::counter_add("server.requests.total", 1);
    let (kind, response) = {
        let _request_span = obs::span!("server.request");
        match proto::parse_request(line) {
            Err(e) => {
                obs::counter_add("server.requests.error", 1);
                (
                    "malformed".to_string(),
                    proto::error_response(None, e.code, &e.message),
                )
            }
            Ok(Request::Ping { id }) => ("ping".to_string(), proto::pong_response(id.as_deref())),
            Ok(Request::Stats { id }) => {
                let stats = shared
                    .stats
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                let slow = shared
                    .slow
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                (
                    "stats".to_string(),
                    proto::stats_response(id.as_deref(), &stats, &slow),
                )
            }
            Ok(Request::Metrics { id }) => {
                let page = {
                    let stats = shared
                        .stats
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    obs::render_prometheus(&stats, "")
                };
                (
                    "metrics".to_string(),
                    proto::metrics_response(id.as_deref(), &page),
                )
            }
            Ok(Request::Shutdown { id }) => {
                shared.stop.store(true, Ordering::SeqCst);
                ("shutdown".to_string(), proto::shutdown_ack(id.as_deref()))
            }
            Ok(Request::Schedule(req)) => (
                format!("schedule {}", req.heuristic),
                handle_schedule(&req, shared, &trace_id),
            ),
        }
    };
    let latency = started.elapsed();
    obs::hist_record("server.latency_ms", latency.as_millis() as u64);
    let stats = scope.finish();
    if latency >= shared.slow_threshold && shared.slow_exemplars > 0 {
        let mut slow = shared
            .slow
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        slow.push(proto::SlowExemplar {
            trace_id: trace_id.clone(),
            kind,
            latency_us: latency.as_micros() as u64,
            stats: stats.clone(),
        });
        slow.sort_by_key(|e| std::cmp::Reverse(e.latency_us));
        slow.truncate(shared.slow_exemplars);
    }
    shared
        .stats
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .merge(&stats);

    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn reject(id: Option<&str>, code: &str, message: &str) -> String {
    obs::counter_add("server.requests.error", 1);
    proto::error_response(id, code, message)
}

fn handle_schedule(req: &ScheduleRequest, shared: &Shared, trace_id: &str) -> String {
    let id = req.id.as_deref();
    obs::counter_add("server.requests.schedule", 1);
    if shared.stop.load(Ordering::SeqCst) {
        return reject(
            id,
            code::SHUTTING_DOWN,
            "server is draining, not accepting work",
        );
    }
    let Some(heuristic) = shared.registry.get(req.heuristic.as_str()) else {
        let mut known: Vec<&str> = shared.registry.keys().copied().collect();
        known.sort_unstable();
        return reject(
            id,
            code::UNKNOWN_HEURISTIC,
            &format!(
                "unknown heuristic {:?}; known: {}",
                req.heuristic,
                known.join(" ")
            ),
        );
    };
    let machine: Arc<dyn Machine> = match parse_machine(&req.machine) {
        Ok(m) => Arc::from(m),
        Err(e) => return reject(id, code::UNKNOWN_MACHINE, &e.to_string()),
    };
    let g = match textio::parse(&req.graph) {
        Ok(g) => g,
        Err(e) => return reject(id, code::PARSE_ERROR, &e.to_string()),
    };
    let digest = GraphFingerprint::of(&g).digest;
    let fingerprint = format!("{digest:#018x}");
    let key = schedule_cache_key(digest, &req.machine, &req.heuristic);

    // Tier 0: the cache. Hits bypass admission entirely.
    let first_lookup = {
        let _span = obs::span!("server.cache.lookup");
        shared.cache.get(&key)
    };
    if let Some(hit) = first_lookup {
        obs::counter_add("server.cache.hit", 1);
        return respond(req, &g, &fingerprint, &hit, true, trace_id);
    }
    obs::counter_add("server.cache.miss", 1);

    // Single-flight: exactly one request per key computes; concurrent
    // duplicates wait for its outcome.
    let (flight, leader) = {
        let mut inflight = shared
            .inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match inflight.get(&key) {
            Some(f) => (Arc::clone(f), false),
            None => {
                let f = Arc::new(InFlight::new());
                inflight.insert(key.clone(), Arc::clone(&f));
                (f, true)
            }
        }
    };
    if !leader {
        obs::counter_add("server.requests.coalesced", 1);
        return match flight.wait(&shared.stop) {
            Some(FlightOutcome::Answer(answer)) => {
                respond(req, &g, &fingerprint, &answer, true, trace_id)
            }
            Some(FlightOutcome::Overloaded) => {
                obs::counter_add("server.requests.overloaded", 1);
                proto::overloaded_response(id)
            }
            Some(FlightOutcome::Failed(message)) => reject(id, code::INTERNAL, &message),
            None => reject(
                id,
                code::SHUTTING_DOWN,
                "server started draining while the request was coalesced",
            ),
        };
    }

    // Double-check as leader: the key may have been computed and
    // cached between our cache miss and our registration.
    let second_lookup = {
        let _span = obs::span!("server.cache.lookup");
        shared.cache.get(&key)
    };
    if let Some(hit) = second_lookup {
        obs::counter_add("server.cache.hit", 1);
        shared
            .inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .remove(&key);
        flight.resolve(FlightOutcome::Answer(Arc::clone(&hit)));
        return respond(req, &g, &fingerprint, &hit, true, trace_id);
    }

    let outcome = compute(req, &g, &machine, heuristic, &key, shared);
    shared
        .inflight
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .remove(&key);
    flight.resolve(outcome.clone());
    match outcome {
        FlightOutcome::Answer(answer) => respond(req, &g, &fingerprint, &answer, false, trace_id),
        FlightOutcome::Overloaded => {
            obs::counter_add("server.requests.overloaded", 1);
            proto::overloaded_response(id)
        }
        FlightOutcome::Failed(message) => reject(id, code::INTERNAL, &message),
    }
}

/// Runs the admitted computation through the harness. Infallible by
/// construction: every failure mode maps to a [`FlightOutcome`].
fn compute(
    req: &ScheduleRequest,
    g: &Dag,
    machine: &Arc<dyn Machine>,
    heuristic: &Arc<dyn Scheduler>,
    key: &str,
    shared: &Shared,
) -> FlightOutcome {
    let admitted = {
        let _span = obs::span!("server.admission");
        shared.admission.try_admit()
    };
    let Some(_permit) = admitted else {
        obs::counter_add("server.shed", 1);
        return FlightOutcome::Overloaded;
    };
    let budget = req
        .budget_ms
        .map(Duration::from_millis)
        .or(shared.default_budget);
    let robust = RobustScheduler::new(Arc::clone(heuristic)).with_config(HarnessConfig {
        time_budget: budget,
        validate: true,
    });
    let _compute_span = obs::span!("server.compute");
    // Belt over the harness's own suspenders: even a bug in the
    // containment layer answers as a structured internal error instead
    // of killing the connection thread (and stranding followers).
    let outcome = match catch_unwind(AssertUnwindSafe(|| robust.run(g, machine))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            obs::counter_add("server.requests.escaped_panics", 1);
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            return FlightOutcome::Failed(Arc::from(
                format!("panic escaped the containment harness: {what}").as_str(),
            ));
        }
    };
    if outcome.scheduled_by != req.heuristic {
        obs::counter_add("server.fallback.requests", 1);
        if outcome.scheduled_by == dagsched_harness::SERIAL_PLACEMENT {
            obs::counter_add("server.fallback.serial_placement", 1);
        }
    }
    let placements = (0..g.num_nodes())
        .map(|v| {
            let p = outcome.schedule.placement(NodeId(v as u32));
            (p.proc.0, p.start)
        })
        .collect();
    let cached = CachedSchedule {
        scheduled_by: outcome.scheduled_by.to_string(),
        placements,
        incidents: outcome.incidents.iter().map(StoredIncident::of).collect(),
    };
    if let Err(e) = shared.cache.insert(key, cached.clone()) {
        // The answer is still good; only its crash durability is lost.
        obs::counter_add("server.cache.disk_errors", 1);
        eprintln!("dagsched-server: cache journal append failed: {e}");
    }
    FlightOutcome::Answer(Arc::new(cached))
}

/// Rebuilds the full schedule from the cached raw placements and
/// encodes the response. Used by all three serving paths (fresh
/// computation, cache hit, coalesced follower), so cache hits are
/// bit-identical to misses.
fn respond(
    req: &ScheduleRequest,
    g: &Dag,
    fingerprint: &str,
    cached: &CachedSchedule,
    was_cached: bool,
    trace_id: &str,
) -> String {
    let id = req.id.as_deref();
    if cached.placements.len() != g.num_nodes() {
        // Only reachable through a fingerprint collision or a corrupt
        // journal entry; answer structurally rather than panicking.
        return reject(
            id,
            code::INTERNAL,
            &format!(
                "cached schedule covers {} tasks, graph has {}",
                cached.placements.len(),
                g.num_nodes()
            ),
        );
    }
    let raw = cached
        .placements
        .iter()
        .map(|&(p, start)| (ProcId(p), start))
        .collect();
    let schedule = Schedule::new(g, raw);
    let m = metrics::measures(g, &schedule);
    let answer = ScheduleAnswer {
        heuristic: req.heuristic.clone(),
        machine: req.machine.clone(),
        scheduled_by: cached.scheduled_by.clone(),
        tier: ScheduleAnswer::tier_of(&req.heuristic, &cached.scheduled_by),
        cached: was_cached,
        fingerprint: fingerprint.to_string(),
        makespan: m.parallel_time,
        procs: m.procs,
        speedup: m.speedup,
        efficiency: m.efficiency,
        placements: cached.placements.clone(),
        incidents: cached
            .incidents
            .iter()
            .map(|i| (i.kind.clone(), i.summary.clone()))
            .collect(),
        trace_id: trace_id.to_string(),
    };
    obs::counter_add("server.requests.ok", 1);
    proto::ok_response(id, &answer)
}
