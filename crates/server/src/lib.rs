//! `dagsched-server`: the scheduling daemon.
//!
//! A long-running service that accepts scheduling requests — a graph
//! in the repo's plain-text format, a heuristic name and a `--machine`
//! spec — over line-delimited JSON on TCP and answers with the
//! schedule, its measures and the *tier* that produced it. The daemon
//! is built from the workspace's robustness layers:
//!
//! * every computation runs inside the harness's supervised pool
//!   ([`dagsched_harness::RobustScheduler`]), so a panicking, runaway
//!   or invalid heuristic yields a structured degraded answer, never a
//!   dead daemon;
//! * [`admission`] bounds concurrent work and the wait queue, shedding
//!   excess load with an explicit `overloaded` response;
//! * [`cache`] serves repeat queries from a fingerprint×machine-spec
//!   keyed LRU, optionally journaled to disk in the checkpoint record
//!   format so a restarted server warm-starts — `SIGKILL` included;
//! * concurrent identical requests coalesce onto one computation
//!   (single-flight) instead of stampeding the workers;
//! * `SIGTERM` ([`signal`]) drains in-flight work, flushes the cache
//!   journal and exits cleanly, surfacing any final fsync error as a
//!   nonzero exit.
//!
//! Observability is request-scoped: every request runs under its own
//! collector scope with a fresh `trace_id` (echoed in schedule
//! responses), the worst-latency span trees are kept as slow-request
//! exemplars in `stats` responses, and a `metrics` request answers
//! with a Prometheus text exposition page.
//!
//! The wire protocol lives in [`proto`]; the tiny blocking client the
//! CLI's `--remote` flag uses lives in [`client`]. See
//! `docs/SERVICE.md` for the full protocol and operational semantics.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod proto;
pub mod server;
pub mod signal;

pub use admission::{Admission, Permit};
pub use cache::{CachedSchedule, ScheduleCache, CACHE_FILE};
pub use client::{encode_control_request, encode_schedule_request, render_response, submit};
pub use proto::{
    parse_request, Request, RequestError, ScheduleAnswer, ScheduleRequest, SlowExemplar,
    REQUEST_SCHEMA, RESPONSE_SCHEMA,
};
pub use server::{start, ServerConfig, ServerHandle};
pub use signal::{install_sigterm_hook, sigterm_received};
