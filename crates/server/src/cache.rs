//! The fingerprint-keyed schedule cache with optional disk journal.
//!
//! Keys are the canonical `digest@machine#heuristic` composition from
//! [`dagsched_core::schedule_cache_key`]; values are the raw
//! `(processor, start)` placements plus the answering tier and
//! contained incidents — everything needed to rebuild the schedule
//! bit-identically once the requester supplies the (fingerprint-equal)
//! graph again. In memory the cache is a stamp-based LRU; with a disk
//! directory every insert is also appended, checksummed and fsynced,
//! to a journal in the `dagsched.checkpoint.v1` record format
//! ([`dagsched_experiments::checkpoint::CACHE_RECORD_KIND`]) so a
//! restarted server warm-starts from the entries the previous process
//! managed to land before dying — including by `SIGKILL`, which the
//! journal's torn-tail truncation absorbs.

use dagsched_experiments::checkpoint::{
    cache_record_body, parse_cache_record, scan_journal, CacheRecord, JournalWriter, StoredIncident,
};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// File name of the cache journal inside a `--cache-dir` directory.
pub const CACHE_FILE: &str = "cache.jsonl";

/// One cached schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedSchedule {
    /// The tier that produced the answer.
    pub scheduled_by: String,
    /// `(processor, start time)` per task, in task order.
    pub placements: Vec<(u32, u64)>,
    /// Incidents the harness contained while computing it.
    pub incidents: Vec<StoredIncident>,
}

struct Entry {
    value: Arc<CachedSchedule>,
    /// Monotonic use stamp; the entry with the smallest stamp is the
    /// least recently used.
    stamp: u64,
}

struct CacheInner {
    map: HashMap<String, Entry>,
    clock: u64,
}

/// The cache proper. All methods take `&self`; the internal mutex
/// makes it shareable across connection threads.
pub struct ScheduleCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    journal: Option<JournalWriter>,
}

impl ScheduleCache {
    /// A purely in-memory cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> Self {
        ScheduleCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
            journal: None,
        }
    }

    /// A disk-backed cache journaling into `dir/`[`CACHE_FILE`].
    /// Existing records are replayed first (later records win, torn
    /// tails truncated) and the journal is reopened for appending.
    /// Returns the cache and how many entries were warm-started.
    pub fn with_disk(capacity: usize, dir: &Path) -> io::Result<(Self, usize)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(CACHE_FILE);
        let scan = scan_journal(&path).map_err(io::Error::other)?;
        let cache = ScheduleCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
            journal: None,
        };
        for (i, record) in scan.records.iter().enumerate() {
            let rec = parse_cache_record(record).map_err(|reason| {
                io::Error::other(format!("cache journal line {}: {reason}", i + 1))
            })?;
            cache.store(
                rec.key,
                CachedSchedule {
                    scheduled_by: rec.scheduled_by,
                    placements: rec.placements,
                    incidents: rec.incidents,
                },
            );
        }
        let loaded = cache.len();
        let journal = JournalWriter::resume(&path, scan.valid_len)?;
        Ok((
            ScheduleCache {
                journal: Some(journal),
                ..cache
            },
            loaded,
        ))
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<CachedSchedule>> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.stamp = clock;
        Some(Arc::clone(&entry.value))
    }

    /// Inserts (or refreshes) an entry, evicting the least recently
    /// used one beyond capacity, and — for disk-backed caches —
    /// durably journals it first. A journal write failure is returned
    /// *after* the in-memory insert: the answer stays servable, only
    /// its crash durability is lost.
    pub fn insert(&self, key: &str, value: CachedSchedule) -> io::Result<()> {
        let journaled = match &self.journal {
            Some(journal) => journal.append(&cache_record_body(&CacheRecord {
                key: key.to_string(),
                scheduled_by: value.scheduled_by.clone(),
                placements: value.placements.clone(),
                incidents: value.incidents.clone(),
            })),
            None => Ok(()),
        };
        self.store(key.to_string(), value);
        journaled
    }

    fn store(&self, key: String, value: CachedSchedule) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            key,
            Entry {
                value: Arc::new(value),
                stamp,
            },
        );
        while inner.map.len() > self.capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("map is non-empty");
            inner.map.remove(&lru);
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes and closes the disk journal, surfacing the final fsync
    /// error — the server turns it into a nonzero exit at shutdown.
    pub fn close(self) -> io::Result<()> {
        match self.journal {
            Some(journal) => journal.close(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::schedule_cache_key;

    fn entry(tag: &str) -> CachedSchedule {
        CachedSchedule {
            scheduled_by: tag.to_string(),
            placements: vec![(0, 0), (1, 7)],
            incidents: Vec::new(),
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dagsched-srv-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = ScheduleCache::in_memory(2);
        cache.insert("a", entry("A")).unwrap();
        cache.insert("b", entry("B")).unwrap();
        // Touch "a" so "b" is now the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c", entry("C")).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b was evicted");
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn disk_cache_warm_starts_from_its_journal() {
        let dir = temp_dir("warm");
        let key = schedule_cache_key(0xbeef, "uniform", "DSC");
        {
            let (cache, loaded) = ScheduleCache::with_disk(8, &dir).unwrap();
            assert_eq!(loaded, 0);
            cache.insert(&key, entry("DSC")).unwrap();
            cache.close().unwrap();
        }
        let (cache, loaded) = ScheduleCache::with_disk(8, &dir).unwrap();
        assert_eq!(loaded, 1);
        assert_eq!(cache.get(&key).unwrap().as_ref(), &entry("DSC"));

        // Appending after the warm start keeps the journal readable.
        let key2 = schedule_cache_key(0xf00d, "ring:4", "HU");
        cache.insert(&key2, entry("HU")).unwrap();
        cache.close().unwrap();
        let (cache, loaded) = ScheduleCache::with_disk(8, &dir).unwrap();
        assert_eq!(loaded, 2);
        assert!(cache.get(&key2).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_warm_start() {
        let dir = temp_dir("torn");
        let key = schedule_cache_key(1, "uniform", "DSC");
        let key2 = schedule_cache_key(2, "uniform", "DSC");
        {
            let (cache, _) = ScheduleCache::with_disk(8, &dir).unwrap();
            cache.insert(&key, entry("DSC")).unwrap();
            cache.insert(&key2, entry("DSC")).unwrap();
            cache.close().unwrap();
        }
        // Cut the second record mid-line, as a kill mid-append would.
        let path = dir.join(CACHE_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text.as_bytes()[..text.len() - 10]).unwrap();
        let (cache, loaded) = ScheduleCache::with_disk(8, &dir).unwrap();
        assert_eq!(loaded, 1, "only the intact record survives");
        assert!(cache.get(&key).is_some());
        assert!(cache.get(&key2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
