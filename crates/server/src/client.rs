//! A tiny blocking client for the wire protocol.
//!
//! Backs the CLI's `--remote <addr>` flag and the integration tests:
//! encode a request line, submit it over TCP, render the response the
//! way the CLI prints a local run (plus the remote-only provenance —
//! answering tier and cache status).

use crate::proto::{REQUEST_SCHEMA, RESPONSE_SCHEMA};
use dagsched_obs::json::{write_escaped, Json};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Encodes a `kind:"schedule"` request line (no trailing newline).
pub fn encode_schedule_request(
    graph: &str,
    heuristic: &str,
    machine: &str,
    budget_ms: Option<u64>,
    id: Option<&str>,
) -> String {
    let mut s = String::with_capacity(128 + graph.len());
    s.push_str("{\"schema\":\"");
    s.push_str(REQUEST_SCHEMA);
    s.push_str("\",\"kind\":\"schedule\"");
    if let Some(id) = id {
        s.push_str(",\"id\":");
        write_escaped(&mut s, id);
    }
    s.push_str(",\"graph\":");
    write_escaped(&mut s, graph);
    s.push_str(",\"heuristic\":");
    write_escaped(&mut s, heuristic);
    s.push_str(",\"machine\":");
    write_escaped(&mut s, machine);
    if let Some(ms) = budget_ms {
        let _ = write!(s, ",\"budget_ms\":{ms}");
    }
    s.push('}');
    s
}

/// Encodes a control request line (`ping`, `stats`, `metrics`,
/// `shutdown`) with no body beyond the optional id.
pub fn encode_control_request(kind: &str, id: Option<&str>) -> String {
    let mut s = String::with_capacity(64);
    s.push_str("{\"schema\":\"");
    s.push_str(REQUEST_SCHEMA);
    s.push_str("\",\"kind\":");
    write_escaped(&mut s, kind);
    if let Some(id) = id {
        s.push_str(",\"id\":");
        write_escaped(&mut s, id);
    }
    s.push('}');
    s
}

/// Sends one request line to `addr` and reads the one response line.
pub fn submit(addr: &str, line: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    if response.is_empty() {
        return Err(io::Error::other(
            "server closed the connection without answering",
        ));
    }
    Ok(response.trim_end().to_string())
}

/// Renders a schedule response line in the CLI's local output format
/// plus the remote provenance. `Err` carries a printable message for
/// `error`/`overloaded` responses (the caller exits nonzero on it).
pub fn render_response(line: &str) -> Result<String, String> {
    let j = Json::parse(line).map_err(|e| format!("unparseable server response: {e}"))?;
    let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != RESPONSE_SCHEMA {
        return Err(format!(
            "unexpected response schema {schema:?} (expected {RESPONSE_SCHEMA})"
        ));
    }
    let str_of = |name: &str| {
        j.get(name)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    match j.get("status").and_then(Json::as_str) {
        Some("ok") => {}
        Some("overloaded") => {
            return Err(format!("server overloaded: {}", str_of("message")));
        }
        Some("error") => {
            return Err(format!(
                "server error [{}]: {}",
                str_of("code"),
                str_of("message")
            ));
        }
        other => return Err(format!("response carries no valid status: {other:?}")),
    }
    match j.get("kind").and_then(Json::as_str) {
        // The Prometheus exposition page travels escaped inside JSON;
        // hand the raw text page back.
        Some("metrics") => {
            return Ok(j
                .get("body")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string());
        }
        Some("stats") => return Ok(render_stats(&j)),
        _ => {}
    }
    if j.get("heuristic").is_none() {
        // A control response (pong or shutdown-ack): print it raw.
        return Ok(line.to_string());
    }
    let u64_of = |name: &str| j.get(name).and_then(Json::as_u64).unwrap_or(0);
    let f64_of = |name: &str| j.get(name).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<7} parallel_time={} speedup={:.3} efficiency={:.3} procs={}",
        str_of("heuristic"),
        u64_of("makespan"),
        f64_of("speedup"),
        f64_of("efficiency"),
        u64_of("procs"),
    );
    let cached = j.get("cached").and_then(Json::as_bool).unwrap_or(false);
    let _ = writeln!(
        out,
        "  served by {} (tier {}, {})",
        str_of("scheduled_by"),
        str_of("tier"),
        if cached { "cached" } else { "computed" },
    );
    if let Some(trace_id) = j.get("trace_id").and_then(Json::as_str) {
        let _ = writeln!(out, "  trace {trace_id}");
    }
    if let Some(incidents) = j.get("incidents").and_then(Json::as_arr) {
        for inc in incidents {
            let summary = inc.get("summary").and_then(Json::as_str).unwrap_or("?");
            let _ = writeln!(out, "  incident: {summary}");
        }
    }
    Ok(out)
}

/// Renders a `stats` response as aligned tables (counters, gauges,
/// histogram quantiles, slow-request exemplars) instead of raw JSON.
fn render_stats(j: &Json) -> String {
    let mut out = String::new();
    for section in ["counters", "gauges"] {
        let Some(entries) = j.get(section).and_then(Json::as_obj) else {
            continue;
        };
        if entries.is_empty() {
            continue;
        }
        let w = entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let _ = writeln!(out, "{section}:");
        for (name, v) in entries {
            let _ = writeln!(out, "  {name:<w$}  {}", v.as_u64().unwrap_or(0));
        }
    }
    if let Some(hists) = j.get("histograms").and_then(Json::as_obj) {
        if !hists.is_empty() {
            let w = hists
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0)
                .max("histogram".len());
            let _ = writeln!(out, "histograms:");
            let _ = writeln!(
                out,
                "  {:<w$}  {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
                "histogram", "count", "mean", "max", "p50", "p95", "p99"
            );
            for (name, h) in hists {
                let u = |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or(0);
                let mean = h.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "  {name:<w$}  {:>8} {mean:>10.2} {:>8} {:>8} {:>8} {:>8}",
                    u("count"),
                    u("max"),
                    u("p50"),
                    u("p95"),
                    u("p99"),
                );
            }
        }
    }
    if let Some(slow) = j.get("slow_requests").and_then(Json::as_arr) {
        if !slow.is_empty() {
            let _ = writeln!(out, "slow requests (worst first):");
            for e in slow {
                let trace_id = e.get("trace_id").and_then(Json::as_str).unwrap_or("?");
                let kind = e.get("kind").and_then(Json::as_str).unwrap_or("?");
                let us = e.get("latency_us").and_then(Json::as_u64).unwrap_or(0);
                let _ = writeln!(out, "  {trace_id}  {:>10.3} ms  {kind}", us as f64 / 1000.0);
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no stats recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{self, ScheduleAnswer};

    #[test]
    fn schedule_request_encodes_to_what_the_server_parses() {
        let line = encode_schedule_request(
            "nodes 1\nnode 0 5\n",
            "DSC",
            "ring:4",
            Some(250),
            Some("cli"),
        );
        match proto::parse_request(&line).unwrap() {
            proto::Request::Schedule(r) => {
                assert_eq!(r.graph, "nodes 1\nnode 0 5\n");
                assert_eq!(r.heuristic, "DSC");
                assert_eq!(r.machine, "ring:4");
                assert_eq!(r.budget_ms, Some(250));
                assert_eq!(r.id.as_deref(), Some("cli"));
            }
            other => panic!("expected a schedule request, got {other:?}"),
        }
    }

    #[test]
    fn control_requests_encode_to_what_the_server_parses() {
        let line = encode_control_request("metrics", Some("m1"));
        assert_eq!(
            proto::parse_request(&line).unwrap(),
            proto::Request::Metrics {
                id: Some("m1".into())
            }
        );
        let line = encode_control_request("stats", None);
        assert_eq!(
            proto::parse_request(&line).unwrap(),
            proto::Request::Stats { id: None }
        );
    }

    #[test]
    fn ok_responses_render_in_the_cli_format() {
        let answer = ScheduleAnswer {
            heuristic: "DSC".into(),
            machine: "uniform".into(),
            scheduled_by: "HU".into(),
            tier: "fallback:HU".into(),
            cached: true,
            fingerprint: "0x0000000000003a5f".into(),
            makespan: 40,
            procs: 2,
            speedup: 1.5,
            efficiency: 0.75,
            placements: vec![(0, 0), (1, 10)],
            incidents: vec![("panic".into(), "DSC panicked: boom".into())],
            trace_id: "t-0000000000000007".into(),
        };
        let out = render_response(&proto::ok_response(None, &answer)).unwrap();
        assert!(out.contains("parallel_time=40"), "{out}");
        assert!(out.contains("speedup=1.500"), "{out}");
        assert!(
            out.contains("served by HU (tier fallback:HU, cached)"),
            "{out}"
        );
        assert!(out.contains("trace t-0000000000000007"), "{out}");
        assert!(out.contains("incident: DSC panicked: boom"), "{out}");
    }

    #[test]
    fn stats_responses_render_as_aligned_tables() {
        let scope = dagsched_obs::run_scope();
        dagsched_obs::counter_add("server.requests.total", 3);
        dagsched_obs::counter_add("server.cache.hit", 1);
        for v in [1, 2, 9] {
            dagsched_obs::hist_record("server.latency_ms", v);
        }
        let stats = scope.finish();
        let slow = vec![proto::SlowExemplar {
            trace_id: "t-0000000000000002".into(),
            kind: "schedule CHAOS-SLEEPY".into(),
            latency_us: 250_500,
            stats: dagsched_obs::RunStats::default(),
        }];
        let out = render_response(&proto::stats_response(None, &stats, &slow)).unwrap();
        if !stats.is_empty() {
            // Counter rows align: both names padded to one width.
            assert!(out.contains("counters:"), "{out}");
            let rows: Vec<&str> = out
                .lines()
                .filter(|l| l.contains("server.requests.total") || l.contains("server.cache.hit"))
                .collect();
            assert_eq!(rows.len(), 2, "{out}");
            let col = |row: &str| row.rfind(' ').unwrap();
            assert_eq!(col(rows[0]), col(rows[1]), "{out}");
            // The histogram table has a header and the quantile columns.
            assert!(out.contains("histograms:"), "{out}");
            assert!(out.contains("p50"), "{out}");
            assert!(out.contains("p95"), "{out}");
            assert!(out.contains("p99"), "{out}");
            assert!(out.contains("server.latency_ms"), "{out}");
        }
        assert!(out.contains("slow requests (worst first):"), "{out}");
        assert!(out.contains("t-0000000000000002"), "{out}");
        assert!(out.contains("250.500 ms"), "{out}");
        assert!(out.contains("schedule CHAOS-SLEEPY"), "{out}");
        assert!(!out.contains('{'), "stats must not render raw: {out}");
    }

    #[test]
    fn metrics_responses_render_the_raw_exposition_page() {
        let page = "# TYPE server_requests_total counter\nserver_requests_total 3\n";
        let out = render_response(&proto::metrics_response(None, page)).unwrap();
        assert_eq!(out, page);
    }

    #[test]
    fn error_and_overload_responses_render_as_errors() {
        let err =
            render_response(&proto::error_response(None, "parse-error", "line 2: no")).unwrap_err();
        assert!(err.contains("parse-error"), "{err}");
        assert!(err.contains("line 2: no"), "{err}");
        let err = render_response(&proto::overloaded_response(None)).unwrap_err();
        assert!(err.contains("overloaded"), "{err}");
    }
}
