//! A tiny blocking client for the wire protocol.
//!
//! Backs the CLI's `--remote <addr>` flag and the integration tests:
//! encode a request line, submit it over TCP, render the response the
//! way the CLI prints a local run (plus the remote-only provenance —
//! answering tier and cache status).

use crate::proto::{REQUEST_SCHEMA, RESPONSE_SCHEMA};
use dagsched_obs::json::{write_escaped, Json};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Encodes a `kind:"schedule"` request line (no trailing newline).
pub fn encode_schedule_request(
    graph: &str,
    heuristic: &str,
    machine: &str,
    budget_ms: Option<u64>,
    id: Option<&str>,
) -> String {
    let mut s = String::with_capacity(128 + graph.len());
    s.push_str("{\"schema\":\"");
    s.push_str(REQUEST_SCHEMA);
    s.push_str("\",\"kind\":\"schedule\"");
    if let Some(id) = id {
        s.push_str(",\"id\":");
        write_escaped(&mut s, id);
    }
    s.push_str(",\"graph\":");
    write_escaped(&mut s, graph);
    s.push_str(",\"heuristic\":");
    write_escaped(&mut s, heuristic);
    s.push_str(",\"machine\":");
    write_escaped(&mut s, machine);
    if let Some(ms) = budget_ms {
        let _ = write!(s, ",\"budget_ms\":{ms}");
    }
    s.push('}');
    s
}

/// Sends one request line to `addr` and reads the one response line.
pub fn submit(addr: &str, line: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    if response.is_empty() {
        return Err(io::Error::other(
            "server closed the connection without answering",
        ));
    }
    Ok(response.trim_end().to_string())
}

/// Renders a schedule response line in the CLI's local output format
/// plus the remote provenance. `Err` carries a printable message for
/// `error`/`overloaded` responses (the caller exits nonzero on it).
pub fn render_response(line: &str) -> Result<String, String> {
    let j = Json::parse(line).map_err(|e| format!("unparseable server response: {e}"))?;
    let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != RESPONSE_SCHEMA {
        return Err(format!(
            "unexpected response schema {schema:?} (expected {RESPONSE_SCHEMA})"
        ));
    }
    let str_of = |name: &str| {
        j.get(name)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    match j.get("status").and_then(Json::as_str) {
        Some("ok") => {}
        Some("overloaded") => {
            return Err(format!("server overloaded: {}", str_of("message")));
        }
        Some("error") => {
            return Err(format!(
                "server error [{}]: {}",
                str_of("code"),
                str_of("message")
            ));
        }
        other => return Err(format!("response carries no valid status: {other:?}")),
    }
    if j.get("heuristic").is_none() {
        // A control response (pong, shutdown-ack, stats): print it raw.
        return Ok(line.to_string());
    }
    let u64_of = |name: &str| j.get(name).and_then(Json::as_u64).unwrap_or(0);
    let f64_of = |name: &str| j.get(name).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<7} parallel_time={} speedup={:.3} efficiency={:.3} procs={}",
        str_of("heuristic"),
        u64_of("makespan"),
        f64_of("speedup"),
        f64_of("efficiency"),
        u64_of("procs"),
    );
    let cached = j.get("cached").and_then(Json::as_bool).unwrap_or(false);
    let _ = writeln!(
        out,
        "  served by {} (tier {}, {})",
        str_of("scheduled_by"),
        str_of("tier"),
        if cached { "cached" } else { "computed" },
    );
    if let Some(incidents) = j.get("incidents").and_then(Json::as_arr) {
        for inc in incidents {
            let summary = inc.get("summary").and_then(Json::as_str).unwrap_or("?");
            let _ = writeln!(out, "  incident: {summary}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{self, ScheduleAnswer};

    #[test]
    fn schedule_request_encodes_to_what_the_server_parses() {
        let line = encode_schedule_request(
            "nodes 1\nnode 0 5\n",
            "DSC",
            "ring:4",
            Some(250),
            Some("cli"),
        );
        match proto::parse_request(&line).unwrap() {
            proto::Request::Schedule(r) => {
                assert_eq!(r.graph, "nodes 1\nnode 0 5\n");
                assert_eq!(r.heuristic, "DSC");
                assert_eq!(r.machine, "ring:4");
                assert_eq!(r.budget_ms, Some(250));
                assert_eq!(r.id.as_deref(), Some("cli"));
            }
            other => panic!("expected a schedule request, got {other:?}"),
        }
    }

    #[test]
    fn ok_responses_render_in_the_cli_format() {
        let answer = ScheduleAnswer {
            heuristic: "DSC".into(),
            machine: "uniform".into(),
            scheduled_by: "HU".into(),
            tier: "fallback:HU".into(),
            cached: true,
            fingerprint: "0x0000000000003a5f".into(),
            makespan: 40,
            procs: 2,
            speedup: 1.5,
            efficiency: 0.75,
            placements: vec![(0, 0), (1, 10)],
            incidents: vec![("panic".into(), "DSC panicked: boom".into())],
        };
        let out = render_response(&proto::ok_response(None, &answer)).unwrap();
        assert!(out.contains("parallel_time=40"), "{out}");
        assert!(out.contains("speedup=1.500"), "{out}");
        assert!(
            out.contains("served by HU (tier fallback:HU, cached)"),
            "{out}"
        );
        assert!(out.contains("incident: DSC panicked: boom"), "{out}");
    }

    #[test]
    fn error_and_overload_responses_render_as_errors() {
        let err =
            render_response(&proto::error_response(None, "parse-error", "line 2: no")).unwrap_err();
        assert!(err.contains("parse-error"), "{err}");
        assert!(err.contains("line 2: no"), "{err}");
        let err = render_response(&proto::overloaded_response(None)).unwrap_err();
        assert!(err.contains("overloaded"), "{err}");
    }
}
