//! The versioned line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, over a plain
//! TCP stream. Every request carries `schema`
//! ([`REQUEST_SCHEMA`] = `dagsched.request.v1`) and a `kind`; every
//! response carries [`RESPONSE_SCHEMA`] (`dagsched.response.v1`), the
//! request's echoed `id` (if any) and a `status` of `ok`, `error` or
//! `overloaded`. The full schema is documented in `docs/SERVICE.md`.
//!
//! Requests:
//!
//! ```json
//! {"schema":"dagsched.request.v1","kind":"schedule","id":"r1",
//!  "graph":"nodes 2\nnode 0 5\nnode 1 5\nedge 0 1 3\n",
//!  "heuristic":"DSC","machine":"uniform","budget_ms":250}
//! {"schema":"dagsched.request.v1","kind":"stats"}
//! {"schema":"dagsched.request.v1","kind":"metrics"}
//! {"schema":"dagsched.request.v1","kind":"ping"}
//! {"schema":"dagsched.request.v1","kind":"shutdown"}
//! ```
//!
//! A schedule response labels the *tier* that answered — `"primary"`
//! when the requested heuristic produced the schedule,
//! `"fallback:<NAME>"` when the harness degraded to a fallback
//! heuristic, `"serial-placement"` when only the synthesized total
//! fallback survived — so a caller under deadline pressure can tell a
//! first-choice answer from a degraded one without parsing incidents.
//! Every schedule response also echoes the server-assigned request
//! `trace_id`, which keys that request's span tree in the
//! slow-request exemplar buffer (`stats` response, `slow_requests`).
//! A `metrics` request returns the same instrumentation as `stats`,
//! rendered as a Prometheus text exposition page in the `body` field.

use dagsched_obs::json::{write_escaped, write_f64, Json};
use dagsched_obs::RunStats;

/// Schema tag every request must carry.
pub const REQUEST_SCHEMA: &str = "dagsched.request.v1";
/// Schema tag every response carries.
pub const RESPONSE_SCHEMA: &str = "dagsched.response.v1";

/// Machine-readable error codes of `status:"error"` responses.
pub mod code {
    /// The request line is not valid JSON or not a valid request.
    pub const BAD_REQUEST: &str = "bad-request";
    /// The graph text does not parse.
    pub const PARSE_ERROR: &str = "parse-error";
    /// The requested heuristic is not registered.
    pub const UNKNOWN_HEURISTIC: &str = "unknown-heuristic";
    /// The machine spec does not parse.
    pub const UNKNOWN_MACHINE: &str = "unknown-machine";
    /// The request escaped every containment layer (a bug — the
    /// response exists so the *connection* still survives it).
    pub const INTERNAL: &str = "internal";
    /// The server is draining and accepts no new work.
    pub const SHUTTING_DOWN: &str = "shutting-down";
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Schedule a graph.
    Schedule(ScheduleRequest),
    /// Return the server's aggregated instrumentation.
    Stats {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Return the same instrumentation as a Prometheus text
    /// exposition page (the scrape endpoint).
    Metrics {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Liveness probe.
    Ping {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Ask the server to drain and exit.
    Shutdown {
        /// Echoed request id.
        id: Option<String>,
    },
}

impl Request {
    /// The request's echoed id, whatever its kind.
    pub fn id(&self) -> Option<&str> {
        match self {
            Request::Schedule(r) => r.id.as_deref(),
            Request::Stats { id }
            | Request::Metrics { id }
            | Request::Ping { id }
            | Request::Shutdown { id } => id.as_deref(),
        }
    }
}

/// A `kind:"schedule"` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// Caller-chosen id, echoed verbatim in the response.
    pub id: Option<String>,
    /// The graph, in the repo's plain-text format.
    pub graph: String,
    /// Heuristic name (`DSC`, `CLANS`, …) — case-insensitive.
    pub heuristic: String,
    /// Machine spec in the `--machine` grammar (`uniform`, `ring:4`,
    /// …). Defaults to `uniform` when absent.
    pub machine: String,
    /// Per-request wall-clock budget in milliseconds; the server's
    /// default applies when absent.
    pub budget_ms: Option<u64>,
}

/// Why a request line was rejected before reaching a handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// One of the [`code`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

fn bad(message: impl Into<String>) -> RequestError {
    RequestError {
        code: code::BAD_REQUEST,
        message: message.into(),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let j = Json::parse(line).map_err(|e| bad(format!("request is not valid JSON: {e}")))?;
    let schema = j
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("request carries no schema"))?;
    if schema != REQUEST_SCHEMA {
        return Err(bad(format!(
            "unsupported schema {schema:?} (this server speaks {REQUEST_SCHEMA})"
        )));
    }
    let id = j.get("id").and_then(Json::as_str).map(str::to_string);
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("request carries no kind"))?;
    match kind {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "schedule" => {
            let graph = j
                .get("graph")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("schedule request carries no graph text"))?
                .to_string();
            let heuristic = j
                .get("heuristic")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("schedule request carries no heuristic"))?
                .to_uppercase();
            let machine = match j.get("machine") {
                None => "uniform".to_string(),
                Some(m) => m
                    .as_str()
                    .ok_or_else(|| bad("machine must be a string"))?
                    .to_string(),
            };
            let budget_ms = match j.get("budget_ms") {
                None => None,
                Some(b) => Some(
                    b.as_u64()
                        .filter(|&ms| ms > 0)
                        .ok_or_else(|| bad("budget_ms must be a positive integer"))?,
                ),
            };
            Ok(Request::Schedule(ScheduleRequest {
                id,
                graph,
                heuristic,
                machine,
                budget_ms,
            }))
        }
        other => Err(bad(format!("unknown request kind {other:?}"))),
    }
}

/// A computed (or cache-served) schedule, ready to encode.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAnswer {
    /// The heuristic the caller asked for.
    pub heuristic: String,
    /// The machine spec the schedule is for.
    pub machine: String,
    /// The chain tier that actually produced the schedule.
    pub scheduled_by: String,
    /// `primary`, `fallback:<NAME>` or `serial-placement`.
    pub tier: String,
    /// Whether the answer came from the schedule cache (or was
    /// coalesced onto another request's computation).
    pub cached: bool,
    /// The graph's content fingerprint (`{:#018x}`).
    pub fingerprint: String,
    /// Schedule makespan.
    pub makespan: u64,
    /// Processors used.
    pub procs: usize,
    /// Serial time / makespan.
    pub speedup: f64,
    /// Speedup / processors.
    pub efficiency: f64,
    /// `(processor, start time)` per task, in task order.
    pub placements: Vec<(u32, u64)>,
    /// `(kind, summary)` per incident the harness contained.
    pub incidents: Vec<(String, String)>,
    /// Server-assigned id of the request that computed (or fetched)
    /// this answer; keys the slow-request exemplar buffer.
    pub trace_id: String,
}

impl ScheduleAnswer {
    /// The tier label for a schedule produced by `scheduled_by` when
    /// `requested` was asked for.
    pub fn tier_of(requested: &str, scheduled_by: &str) -> String {
        if scheduled_by == requested {
            "primary".to_string()
        } else if scheduled_by == dagsched_harness::SERIAL_PLACEMENT {
            "serial-placement".to_string()
        } else {
            format!("fallback:{scheduled_by}")
        }
    }
}

fn response_head(s: &mut String, id: Option<&str>, status: &str) {
    s.push_str("{\"schema\":\"");
    s.push_str(RESPONSE_SCHEMA);
    s.push('"');
    if let Some(id) = id {
        s.push_str(",\"id\":");
        write_escaped(s, id);
    }
    s.push_str(",\"status\":\"");
    s.push_str(status);
    s.push('"');
}

/// Encodes a successful schedule response.
pub fn ok_response(id: Option<&str>, a: &ScheduleAnswer) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(256 + 16 * a.placements.len());
    response_head(&mut s, id, "ok");
    s.push_str(",\"trace_id\":");
    write_escaped(&mut s, &a.trace_id);
    s.push_str(",\"heuristic\":");
    write_escaped(&mut s, &a.heuristic);
    s.push_str(",\"machine\":");
    write_escaped(&mut s, &a.machine);
    s.push_str(",\"scheduled_by\":");
    write_escaped(&mut s, &a.scheduled_by);
    s.push_str(",\"tier\":");
    write_escaped(&mut s, &a.tier);
    let _ = write!(
        s,
        ",\"cached\":{},\"fingerprint\":\"{}\",\"makespan\":{},\"procs\":{}",
        a.cached, a.fingerprint, a.makespan, a.procs
    );
    s.push_str(",\"speedup\":");
    write_f64(&mut s, a.speedup);
    s.push_str(",\"efficiency\":");
    write_f64(&mut s, a.efficiency);
    s.push_str(",\"placements\":[");
    for (i, (proc, start)) in a.placements.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{proc},{start}]");
    }
    s.push_str("],\"incidents\":[");
    for (i, (kind, summary)) in a.incidents.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"kind\":");
        write_escaped(&mut s, kind);
        s.push_str(",\"summary\":");
        write_escaped(&mut s, summary);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Encodes a `status:"error"` response.
pub fn error_response(id: Option<&str>, code: &str, message: &str) -> String {
    let mut s = String::with_capacity(96 + message.len());
    response_head(&mut s, id, "error");
    s.push_str(",\"code\":");
    write_escaped(&mut s, code);
    s.push_str(",\"message\":");
    write_escaped(&mut s, message);
    s.push('}');
    s
}

/// Encodes the 429-style load-shedding response: the queue is full and
/// the request was not admitted. The caller should back off and retry.
pub fn overloaded_response(id: Option<&str>) -> String {
    let mut s = String::with_capacity(96);
    response_head(&mut s, id, "overloaded");
    s.push_str(",\"message\":\"request queue is full, retry later\"}");
    s
}

/// Encodes the reply to a `ping`.
pub fn pong_response(id: Option<&str>) -> String {
    let mut s = String::with_capacity(64);
    response_head(&mut s, id, "ok");
    s.push_str(",\"kind\":\"pong\"}");
    s
}

/// Encodes the acknowledgement of a `shutdown` request (sent before
/// the drain starts).
pub fn shutdown_ack(id: Option<&str>) -> String {
    let mut s = String::with_capacity(64);
    response_head(&mut s, id, "ok");
    s.push_str(",\"kind\":\"shutdown-ack\",\"message\":\"draining\"}");
    s
}

/// One slow-request exemplar: the span tree of a request whose
/// latency crossed the server's slow threshold, keyed by `trace_id`.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowExemplar {
    /// The `trace_id` echoed in the request's response.
    pub trace_id: String,
    /// Request kind summary, e.g. `"schedule DSC"`.
    pub kind: String,
    /// End-to-end handling latency in microseconds.
    pub latency_us: u64,
    /// The per-request stats whose [`RunStats::span_tree`] is the
    /// exemplar payload.
    pub stats: RunStats,
}

fn write_span_tree(s: &mut String, stats: &RunStats) {
    s.push('[');
    for (i, node) in stats.span_tree().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":");
        write_escaped(s, node.name);
        s.push_str(",\"parent\":");
        match node.parent {
            Some(p) => s.push_str(&p.to_string()),
            None => s.push_str("null"),
        }
        use std::fmt::Write as _;
        let _ = write!(s, ",\"calls\":{},\"ns\":{}}}", node.calls, node.total_ns);
    }
    s.push(']');
}

/// Encodes the reply to a `stats` request from the server's
/// accumulated instrumentation plus the slow-request exemplar buffer
/// (worst first).
pub fn stats_response(id: Option<&str>, stats: &RunStats, slow: &[SlowExemplar]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(512);
    response_head(&mut s, id, "ok");
    s.push_str(",\"kind\":\"stats\",\"counters\":{");
    for (i, (name, value)) in stats.counters().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_escaped(&mut s, name);
        let _ = write!(s, ":{value}");
    }
    s.push_str("},\"gauges\":{");
    for (i, (name, value)) in stats.gauges().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_escaped(&mut s, name);
        let _ = write!(s, ":{value}");
    }
    s.push_str("},\"histograms\":{");
    for (i, (name, h)) in stats.histograms().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_escaped(&mut s, name);
        let _ = write!(
            s,
            ":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":",
            h.count(),
            h.sum(),
            h.max()
        );
        write_f64(&mut s, h.mean());
        let _ = write!(
            s,
            ",\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.p50(),
            h.p95(),
            h.p99()
        );
    }
    s.push_str("},\"slow_requests\":[");
    for (i, e) in slow.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"trace_id\":");
        write_escaped(&mut s, &e.trace_id);
        s.push_str(",\"kind\":");
        write_escaped(&mut s, &e.kind);
        let _ = write!(s, ",\"latency_us\":{},\"span_tree\":", e.latency_us);
        write_span_tree(&mut s, &e.stats);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Encodes the reply to a `metrics` request: the Prometheus text
/// exposition page, carried verbatim in the `body` field.
pub fn metrics_response(id: Option<&str>, exposition: &str) -> String {
    let mut s = String::with_capacity(128 + exposition.len());
    response_head(&mut s, id, "ok");
    s.push_str(",\"kind\":\"metrics\",\"content_type\":\"text/plain; version=0.0.4\",\"body\":");
    write_escaped(&mut s, exposition);
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_request_round_trips() {
        let line = format!(
            "{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"schedule\",\"id\":\"r1\",\
             \"graph\":\"nodes 1\\nnode 0 5\\n\",\"heuristic\":\"dsc\",\
             \"machine\":\"ring:4\",\"budget_ms\":250}}"
        );
        match parse_request(&line).unwrap() {
            Request::Schedule(r) => {
                assert_eq!(r.id.as_deref(), Some("r1"));
                assert_eq!(r.graph, "nodes 1\nnode 0 5\n");
                assert_eq!(r.heuristic, "DSC", "heuristic is upcased");
                assert_eq!(r.machine, "ring:4");
                assert_eq!(r.budget_ms, Some(250));
            }
            other => panic!("expected a schedule request, got {other:?}"),
        }
    }

    #[test]
    fn control_requests_parse() {
        for (kind, expect) in [
            ("ping", Request::Ping { id: None }),
            ("stats", Request::Stats { id: None }),
            ("metrics", Request::Metrics { id: None }),
            ("shutdown", Request::Shutdown { id: None }),
        ] {
            let line = format!("{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"{kind}\"}}");
            assert_eq!(parse_request(&line).unwrap(), expect);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_bad_request() {
        for line in [
            "not json",
            "{}",
            "{\"schema\":\"nope\",\"kind\":\"ping\"}",
            &format!("{{\"schema\":\"{REQUEST_SCHEMA}\"}}"),
            &format!("{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"frobnicate\"}}"),
            &format!("{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"schedule\"}}"),
            &format!(
                "{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"schedule\",\
                 \"graph\":\"nodes 0\\n\",\"heuristic\":\"HU\",\"budget_ms\":0}}"
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, code::BAD_REQUEST, "{line}");
        }
    }

    #[test]
    fn tier_labels() {
        assert_eq!(ScheduleAnswer::tier_of("DSC", "DSC"), "primary");
        assert_eq!(ScheduleAnswer::tier_of("DSC", "HU"), "fallback:HU");
        assert_eq!(
            ScheduleAnswer::tier_of("DSC", dagsched_harness::SERIAL_PLACEMENT),
            "serial-placement"
        );
    }

    #[test]
    fn responses_are_valid_json_and_carry_the_id() {
        let answer = ScheduleAnswer {
            heuristic: "DSC".into(),
            machine: "uniform".into(),
            scheduled_by: "HU".into(),
            tier: "fallback:HU".into(),
            cached: false,
            fingerprint: "0x0000000000003a5f".into(),
            makespan: 40,
            procs: 2,
            speedup: 1.5,
            efficiency: 0.75,
            placements: vec![(0, 0), (1, 10)],
            incidents: vec![("panic".into(), "DSC panicked: boom".into())],
            trace_id: "t-0000000000000001".into(),
        };
        for line in [
            ok_response(Some("r\"1"), &answer),
            error_response(Some("r\"1"), code::PARSE_ERROR, "bad \"graph\""),
            overloaded_response(Some("r\"1")),
            pong_response(Some("r\"1")),
            shutdown_ack(Some("r\"1")),
            stats_response(Some("r\"1"), &RunStats::default(), &[]),
            metrics_response(Some("r\"1"), "# TYPE a counter\na 1\n"),
        ] {
            let j = Json::parse(&line).expect(&line);
            assert_eq!(j.get("schema").unwrap().as_str(), Some(RESPONSE_SCHEMA));
            assert_eq!(j.get("id").unwrap().as_str(), Some("r\"1"));
        }
        let j = Json::parse(&ok_response(None, &answer)).unwrap();
        assert!(j.get("id").is_none());
        assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(j.get("tier").unwrap().as_str(), Some("fallback:HU"));
        assert_eq!(j.get("makespan").unwrap().as_u64(), Some(40));
        assert_eq!(j.get("placements").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            j.get("trace_id").unwrap().as_str(),
            Some("t-0000000000000001")
        );
    }

    #[test]
    fn stats_response_carries_quantiles_and_slow_exemplars() {
        let scope = dagsched_obs::run_scope();
        for v in 1..=100 {
            dagsched_obs::hist_record("server.latency_ms", v);
        }
        let stats = scope.finish();
        let exemplar = SlowExemplar {
            trace_id: "t-000000000000002a".into(),
            kind: "schedule DSC".into(),
            latency_us: 123_456,
            stats: RunStats::default(),
        };
        let line = stats_response(None, &stats, &[exemplar]);
        let j = Json::parse(&line).expect(&line);
        let hists = j.get("histograms").unwrap();
        // The histogram is present only when the workspace `obs`
        // feature is on; the exemplar encoding is unconditional.
        if let Some(lat) = hists.get("server.latency_ms") {
            assert_eq!(lat.get("count").unwrap().as_u64(), Some(100));
            let p50 = lat.get("p50").unwrap().as_u64().unwrap();
            let p95 = lat.get("p95").unwrap().as_u64().unwrap();
            let p99 = lat.get("p99").unwrap().as_u64().unwrap();
            assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
            assert!(p99 <= 100);
        }
        let slow = j.get("slow_requests").unwrap().as_arr().unwrap();
        assert_eq!(slow.len(), 1);
        assert_eq!(
            slow[0].get("trace_id").unwrap().as_str(),
            Some("t-000000000000002a")
        );
        assert_eq!(slow[0].get("latency_us").unwrap().as_u64(), Some(123_456));
        assert!(slow[0].get("span_tree").unwrap().as_arr().is_some());
    }

    #[test]
    fn metrics_response_round_trips_the_exposition_body() {
        let page = "# TYPE server_requests_total counter\nserver_requests_total 3\n";
        let line = metrics_response(None, page);
        let j = Json::parse(&line).expect(&line);
        assert_eq!(j.get("kind").unwrap().as_str(), Some("metrics"));
        assert_eq!(j.get("body").unwrap().as_str(), Some(page));
    }
}
