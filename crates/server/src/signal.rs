//! SIGTERM handling for the daemon binary.
//!
//! The handler only sets an [`AtomicBool`]; the main loop polls it and
//! runs the actual drain (stop accepting, finish in-flight work, flush
//! the cache journal) in ordinary code, since almost nothing is
//! async-signal-safe inside a handler. This is the single module in
//! the workspace that needs `unsafe` (the `signal(2)` registration);
//! everything else stays `forbid(unsafe_code)`.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM has been delivered since
/// [`install_sigterm_hook`] ran.
pub fn sigterm_received() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Test-only escape hatch: pretend a SIGTERM arrived.
pub fn simulate_sigterm() {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::TERM_REQUESTED;
    use std::sync::atomic::Ordering;

    extern "C" fn on_sigterm(_signum: libc::c_int) {
        // Only the store: flag-setting is async-signal-safe, a drain
        // is not.
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Registers the SIGTERM handler. Idempotent.
    pub fn install_sigterm_hook() {
        // SAFETY: `on_sigterm` is an `extern "C"` fn that only stores
        // to an atomic — async-signal-safe — and `signal` is called
        // before any server thread starts.
        unsafe {
            libc::signal(
                libc::SIGTERM,
                on_sigterm as extern "C" fn(libc::c_int) as usize as libc::sighandler_t,
            );
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal to hook on this platform; shutdown comes from the
    /// protocol's `shutdown` request instead.
    pub fn install_sigterm_hook() {}
}

pub use imp::install_sigterm_hook;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_sigterm_sets_the_flag() {
        install_sigterm_hook();
        simulate_sigterm();
        assert!(sigterm_received());
    }
}
