//! The branch-and-bound search proper.
//!
//! The search enumerates *semi-active* schedules: it repeatedly picks a
//! ready task and a processor and places the task at its earliest start
//! there, exactly like the kernel heuristics do — so every leaf is a
//! schedule the heuristics could in principle have produced, and the
//! incumbent is always a valid [`Schedule`]. Completeness over that
//! space plus the fact that some optimal schedule is semi-active (any
//! schedule can be compressed left without growing its makespan) makes
//! the best leaf a true optimum.
//!
//! Three prunings keep the tree small, each with a soundness argument:
//!
//! * **Lower bounds** ([`Worker::lower_bound`]): a critical-path bound
//!   from the cached computation-only b-levels (communication is
//!   nonnegative, so dropping it is admissible) and, on bounded
//!   machines, a water-filling load bound over remaining work. A child
//!   is cut when its bound reaches the incumbent — strictly better
//!   schedules always survive, so exhausting the tree proves the
//!   incumbent optimal.
//! * **Start-order dominance**: children are only placed at starts no
//!   earlier than the last placement. Replaying any semi-active
//!   schedule in `(start, topo-position)` order reproduces it exactly
//!   with nondecreasing starts while only ever placing ready tasks, so
//!   at least one optimal leaf survives the restriction.
//! * **Equivalent-sibling pruning**: among simultaneously ready tasks
//!   with identical weight, predecessor list and successor list (ids
//!   *and* edge weights), only the first is branched on — swapping the
//!   labels of two such tasks maps any completion of one branch to a
//!   completion of the other at the same makespan.
//!
//! Processor ids are kept *dense* (a fresh task either joins an opened
//! processor or opens the next id). On a machine whose processors are
//! interchangeable this is a pure symmetry reduction; on hop-cost
//! topologies (ring, mesh, …) it is not exhaustive, which is why
//! [`solve`](crate::solve) downgrades `proven` there.

use dagsched_core::scheduler::kernel::PartialSchedule;
use dagsched_core::CostModel;
use dagsched_dag::{Dag, NodeId, Weight};
use dagsched_sim::ProcId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-graph precomputation shared (read-only) by every worker.
pub(crate) struct Instance<'a> {
    pub g: &'a Dag,
    /// Computation-only b-levels (own weight included) — admissible
    /// remaining-critical-path estimates under any machine.
    pub blevel: &'a [Weight],
    /// `blevel[v] - weight(v)`: the critical path strictly *below* `v`.
    pub tail: Vec<Weight>,
    /// Equivalence-class representative per node for sibling pruning;
    /// nodes in the same class are interchangeable.
    pub class_rep: Vec<u32>,
    pub startup: Weight,
    /// `CostModel::processor_limit()` of the machine.
    pub limit: Option<usize>,
    pub total_work: Weight,
}

impl<'a> Instance<'a> {
    pub fn new<C: CostModel + ?Sized>(g: &'a Dag, model: &C) -> Self {
        let blevel = g.blevels_computation();
        let tail = g
            .nodes()
            .map(|v| blevel[v.index()] - g.node_weight(v))
            .collect();
        Instance {
            g,
            blevel,
            tail,
            class_rep: sibling_classes(g),
            startup: model.startup_cost(),
            limit: model.processor_limit(),
            total_work: g.serial_time(),
        }
    }
}

/// Cross-worker search state: the atomic incumbent makespan, the best
/// assignment found so far, node/prune counters and the cutoff flag.
pub(crate) struct Shared {
    /// Best complete makespan seen anywhere (seeded from the
    /// heuristics). Bounds prune on `lb >= incumbent`.
    pub incumbent: AtomicU64,
    pub best: Mutex<Best>,
    /// Search nodes expanded (across all workers).
    pub nodes: AtomicU64,
    pub pruned_bound: AtomicU64,
    pub pruned_dominance: AtomicU64,
    /// Set once a budget trips; all workers unwind promptly.
    pub cut: AtomicBool,
    pub node_budget: u64,
    pub deadline: Option<Instant>,
}

pub(crate) struct Best {
    pub makespan: Weight,
    /// `None` until the search itself beats the seed schedule.
    pub assignment: Option<Vec<(ProcId, Weight)>>,
}

impl Shared {
    pub fn new(seed_makespan: Weight, node_budget: u64, deadline: Option<Instant>) -> Self {
        Shared {
            incumbent: AtomicU64::new(seed_makespan),
            best: Mutex::new(Best {
                makespan: seed_makespan,
                assignment: None,
            }),
            nodes: AtomicU64::new(0),
            pruned_bound: AtomicU64::new(0),
            pruned_dominance: AtomicU64::new(0),
            cut: AtomicBool::new(false),
            node_budget,
            deadline,
        }
    }
}

/// One DFS worker: a [`PartialSchedule`] plus the ready-set and bound
/// bookkeeping the kernel does not track. Workers are cheap to build,
/// so the parallel driver makes a fresh one per frontier prefix.
pub(crate) struct Worker<'a, C: CostModel + ?Sized> {
    inst: &'a Instance<'a>,
    shared: &'a Shared,
    ps: PartialSchedule<'a, C>,
    /// Unplaced-predecessor counts; a task is ready at zero.
    pending: Vec<u32>,
    ready: Vec<NodeId>,
    /// Sum of unplaced node weights (feeds the load bound).
    rem_work: Weight,
    /// Max over placed `v` of `finish(v) + tail(v)` — a monotone
    /// critical-path lower bound on any completion of this prefix.
    path_lb: Weight,
    /// Max finish over placed tasks.
    makespan: Weight,
    /// Start of the most recent placement (start-order dominance).
    last_start: Weight,
    pruned_bound: u64,
    pruned_dominance: u64,
    /// Local countdown between deadline checks.
    ticker: u32,
}

/// A root-to-node branch decision; a prefix of these reconstructs a
/// worker deterministically (starts are recomputed on replay and
/// asserted against the recorded value).
pub(crate) type Prefix = Vec<(NodeId, ProcId, Weight)>;

impl<'a, C: CostModel + ?Sized> Worker<'a, C> {
    pub fn new(inst: &'a Instance<'a>, shared: &'a Shared, model: &'a C) -> Self {
        let g = inst.g;
        let n = g.num_nodes();
        let mut pending = vec![0u32; n];
        for v in g.nodes() {
            for (s, _) in g.succs(v) {
                pending[s.index()] += 1;
            }
        }
        let ready = g.nodes().filter(|v| pending[v.index()] == 0).collect();
        Worker {
            inst,
            shared,
            ps: PartialSchedule::new(g, model),
            pending,
            ready,
            rem_work: inst.total_work,
            path_lb: 0,
            makespan: 0,
            last_start: 0,
            pruned_bound: 0,
            pruned_dominance: 0,
            ticker: 0,
        }
    }

    /// Flushes this worker's local prune counters into [`Shared`].
    pub fn flush_counters(&mut self) {
        self.shared
            .pruned_bound
            .fetch_add(std::mem::take(&mut self.pruned_bound), Ordering::Relaxed);
        self.shared.pruned_dominance.fetch_add(
            std::mem::take(&mut self.pruned_dominance),
            Ordering::Relaxed,
        );
    }

    /// Replays a frontier prefix onto this (fresh) worker.
    pub fn apply_prefix(&mut self, prefix: &[(NodeId, ProcId, Weight)]) {
        for &(v, p, st) in prefix {
            self.commit(v, p, st);
        }
    }

    /// Applies one placement and its ready-set/bound bookkeeping.
    fn commit(&mut self, v: NodeId, p: ProcId, st: Weight) {
        // Undo token intentionally dropped when the caller never
        // reverts (prefix replay); `descend` keeps it.
        let _ = self.ps.place_tracked(v, p, st);
        let fin = self.ps.finish_of(v);
        self.path_lb = self.path_lb.max(fin + self.inst.tail[v.index()]);
        self.makespan = self.makespan.max(fin);
        self.last_start = st;
        self.rem_work -= self.inst.g.node_weight(v);
        let pos = self
            .ready
            .iter()
            .position(|&x| x == v)
            .expect("branch task is ready");
        self.ready.swap_remove(pos);
        for (s, _) in self.inst.g.succs(v) {
            self.pending[s.index()] -= 1;
            if self.pending[s.index()] == 0 {
                self.ready.push(s);
            }
        }
    }

    /// The admissible lower bound for the current prefix: max of the
    /// placed critical-path bound, the ready-task release bound, and
    /// (bounded machines) the load bound.
    fn lower_bound(&self) -> Weight {
        let mut lb = self.makespan.max(self.path_lb);
        for &v in &self.ready {
            // A ready task cannot start before its placed predecessors
            // finish (zero-communication relaxation) nor before
            // startup, and carries its full b-level after that.
            let mut release = self.inst.startup;
            for (pr, _) in self.inst.g.preds(v) {
                release = release.max(self.ps.finish_of(pr));
            }
            lb = lb.max(release + self.inst.blevel[v.index()]);
        }
        if let Some(p) = self.inst.limit {
            lb = lb.max(self.load_bound(p));
        }
        lb
    }

    /// Water-filling bound: the smallest `T` such that the `m`
    /// least-busy processors offer at least `rem_work` machine time
    /// before `T`, where `m` caps at the processors the remaining
    /// tasks could possibly use. Sorting availabilities ascending,
    /// `T_k = ceil((rem_work + sum of k smallest) / k)` is feasible as
    /// soon as `T_k` does not reach the next availability; the walk is
    /// monotone, so the first feasible `T_k` is the bound.
    fn load_bound(&self, limit: usize) -> Weight {
        if self.rem_work == 0 {
            return 0;
        }
        let opened = self.ps.num_procs();
        let unplaced = self.inst.g.num_nodes() - self.ps.num_placed();
        let m = limit.min(opened + unplaced);
        let mut avails: Vec<Weight> = (0..opened)
            .map(|i| self.ps.avail_of(ProcId(i as u32)))
            .collect();
        avails.resize(m.max(opened), self.inst.startup);
        avails.truncate(m);
        avails.sort_unstable();
        let mut sum: Weight = 0;
        for k in 1..=m {
            sum += avails[k - 1];
            let t = (self.rem_work + sum).div_ceil(k as Weight);
            if k == m || t <= avails[k] {
                return t;
            }
        }
        unreachable!("the walk returns at k == m")
    }

    /// Enumerates the surviving children of the current node as
    /// `(task, processor, start)` triples, applying the sibling and
    /// start-order prunes and the per-child path bound.
    fn children(&mut self) -> Vec<(NodeId, ProcId, Weight)> {
        let inc = self.shared.incumbent.load(Ordering::Relaxed);
        // Branch highest b-level first so the first dive mimics a
        // list schedule and tightens the incumbent early.
        let mut cands: Vec<NodeId> = self.ready.clone();
        cands.sort_by_key(|v| (std::cmp::Reverse(self.inst.blevel[v.index()]), v.0));
        let mut seen_classes: u64 = 0;
        let mut out = Vec::new();
        for v in cands {
            let class = self.inst.class_rep[v.index()];
            if seen_classes & (1u64 << class) != 0 {
                self.pruned_dominance += 1;
                continue;
            }
            seen_classes |= 1u64 << class;
            let opened = self.ps.num_procs();
            let mut placements: Vec<(ProcId, Weight)> = (0..opened)
                .map(|p| {
                    let pid = ProcId(p as u32);
                    (pid, self.ps.est_on(v, pid))
                })
                .collect();
            if self.ps.can_open() {
                placements.push((ProcId(opened as u32), self.ps.est_new(v)));
            }
            // Earliest-start-first gives the child order a greedy bias.
            placements.sort_by_key(|&(p, st)| (st, p.0));
            for (p, st) in placements {
                if st < self.last_start {
                    self.pruned_dominance += 1;
                    continue;
                }
                if st + self.inst.blevel[v.index()] >= inc {
                    self.pruned_bound += 1;
                    continue;
                }
                out.push((v, p, st));
            }
        }
        out
    }

    /// Depth-first search below the current prefix.
    pub fn dfs(&mut self) {
        if self.shared.cut.load(Ordering::Relaxed) {
            return;
        }
        let explored = self.shared.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if explored > self.shared.node_budget {
            self.shared.cut.store(true, Ordering::Relaxed);
            return;
        }
        self.ticker = self.ticker.wrapping_add(1);
        if self.ticker & 0xff == 0 {
            if let Some(deadline) = self.shared.deadline {
                if Instant::now() >= deadline {
                    self.shared.cut.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
        if self.ready.is_empty() {
            debug_assert_eq!(self.ps.num_placed(), self.inst.g.num_nodes());
            self.offer();
            return;
        }
        if self.lower_bound() >= self.shared.incumbent.load(Ordering::Relaxed) {
            self.pruned_bound += 1;
            return;
        }
        for (v, p, st) in self.children() {
            // The incumbent may have improved while earlier siblings
            // ran; re-check the cheap path bound before descending.
            if st + self.inst.blevel[v.index()] >= self.shared.incumbent.load(Ordering::Relaxed) {
                self.pruned_bound += 1;
                continue;
            }
            self.descend(v, p, st);
        }
    }

    /// Places `(v, p, st)`, recurses, and restores every piece of
    /// worker state (LIFO with the kernel undo token).
    fn descend(&mut self, v: NodeId, p: ProcId, st: Weight) {
        let saved = (self.path_lb, self.makespan, self.last_start, self.rem_work);
        let undo = self.ps.place_tracked(v, p, st);
        let fin = self.ps.finish_of(v);
        self.path_lb = self.path_lb.max(fin + self.inst.tail[v.index()]);
        self.makespan = self.makespan.max(fin);
        self.last_start = st;
        self.rem_work -= self.inst.g.node_weight(v);
        let pos = self
            .ready
            .iter()
            .position(|&x| x == v)
            .expect("branch task is ready");
        self.ready.swap_remove(pos);
        for (s, _) in self.inst.g.succs(v) {
            self.pending[s.index()] -= 1;
            if self.pending[s.index()] == 0 {
                self.ready.push(s);
            }
        }

        self.dfs();

        // Restore by value: nested calls swap_remove, so positions
        // are not stable — scan for the released successors.
        for (s, _) in self.inst.g.succs(v) {
            if self.pending[s.index()] == 0 {
                let pos = self
                    .ready
                    .iter()
                    .position(|&x| x == s)
                    .expect("released successor still ready");
                self.ready.swap_remove(pos);
            }
            self.pending[s.index()] += 1;
        }
        self.ready.push(v);
        (self.path_lb, self.makespan, self.last_start, self.rem_work) = saved;
        self.ps.unplace(undo);
    }

    /// A complete leaf: race the makespan into the atomic incumbent
    /// and record the assignment under the mutex.
    fn offer(&mut self) {
        let mk = self.makespan;
        let mut cur = self.shared.incumbent.load(Ordering::Relaxed);
        while mk < cur {
            match self.shared.incumbent.compare_exchange(
                cur,
                mk,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        // Re-check under the lock: another worker may have recorded a
        // better leaf between the CAS and here.
        let mut best = self.shared.best.lock().expect("incumbent lock");
        if mk < best.makespan {
            best.makespan = mk;
            best.assignment = Some(self.ps.assignment());
        }
    }
}

/// Breadth-first expansion of the root into at least `target` open
/// prefixes (complete or pruned prefixes are resolved on the spot).
/// Each prefix becomes one unit of work for [`par_map_threads`]
/// (`dagsched_par`); expansion itself counts against the node budget.
pub(crate) fn expand_frontier<C: CostModel + ?Sized>(
    inst: &Instance<'_>,
    shared: &Shared,
    model: &C,
    target: usize,
) -> Vec<Prefix> {
    let mut frontier: std::collections::VecDeque<Prefix> = std::collections::VecDeque::new();
    frontier.push_back(Vec::new());
    while frontier.len() < target {
        let Some(prefix) = frontier.pop_front() else {
            break;
        };
        if shared.cut.load(Ordering::Relaxed) {
            frontier.push_front(prefix);
            break;
        }
        let mut w = Worker::new(inst, shared, model);
        w.apply_prefix(&prefix);
        let explored = shared.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if explored > shared.node_budget {
            shared.cut.store(true, Ordering::Relaxed);
            frontier.push_front(prefix);
            w.flush_counters();
            break;
        }
        if w.ready.is_empty() {
            w.offer();
            w.flush_counters();
            continue;
        }
        if w.lower_bound() >= shared.incumbent.load(Ordering::Relaxed) {
            w.pruned_bound += 1;
            w.flush_counters();
            continue;
        }
        let children = w.children();
        w.flush_counters();
        if children.is_empty() {
            continue;
        }
        for (v, p, st) in children {
            let mut child = prefix.clone();
            child.push((v, p, st));
            frontier.push_back(child);
        }
    }
    frontier.into()
}

/// Sibling equivalence classes: tasks with the same weight and the
/// same weighted predecessor/successor lists are interchangeable.
/// Returns the class index per node; class count is at most `n`
/// (node count is capped at 64, so a `u64` mask covers every class).
pub(crate) fn sibling_classes(g: &Dag) -> Vec<u32> {
    type Signature = (Weight, Vec<(u32, Weight)>, Vec<(u32, Weight)>);
    let mut classes: Vec<Signature> = Vec::new();
    let mut rep = Vec::with_capacity(g.num_nodes());
    for v in g.nodes() {
        let mut preds: Vec<(u32, Weight)> = g.preds(v).map(|(p, w)| (p.0, w)).collect();
        preds.sort_unstable();
        let mut succs: Vec<(u32, Weight)> = g.succs(v).map(|(s, w)| (s.0, w)).collect();
        succs.sort_unstable();
        let sig = (g.node_weight(v), preds, succs);
        match classes.iter().position(|c| *c == sig) {
            Some(i) => rep.push(i as u32),
            None => {
                classes.push(sig);
                rep.push((classes.len() - 1) as u32);
            }
        }
    }
    rep
}

/// The admissible lower bound of the empty prefix — what `solve`
/// reports when a cutoff leaves the optimum bracketed.
pub(crate) fn root_lower_bound<C: CostModel + ?Sized>(
    inst: &Instance<'_>,
    shared: &Shared,
    model: &C,
) -> Weight {
    Worker::new(inst, shared, model).lower_bound()
}

/// Runs the search serially to exhaustion (or cutoff).
pub(crate) fn run_serial<C: CostModel + ?Sized>(inst: &Instance<'_>, shared: &Shared, model: &C) {
    let mut w = Worker::new(inst, shared, model);
    w.dfs();
    w.flush_counters();
}

/// Runs the search across `threads` workers: splits the root into a
/// frontier of prefixes and solves each under the shared incumbent.
pub(crate) fn run_parallel<C: CostModel + ?Sized + Sync>(
    inst: &Instance<'_>,
    shared: &Shared,
    model: &C,
    threads: usize,
) {
    let prefixes = expand_frontier(inst, shared, model, threads * 8);
    dagsched_par::par_map_threads(&prefixes, threads, |_, prefix| {
        let mut w = Worker::new(inst, shared, model);
        w.apply_prefix(prefix);
        w.dfs();
        w.flush_counters();
    });
}
