//! Exact optimality anchoring for the 1994 heuristic comparison.
//!
//! The paper compares its five heuristics (and our extensions) only
//! against *each other* — none of its tables say how far any of them
//! sits from the true optimum. This crate adds that missing anchor
//! for small graphs: [`solve`] runs a parallel branch-and-bound over
//! semi-active schedules (the same placement semantics as the shared
//! scheduling kernel) and returns either a **proven optimum** or, when
//! a budget cuts the search, the best incumbent bracketed by an
//! admissible lower bound.
//!
//! Minimizing makespan with communication delays is strongly
//! NP-hard, so the solver is honest about scale: graphs above
//! [`ExactConfig::max_nodes`] (default 20, hard cap 64) are rejected
//! with [`ExactError::TooLarge`] and budgets make every call an
//! *anytime* call — there is always a valid schedule in the result
//! because the search is seeded with the best heuristic schedule.
//! That seeding also guarantees the reported optimum is never worse
//! than any registered heuristic, which is what makes per-heuristic
//! "gap to optimal" tables well-defined.
//!
//! See `docs/EXACT.md` for the search design, the pruning soundness
//! arguments and the `proven`-flag semantics on asymmetric machines.

pub mod brute;
mod search;

use dagsched_core::{all_heuristics, Scheduler};
use dagsched_dag::{Dag, Weight};
use dagsched_obs as obs;
use dagsched_sim::{Machine, ProcId, Schedule};
use std::time::{Duration, Instant};

/// Budgets and limits for one [`solve`] call.
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Reject graphs with more nodes than this (hard cap 64 — the
    /// sibling-class mask is a `u64`). The default of 20 keeps
    /// un-budgeted solves comfortably sub-second.
    pub max_nodes: usize,
    /// Stop after expanding this many search nodes. Node budgets are
    /// deterministic for the serial search (`threads = 1`), which is
    /// what reproducible experiment runs use.
    pub node_budget: Option<u64>,
    /// Stop after this much wall clock. Inherently nondeterministic;
    /// meant for interactive and server use.
    pub time_budget: Option<Duration>,
    /// Worker threads; `0` means [`dagsched_par::default_threads`],
    /// `1` forces the serial (deterministic) search.
    pub threads: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: 20,
            node_budget: Some(5_000_000),
            time_budget: None,
            threads: 0,
        }
    }
}

impl ExactConfig {
    /// The configuration reproducible experiment runs use: serial
    /// search, node budget only (no wall clock), so identical inputs
    /// explore an identical tree.
    pub fn deterministic(node_budget: u64) -> Self {
        ExactConfig {
            max_nodes: 20,
            node_budget: Some(node_budget),
            time_budget: None,
            threads: 1,
        }
    }
}

/// Why [`solve`] refused to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The graph exceeds the configured node cap; use a heuristic (or
    /// [`ExactScheduler`], which falls back automatically).
    TooLarge { nodes: usize, max: usize },
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::TooLarge { nodes, max } => write!(
                f,
                "graph has {nodes} nodes but exact search caps at {max}; \
                 raise max_nodes (hard cap 64) or use a heuristic"
            ),
        }
    }
}

impl std::error::Error for ExactError {}

/// The outcome of a branch-and-bound run. Always carries a valid
/// schedule; `proven` says whether its makespan is a certified
/// optimum or just the best incumbent when a budget (or machine
/// asymmetry — see [`ExactResult::proven`]) stopped short of a proof.
#[derive(Debug)]
pub struct ExactResult {
    /// The best schedule found (never worse than any registered
    /// heuristic — they seed the incumbent).
    pub schedule: Schedule,
    /// `schedule.makespan()`, cached.
    pub makespan: Weight,
    /// The best admissible lower bound: equals `makespan` when
    /// `proven`, else brackets the unknown optimum from below.
    pub lower_bound: Weight,
    /// Whether `makespan` is a certified optimum. Requires either the
    /// root lower bound to meet the incumbent, or an exhausted search
    /// on a machine whose processors the symmetry probe found
    /// interchangeable (dense processor ids only enumerate one
    /// representative per processor relabeling, which is exhaustive
    /// only then).
    pub proven: bool,
    /// Search nodes expanded (0 when the root bound already proved
    /// the seed optimal).
    pub nodes_explored: u64,
    /// Subtrees cut by lower bounds.
    pub pruned_bound: u64,
    /// Branches cut by start-order dominance and sibling symmetry.
    pub pruned_dominance: u64,
    /// Whether a node or time budget stopped the search early.
    pub cutoff: bool,
}

/// Exact branch-and-bound makespan minimization of `g` on `machine`.
///
/// Seeds the incumbent with every registered heuristic, then searches
/// semi-active schedules depth-first under lower-bound, dominance and
/// sibling-symmetry pruning (serial or work-split parallel per
/// [`ExactConfig::threads`]). Deterministic whenever `threads == 1`
/// and no `time_budget` is set.
pub fn solve(g: &Dag, machine: &dyn Machine, cfg: &ExactConfig) -> Result<ExactResult, ExactError> {
    let n = g.num_nodes();
    let max = cfg.max_nodes.min(64);
    if n > max {
        obs::counter_add("exact.rejected", 1);
        return Err(ExactError::TooLarge { nodes: n, max });
    }
    let _span = obs::span!("exact.solve");
    if n == 0 {
        return Ok(ExactResult {
            schedule: Schedule::new(g, Vec::new()),
            makespan: 0,
            lower_bound: 0,
            proven: true,
            nodes_explored: 0,
            pruned_bound: 0,
            pruned_dominance: 0,
            cutoff: false,
        });
    }

    // Seed: the best heuristic schedule upper-bounds the optimum and
    // guarantees the result is never worse than any heuristic.
    let mut seed: Option<(Weight, Schedule)> = None;
    for h in all_heuristics() {
        let s = h.schedule(g, machine);
        let mk = s.makespan();
        if seed.as_ref().is_none_or(|(best, _)| mk < *best) {
            seed = Some((mk, s));
        }
    }
    let (seed_mk, seed_schedule) = seed.expect("registry is non-empty");

    let inst = search::Instance::new(g, machine);
    let shared = search::Shared::new(
        seed_mk,
        cfg.node_budget.unwrap_or(u64::MAX),
        cfg.time_budget.map(|d| Instant::now() + d),
    );
    let root_lb = search::root_lower_bound(&inst, &shared, machine);
    debug_assert!(
        root_lb <= seed_mk,
        "admissible bound exceeds a real schedule"
    );

    let mut cutoff = false;
    if root_lb < seed_mk {
        let threads = match cfg.threads {
            0 => dagsched_par::default_threads(),
            t => t,
        };
        if threads <= 1 {
            search::run_serial(&inst, &shared, machine);
        } else {
            search::run_parallel(&inst, &shared, machine, threads);
        }
        cutoff = shared.cut.load(std::sync::atomic::Ordering::Relaxed);
    }

    let nodes_explored = shared.nodes.load(std::sync::atomic::Ordering::Relaxed);
    let pruned_bound = shared
        .pruned_bound
        .load(std::sync::atomic::Ordering::Relaxed);
    let pruned_dominance = shared
        .pruned_dominance
        .load(std::sync::atomic::Ordering::Relaxed);
    let best = shared.best.into_inner().expect("search workers joined");
    let (makespan, schedule) = match best.assignment {
        Some(raw) => (best.makespan, Schedule::new(g, raw)),
        None => (seed_mk, seed_schedule),
    };
    debug_assert_eq!(makespan, schedule.makespan());

    // Dense processor ids only cover one representative per processor
    // relabeling; exhaustion proves optimality only when relabeling is
    // cost-free, i.e. the machine's processors are interchangeable.
    let symmetric = processors_interchangeable(machine, n);
    let proven = root_lb >= makespan || (symmetric && !cutoff);
    let lower_bound = if proven { makespan } else { root_lb };

    obs::counter_add("exact.solve", 1);
    obs::counter_add("exact.nodes", nodes_explored);
    obs::counter_add("exact.pruned.bound", pruned_bound);
    obs::counter_add("exact.pruned.dominance", pruned_dominance);
    obs::counter_add(
        if proven {
            "exact.proven"
        } else {
            "exact.cutoff"
        },
        1,
    );

    Ok(ExactResult {
        schedule,
        makespan,
        lower_bound,
        proven,
        nodes_explored,
        pruned_bound,
        pruned_dominance,
        cutoff,
    })
}

/// Probes whether every processor the search could touch is
/// interchangeable: zero self-cost and pair-independent communication
/// cost across sampled edge weights. Bounded machines are probed over
/// their full processor range (capped at 64 ids — beyond the node cap
/// no optimal schedule distinguishes more); unbounded machines over a
/// scattered sample. The in-tree unbounded machines (clique flavors)
/// are genuinely uniform, so the probe is decisive for every machine
/// `parse_machine` can build.
fn processors_interchangeable(machine: &dyn Machine, n: usize) -> bool {
    let ids: Vec<u32> = match machine.max_procs() {
        Some(p) => (0..p.min(64) as u32).collect(),
        None => (0..n.max(2) as u32).chain([97, 1009]).collect(),
    };
    if ids.len() < 2 {
        return true;
    }
    const WEIGHTS: [Weight; 3] = [1, 7, 1000];
    for &w in &WEIGHTS {
        let reference = machine.comm_cost(ProcId(ids[0]), ProcId(ids[1]), w);
        for &i in &ids {
            if machine.comm_cost(ProcId(i), ProcId(i), w) != 0 {
                return false;
            }
            for &j in &ids {
                if i != j && machine.comm_cost(ProcId(i), ProcId(j), w) != reference {
                    return false;
                }
            }
        }
    }
    true
}

/// [`solve`] behind the standard [`Scheduler`] trait, named `EXACT`.
///
/// Deliberately **not** registered in
/// [`all_heuristics`](dagsched_core::all_heuristics): it is an anchor,
/// not a contestant, and its cost profile (exponential, budgeted) does
/// not belong in the paper's sweeps. Graphs over the node cap fall
/// back to the best of MCP, HU and HLFET, so the trait's infallible
/// contract holds on any input.
pub struct ExactScheduler {
    pub config: ExactConfig,
}

impl ExactScheduler {
    pub fn new(config: ExactConfig) -> Self {
        ExactScheduler { config }
    }
}

impl Default for ExactScheduler {
    fn default() -> Self {
        ExactScheduler::new(ExactConfig::default())
    }
}

impl Scheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        "EXACT"
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        match solve(g, machine, &self.config) {
            Ok(result) => result.schedule,
            Err(ExactError::TooLarge { .. }) => {
                obs::counter_add("exact.fallback", 1);
                let fallbacks: [Box<dyn Scheduler>; 3] = [
                    Box::new(dagsched_core::Mcp::default()),
                    Box::new(dagsched_core::Hu),
                    Box::new(dagsched_core::Hlfet),
                ];
                fallbacks
                    .iter()
                    .map(|h| h.schedule(g, machine))
                    .min_by_key(Schedule::makespan)
                    .expect("fallback registry is non-empty")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::fixtures::{coarse_fork_join, fig16, fine_fork_join};
    use dagsched_core::parse_machine;
    use dagsched_dag::DagBuilder;

    fn uniform() -> Box<dyn Machine> {
        parse_machine("uniform").unwrap()
    }

    #[test]
    fn agrees_with_brute_force_on_the_paper_fixtures() {
        // The unbounded-machine cases for the 8-node fixtures are
        // left to the B&B-only tests: the unpruned enumerator is
        // factorial in open processors and would dominate test time.
        let cases = [
            (
                "fig16",
                fig16(),
                vec!["uniform", "clique", "bounded:2", "bounded:3"],
            ),
            ("coarse", coarse_fork_join(), vec!["bounded:2", "bounded:3"]),
            ("fine", fine_fork_join(), vec!["uniform", "bounded:2"]),
        ];
        for (name, g, machines) in cases {
            for spec in machines {
                let m = parse_machine(spec).unwrap();
                let want = brute::optimal_makespan(&g, m.as_ref());
                let got = solve(&g, m.as_ref(), &ExactConfig::default()).unwrap();
                assert!(got.proven, "{name} on {spec} should be proven");
                assert_eq!(got.makespan, want, "{name} on {spec}");
                assert_eq!(got.lower_bound, got.makespan, "{name} on {spec}");
            }
        }
    }

    #[test]
    fn chains_are_provably_serial() {
        let mut b = DagBuilder::new();
        let mut prev = b.add_node(7);
        for w in [3u64, 11, 2, 9] {
            let v = b.add_node(w);
            b.add_edge(prev, v, 4).unwrap();
            prev = v;
        }
        let g = b.build().unwrap();
        let r = solve(&g, uniform().as_ref(), &ExactConfig::default()).unwrap();
        assert!(r.proven);
        assert_eq!(r.makespan, g.serial_time());
    }

    #[test]
    fn independent_tasks_saturate_a_bounded_machine() {
        let mut b = DagBuilder::new();
        for _ in 0..6 {
            b.add_node(10);
        }
        let g = b.build().unwrap();
        let m = parse_machine("bounded:2").unwrap();
        let r = solve(&g, m.as_ref(), &ExactConfig::default()).unwrap();
        assert!(r.proven);
        // 6 × 10 of work over 2 processors: the load bound pins 30.
        assert_eq!(r.makespan, 30);

        let wide = solve(&g, uniform().as_ref(), &ExactConfig::default()).unwrap();
        assert!(wide.proven);
        assert_eq!(wide.makespan, 10);
    }

    #[test]
    fn a_starved_budget_still_returns_the_heuristic_incumbent() {
        let g = coarse_fork_join();
        let cfg = ExactConfig {
            node_budget: Some(1),
            ..ExactConfig::default()
        };
        let r = solve(&g, uniform().as_ref(), &cfg).unwrap();
        assert!(r.cutoff);
        assert!(!r.proven);
        assert!(r.lower_bound <= r.makespan);
        // The incumbent is the best heuristic schedule, still valid.
        assert_eq!(r.makespan, r.schedule.makespan());
        let full = solve(&g, uniform().as_ref(), &ExactConfig::default()).unwrap();
        assert!(full.makespan <= r.makespan);
    }

    #[test]
    fn parallel_and_serial_searches_prove_the_same_optimum() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            for spec in ["uniform", "bounded:2"] {
                let m = parse_machine(spec).unwrap();
                let serial = solve(
                    &g,
                    m.as_ref(),
                    &ExactConfig {
                        threads: 1,
                        ..ExactConfig::default()
                    },
                )
                .unwrap();
                let parallel = solve(
                    &g,
                    m.as_ref(),
                    &ExactConfig {
                        threads: 4,
                        ..ExactConfig::default()
                    },
                )
                .unwrap();
                assert!(serial.proven && parallel.proven, "{spec}");
                assert_eq!(serial.makespan, parallel.makespan, "{spec}");
            }
        }
    }

    #[test]
    fn asymmetric_machines_never_claim_a_proof_by_exhaustion() {
        // fine_fork_join's optimum (serial: huge communication) sits
        // far above its computation-only and load bounds, so no
        // root-bound proof is possible — and on a hop-cost topology
        // the exhausted dense-id search must not certify either.
        // (ring:3 is secretly symmetric — every pair sits at hop
        // distance 1 — so it must be 5 wide to have unequal pairs.)
        let g = fine_fork_join();
        let m = parse_machine("ring:5").unwrap();
        let r = solve(&g, m.as_ref(), &ExactConfig::default()).unwrap();
        assert!(!r.proven, "hop-cost topologies cannot certify optimality");
        assert!(!r.cutoff, "this graph is small enough to exhaust");
        assert!(r.lower_bound < r.makespan, "a genuine interval remains");
        // Both solvers enumerate the same dense-processor-id space, so
        // an exhausted (if uncertified) search still matches brute
        // force exactly there.
        assert_eq!(r.makespan, brute::optimal_makespan(&g, m.as_ref()));
    }

    #[test]
    fn empty_and_single_node_graphs_are_trivial() {
        let empty = DagBuilder::new().build().unwrap();
        let r = solve(&empty, uniform().as_ref(), &ExactConfig::default()).unwrap();
        assert!(r.proven);
        assert_eq!(r.makespan, 0);

        let mut b = DagBuilder::new();
        b.add_node(42);
        let single = b.build().unwrap();
        let r = solve(&single, uniform().as_ref(), &ExactConfig::default()).unwrap();
        assert!(r.proven);
        assert_eq!(r.makespan, 42);
    }

    #[test]
    fn oversized_graphs_are_rejected_and_the_scheduler_falls_back() {
        let mut b = DagBuilder::new();
        for _ in 0..25 {
            b.add_node(1);
        }
        let g = b.build().unwrap();
        let err = solve(&g, uniform().as_ref(), &ExactConfig::default()).unwrap_err();
        assert_eq!(err, ExactError::TooLarge { nodes: 25, max: 20 });
        assert!(err.to_string().contains("25 nodes"));

        let m = uniform();
        let s = ExactScheduler::default().schedule(&g, m.as_ref());
        assert_eq!(s.num_tasks(), 25);
        assert!(dagsched_sim::validate::check(&g, m.as_ref(), &s).is_empty());
    }

    #[test]
    fn the_scheduler_trait_serves_proven_optima() {
        let g = fig16();
        let m = uniform();
        let sched = ExactScheduler::default();
        assert_eq!(Scheduler::name(&sched), "EXACT");
        let s = sched.schedule(&g, m.as_ref());
        assert!(dagsched_sim::validate::check(&g, m.as_ref(), &s).is_empty());
        assert_eq!(s.makespan(), brute::optimal_makespan(&g, m.as_ref()));
    }

    #[test]
    fn every_heuristic_is_at_least_the_proven_optimum() {
        for g in [fig16(), coarse_fork_join(), fine_fork_join()] {
            let m = uniform();
            let opt = solve(&g, m.as_ref(), &ExactConfig::default()).unwrap();
            assert!(opt.proven);
            for h in all_heuristics() {
                let mk = h.schedule(&g, m.as_ref()).makespan();
                assert!(
                    mk >= opt.makespan,
                    "{} beat the proven optimum: {mk} < {}",
                    h.name(),
                    opt.makespan
                );
            }
        }
    }
}
