//! An independent exhaustive enumerator for differential testing.
//!
//! Deliberately shares **no code** with the branch-and-bound search:
//! no [`PartialSchedule`](dagsched_core::scheduler::kernel), no
//! b-level bounds, no dominance or sibling pruning. It enumerates
//! every semi-active schedule over dense processor ids by cloning the
//! whole state at each branch, keeping only the trivially sound
//! incumbent cut (a partial makespan can never shrink). If the two
//! solvers ever disagree on an optimum, the bug is in exactly one of
//! two small files.

use dagsched_dag::{Dag, Weight};
use dagsched_sim::{Machine, ProcId};

/// Hard cap: the enumerator is factorial in both tasks and processors.
pub const MAX_BRUTE_NODES: usize = 8;

#[derive(Clone)]
struct State {
    pending: Vec<u32>,
    proc_of: Vec<Option<ProcId>>,
    finish: Vec<Weight>,
    avail: Vec<Weight>,
    placed: usize,
    makespan: Weight,
}

/// The optimal makespan of `g` on `machine` over dense-processor
/// semi-active schedules, by exhaustive enumeration.
///
/// # Panics
///
/// If `g` has more than [`MAX_BRUTE_NODES`] nodes.
pub fn optimal_makespan(g: &Dag, machine: &dyn Machine) -> Weight {
    let n = g.num_nodes();
    assert!(
        n <= MAX_BRUTE_NODES,
        "brute force caps at {MAX_BRUTE_NODES} nodes, got {n}"
    );
    if n == 0 {
        return 0;
    }
    let mut pending = vec![0u32; n];
    for v in g.nodes() {
        for (s, _) in g.succs(v) {
            pending[s.index()] += 1;
        }
    }
    let state = State {
        pending,
        proc_of: vec![None; n],
        finish: vec![0; n],
        avail: Vec::new(),
        placed: 0,
        makespan: 0,
    };
    let mut best = Weight::MAX;
    recurse(g, machine, &state, &mut best);
    best
}

fn recurse(g: &Dag, machine: &dyn Machine, state: &State, best: &mut Weight) {
    if state.makespan >= *best {
        return;
    }
    if state.placed == g.num_nodes() {
        *best = state.makespan;
        return;
    }
    for v in g.nodes() {
        if state.proc_of[v.index()].is_some() || state.pending[v.index()] != 0 {
            continue;
        }
        let opened = state.avail.len();
        let can_open = machine.max_procs().is_none_or(|b| opened < b);
        let options = opened + usize::from(can_open);
        for p in 0..options {
            let pid = ProcId(p as u32);
            // Earliest start on `pid`: data arrival over the machine's
            // links, floored at the processor's availability (startup
            // for a fresh one).
            let floor = if p < opened {
                state.avail[p]
            } else {
                machine.startup_cost()
            };
            let data = g
                .preds(v)
                .map(|(pr, w)| {
                    let pp = state.proc_of[pr.index()].expect("predecessor placed");
                    state.finish[pr.index()] + machine.comm_cost(pp, pid, w)
                })
                .max()
                .unwrap_or(0);
            let start = data.max(floor);
            let fin = start + g.node_weight(v);

            let mut child = state.clone();
            if p == opened {
                child.avail.push(0);
            }
            child.avail[p] = fin;
            child.proc_of[v.index()] = Some(pid);
            child.finish[v.index()] = fin;
            child.placed += 1;
            child.makespan = child.makespan.max(fin);
            for (s, _) in g.succs(v) {
                child.pending[s.index()] -= 1;
            }
            recurse(g, machine, &child, best);
        }
    }
}
