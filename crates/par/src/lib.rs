//! # dagsched-par — a small work-stealing parallel map
//!
//! The experiment runner evaluates five heuristics over 2100 graphs;
//! per-graph cost varies wildly (CLANS on a primitive-heavy graph is
//! orders of magnitude slower than HU on a chain), so static chunking
//! wastes cores. This crate provides a classic work-stealing
//! `par_map` in ~150 lines on top of `crossbeam-deque`:
//!
//! * every item index starts in a global [`Injector`];
//! * each worker drains its local FIFO deque, refills in batches from
//!   the injector, and steals from peers when both run dry;
//! * results land in pre-allocated slots, so no ordering or locking is
//!   needed on the hot path (one `parking_lot` mutex guards only the
//!   slot vector hand-back).
//!
//! ## Panic semantics
//!
//! [`par_map`] / [`par_map_threads`] treat a panicking closure as
//! fatal: the panic aborts the *whole* map and re-raises on the caller
//! thread. Note the precise mechanics — the worker's scope join
//! re-panics with its own message (`"a parallel map worker
//! panicked"`), so the original payload is reported by the default
//! panic hook on the worker thread but is **not** what the caller's
//! `catch_unwind` observes. Callers that need the payload, or that
//! must not lose the surviving items' results, should use the
//! supervised variant instead:
//!
//! [`par_map_supervised`] contains a panic to the item that raised it.
//! The slot records an [`ItemPanic`] (with the payload message), the
//! worker resumes with the next task — logically a worker restart,
//! without the thread churn — and every other item completes normally.
//! This is the substrate of the crash-safe corpus sweeps in
//! `dagsched-experiments`.
//!
//! ```
//! let squares = dagsched_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use crossbeam_utils::thread as cb_thread;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Hard ceiling for [`default_threads`], including the
/// `DAGSCHED_THREADS` override.
pub const MAX_THREADS: usize = 256;

/// The default worker count: available parallelism, capped at 32 (the
/// corpus sweep saturates memory bandwidth long before that).
///
/// The `DAGSCHED_THREADS` environment variable overrides the detected
/// count, clamped to `1..=`[`MAX_THREADS`]. A value that does not
/// parse as a positive integer falls back to the detected count, with
/// a one-time warning on stderr.
pub fn default_threads() -> usize {
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(32);
    match std::env::var("DAGSCHED_THREADS") {
        Err(_) => detected,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid DAGSCHED_THREADS={raw:?} \
                         (want an integer in 1..={MAX_THREADS}); using {detected}"
                    );
                });
                detected
            }
        },
    }
}

/// Applies `f(index, &item)` to every item, in parallel, preserving
/// input order in the output. Uses [`default_threads`] workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(items, default_threads(), f)
}

/// As [`par_map`] with an explicit worker count (`0` is treated as 1;
/// `1` runs inline with no thread machinery).
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One result slot per item; each worker fills disjoint slots and
    // hands the vector fragments back through a mutex at the end.
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());

    let injector: Injector<usize> = Injector::new();
    for i in 0..items.len() {
        injector.push(i);
    }
    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();

    cb_thread::scope(|scope| {
        for (wid, local) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let f = &f;
            scope.spawn(move |_| {
                let mut produced: Vec<(usize, R)> = Vec::new();
                loop {
                    let task = find_task(&local, injector, stealers, wid);
                    match task {
                        Some(i) => produced.push((i, f(i, &items[i]))),
                        None => break,
                    }
                }
                let mut slots = slots.lock();
                for (i, r) in produced {
                    debug_assert!(slots[i].is_none(), "each index maps exactly once");
                    slots[i] = Some(r);
                }
            });
        }
    })
    .expect("a parallel map worker panicked");

    slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all slots were filled"))
        .collect()
}

/// A panic contained to one item of a supervised map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// Best-effort extraction of the panic payload's message.
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// As [`par_map`], but a panic in `f` is contained to the item that
/// raised it: the slot records an [`ItemPanic`] carrying the payload
/// message, the worker resumes with the next task, and every other
/// item still completes. Uses [`default_threads`] workers.
pub fn par_map_supervised<T, R, F>(items: &[T], f: F) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_supervised_threads(items, default_threads(), f)
}

/// As [`par_map_supervised`] with an explicit worker count (`0` is
/// treated as 1; `1` runs inline with no thread machinery).
pub fn par_map_supervised_threads<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // Containment happens per item, so the plain map's machinery is
    // reused verbatim: a caught panic is just another result value and
    // can never poison the scope join.
    par_map_threads(items, threads, |i, item| {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| ItemPanic {
            index: i,
            message: panic_message(payload.as_ref()),
        })
    })
}

/// Work-finding: local deque first, then batched steals from the
/// injector, then peers (skipping self).
fn find_task(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
    wid: usize,
) -> Option<usize> {
    if let Some(i) = local.pop() {
        return Some(i);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(i) => return Some(i),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    // Peers: keep retrying while any steal reports contention.
    loop {
        let mut retry = false;
        for (sid, s) in stealers.iter().enumerate() {
            if sid == wid {
                continue;
            }
            match s.steal() {
                Steal::Success(i) => return Some(i),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Parallel for-each over `0..n` (index-only variant, used when the
/// work writes through interior-mutable structures of its own).
pub fn par_for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |_, &i| f(i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_in_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = par_map(&input, |_, &x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn index_argument_matches_position() {
        let input = vec!["a", "b", "c", "d"];
        let out = par_map(&input, |i, &s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_thread_counts() {
        let input: Vec<u64> = (0..500).collect();
        for threads in [0usize, 1, 2, 7, 64] {
            let out = par_map_threads(&input, threads, |_, &x| x + 1);
            assert_eq!(out.len(), 500);
            assert_eq!(out[499], 500);
        }
    }

    #[test]
    fn every_item_visited_exactly_once() {
        let n = 5000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let input: Vec<usize> = (0..n).collect();
        par_map(&input, |_, &i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn imbalanced_work_completes() {
        // A few huge items among many tiny ones exercises stealing.
        let input: Vec<u64> = (0..64)
            .map(|i| if i % 16 == 0 { 200_000 } else { 10 })
            .collect();
        let out = par_map(&input, |_, &iters| {
            let mut acc = 0u64;
            for k in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn par_for_each_index_covers_range() {
        let hits: Vec<AtomicUsize> = (0..256).map(|_| AtomicUsize::new(0)).collect();
        par_for_each_index(256, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let input: Vec<u32> = (0..100).collect();
        par_map_threads(&input, 4, |_, &x| {
            if x == 50 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn supervised_map_contains_panics_to_their_item() {
        let input: Vec<u32> = (0..200).collect();
        let out = par_map_supervised_threads(&input, 4, |_, &x| {
            if x % 50 == 7 {
                panic!("boom on {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 200);
        for (i, r) in out.iter().enumerate() {
            if i % 50 == 7 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, i);
                assert_eq!(p.message, format!("boom on {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2);
            }
        }
    }

    #[test]
    fn supervised_map_matches_plain_map_when_nothing_panics() {
        let input: Vec<u64> = (0..512).collect();
        let plain = par_map(&input, |_, &x| x + 3);
        let supervised: Vec<u64> = par_map_supervised(&input, |_, &x| x + 3)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(plain, supervised);
    }

    #[test]
    fn supervised_worker_survives_repeated_panics() {
        // More panicking items than workers: every worker is forced to
        // absorb several panics and keep draining.
        let input: Vec<u32> = (0..64).collect();
        let out = par_map_supervised_threads(&input, 2, |_, &x| {
            if x % 2 == 0 {
                panic!("even");
            }
            x
        });
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 32);
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 32);
    }

    #[test]
    fn item_panic_display_carries_index_and_message() {
        let p = ItemPanic {
            index: 9,
            message: "x".into(),
        };
        assert_eq!(p.to_string(), "item 9 panicked: x");
    }

    #[test]
    fn default_threads_env_override_is_clamped_and_validated() {
        // Env mutation: this test owns the variable; the other tests
        // in this module never read it.
        std::env::set_var("DAGSCHED_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("DAGSCHED_THREADS", "999999");
        assert_eq!(default_threads(), MAX_THREADS);
        let detected = {
            std::env::remove_var("DAGSCHED_THREADS");
            default_threads()
        };
        for bad in ["0", "-2", "lots", ""] {
            std::env::set_var("DAGSCHED_THREADS", bad);
            assert_eq!(default_threads(), detected, "DAGSCHED_THREADS={bad:?}");
        }
        std::env::remove_var("DAGSCHED_THREADS");
    }

    #[test]
    fn results_match_sequential_for_nontrivial_f() {
        let input: Vec<u64> = (0..2048).collect();
        let seq: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(x) ^ 0xabcd).collect();
        let par = par_map(&input, |_, &x| x.wrapping_mul(x) ^ 0xabcd);
        assert_eq!(seq, par);
    }
}
