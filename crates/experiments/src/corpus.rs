//! The random-graph corpus of the paper's Table 1.
//!
//! 2100 graphs divided into 60 sets by the three classification
//! criteria: 5 granularity bands × 4 anchor out-degrees (2–5) × 3 node
//! weight ranges × 35 graphs per set. Every graph is generated
//! deterministically from `(seed, set, index)` so any subset of the
//! study reproduces bit-for-bit.

use dagsched_dag::{metrics, Dag};
use dagsched_gen::pdg::{generate, PdgSpec};
use dagsched_gen::spec::{GranularityBand, WeightRange, PAPER_ANCHORS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifies one of the 60 corpus sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetKey {
    /// Granularity band.
    pub band: GranularityBand,
    /// Anchor out-degree (2–5).
    pub anchor: usize,
    /// Node weight range.
    pub weights: WeightRange,
}

/// One generated graph together with its set and measured
/// classification.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The set this graph belongs to.
    pub key: SetKey,
    /// Index within the set.
    pub index: usize,
    /// The graph itself.
    pub graph: Dag,
    /// Measured granularity (always inside `key.band`).
    pub granularity: f64,
}

/// Parameters of the corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Graphs per set (paper: 35 → 2100 total).
    pub graphs_per_set: usize,
    /// Node count range per graph (the paper does not pin one; the
    /// reproduction draws 60–110 uniformly — chosen so the corpus
    /// carries enough width for the paper's speedup magnitudes).
    pub nodes: std::ops::RangeInclusive<usize>,
    /// Master seed.
    pub seed: u64,
    /// The three node weight ranges (§3.3 by default).
    pub weight_ranges: [WeightRange; 3],
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            graphs_per_set: 35,
            nodes: 60..=110,
            seed: 0x1994_0c99,
            weight_ranges: WeightRange::PAPER,
        }
    }
}

impl CorpusSpec {
    /// All 60 set keys in table order (band-major, then anchor, then
    /// weight range).
    pub fn set_keys(&self) -> Vec<SetKey> {
        let mut keys = Vec::with_capacity(60);
        for band in GranularityBand::ALL {
            for &anchor in &PAPER_ANCHORS {
                for &weights in &self.weight_ranges {
                    keys.push(SetKey {
                        band,
                        anchor,
                        weights,
                    });
                }
            }
        }
        keys
    }

    /// Total number of graphs.
    pub fn total_graphs(&self) -> usize {
        self.set_keys().len() * self.graphs_per_set
    }
}

/// Generates one corpus graph deterministically. Regenerates (with a
/// derived sub-seed) until the measured granularity classifies into
/// the requested band — the targeting pass almost always lands on the
/// first try.
pub fn generate_entry(spec: &CorpusSpec, key: SetKey, index: usize) -> CorpusEntry {
    for attempt in 0..64u64 {
        let seed = derive_seed(spec.seed, key, index, attempt);
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = rng.gen_range(spec.nodes.clone());
        let g = generate(
            &PdgSpec {
                nodes,
                anchor: key.anchor,
                weights: key.weights,
                band: key.band,
            },
            &mut rng,
        )
        .expect("corpus sets use validated specs");
        let gran = metrics::granularity(&g);
        if key.band.contains(gran) {
            return CorpusEntry {
                key,
                index,
                graph: g,
                granularity: gran,
            };
        }
    }
    unreachable!("granularity targeting failed 64 times for {key:?} #{index}")
}

/// The derived sub-seed for attempt 0 of `(key, index)` — the seed a
/// quarantine record carries so the offending graph can be replayed
/// standalone, and the jitter seed of the sweep engine's retry policy.
pub fn entry_seed(spec: &CorpusSpec, key: SetKey, index: usize) -> u64 {
    derive_seed(spec.seed, key, index, 0)
}

pub(crate) fn derive_seed(master: u64, key: SetKey, index: usize, attempt: u64) -> u64 {
    // SplitMix64-style mixing of the coordinates.
    let mut x = master
        ^ (key.anchor as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ key.weights.hi.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (band_ordinal(key.band) as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
        ^ (index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
        ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn band_ordinal(b: GranularityBand) -> usize {
    GranularityBand::ALL
        .iter()
        .position(|&x| x == b)
        .expect("band in ALL")
}

/// Generates the whole corpus, parallelized over graphs.
pub fn generate_corpus(spec: &CorpusSpec) -> Vec<CorpusEntry> {
    let mut coords = Vec::with_capacity(spec.total_graphs());
    for key in spec.set_keys() {
        for index in 0..spec.graphs_per_set {
            coords.push((key, index));
        }
    }
    dagsched_par::par_map(&coords, |_, &(key, index)| generate_entry(spec, key, index))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CorpusSpec {
        CorpusSpec {
            graphs_per_set: 2,
            nodes: 20..=30,
            ..Default::default()
        }
    }

    #[test]
    fn sixty_sets_in_table_order() {
        let spec = CorpusSpec::default();
        let keys = spec.set_keys();
        assert_eq!(keys.len(), 60);
        assert_eq!(spec.total_graphs(), 2100);
        // First row of Table 1: finest band, anchor 2, all ranges.
        assert_eq!(keys[0].band, GranularityBand::VeryFine);
        assert_eq!(keys[0].anchor, 2);
        assert_eq!(keys[0].weights, WeightRange::new(20, 100));
        assert_eq!(keys[2].weights, WeightRange::new(20, 400));
        assert_eq!(keys[3].anchor, 3);
        // Last: coarsest band, anchor 5, widest range.
        let last = keys.last().unwrap();
        assert_eq!(last.band, GranularityBand::VeryCoarse);
        assert_eq!(last.anchor, 5);
    }

    #[test]
    fn entries_classify_into_their_set() {
        let spec = small_spec();
        let corpus = generate_corpus(&spec);
        assert_eq!(corpus.len(), 120);
        for e in &corpus {
            assert!(e.key.band.contains(e.granularity), "{:?}", e.key);
            let (lo, hi) = metrics::node_weight_range(&e.graph).unwrap();
            assert!(lo >= e.key.weights.lo && hi <= e.key.weights.hi);
            assert!((20..=30).contains(&e.graph.num_nodes()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let key = spec.set_keys()[17];
        let a = generate_entry(&spec, key, 1);
        let b = generate_entry(&spec, key, 1);
        assert_eq!(a.graph, b.graph);
        // Different indices differ.
        let c = generate_entry(&spec, key, 0);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn different_master_seeds_differ() {
        let s1 = small_spec();
        let s2 = CorpusSpec {
            seed: 99,
            ..small_spec()
        };
        let key = s1.set_keys()[0];
        assert_ne!(
            generate_entry(&s1, key, 0).graph,
            generate_entry(&s2, key, 0).graph
        );
    }

    #[test]
    fn anchors_mostly_hit_target() {
        // The anchor pass targets the mode of the non-sink degrees;
        // verify it lands for a sample of sets.
        let spec = small_spec();
        for key in spec.set_keys().into_iter().step_by(7) {
            let e = generate_entry(&spec, key, 0);
            assert_eq!(
                metrics::anchor_out_degree_nonsink(&e.graph),
                key.anchor,
                "{key:?}"
            );
        }
    }
}
