//! # dagsched-experiments — the paper's numerical comparison testbed
//!
//! Regenerates every table and figure of Khan, McCreary & Jones
//! (ICPP 1994):
//!
//! * [`corpus`] — the 2100-graph corpus of Table 1: 5 granularity
//!   bands × 4 anchor out-degrees × 3 node weight ranges × 35 graphs;
//! * [`runner`] — runs the five heuristics over the corpus (in
//!   parallel via `dagsched-par`) and records the paper's measures;
//! * [`tables`] — Tables 2–11 as aggregations over the run records;
//! * [`figures`] — Figures 1–6 (the tables as per-heuristic series,
//!   with a plain-text chart renderer);
//! * [`optimality`] — exact-anchored "gap to optimal" reporting: a
//!   small-graph companion corpus solved to proven optimality by
//!   `dagsched-exact` branch-and-bound (`repro exact`);
//! * [`checkpoint`] — crash-safe sweeps: journaled checkpoints with
//!   checksummed JSONL records, resume-after-kill, retry with seeded
//!   backoff, and poison-graph quarantine;
//! * [`report`] — assembles the whole study into one report;
//! * [`telemetry`] — instrumented runs: one collector scope per
//!   (graph, heuristic), a JSONL trace stream (`--trace-out`) and a
//!   Chrome trace-event export (`--trace-format chrome`);
//! * [`progress`] — live `dagsched.progress.v1` heartbeats for
//!   checkpointed sweeps (`--progress`);
//! * [`reporter`] — ordered progress output for parallel runs.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro all                 # full study, all tables & figures
//! repro table 3             # just Table 3
//! repro figure 2            # just Figure 2
//! repro corpus              # Table 1 (corpus composition)
//! repro appendix            # the worked appendix example
//! repro html                # self-contained HTML report
//! repro spread              # Tables 3/4 with mean ± std cells
//! repro bounded             # extension: bounded-processor sweep
//! repro kernels             # extension: numerical-kernel study
//! repro select              # extension: scheduler-selection rule
//! repro duplication         # extension: task duplication (DSH)
//! repro contention          # extension: send-port contention
//! repro summary             # extension: per-heuristic overview
//! repro exact               # extension: gap to proven optimum
//! repro dump                # per-graph records as CSV
//! repro --graphs-per-set 10 --seed 7 all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod corpus;
pub mod extensions;
pub mod figures;
pub mod optimality;
pub mod progress;
pub mod report;
pub mod reporter;
pub mod runner;
pub mod tables;
pub mod telemetry;

pub use checkpoint::{
    replay_quarantine, run_corpus_checkpointed, run_corpus_supervised, CheckpointError,
    QuarantineRecord, SweepConfig, SweepOutcome,
};
pub use corpus::{generate_corpus, CorpusEntry, CorpusSpec, SetKey};
pub use optimality::{run_anchor_study, AnchorSpec, GraphAnchor, OptimalityReport};
pub use progress::{Heartbeat, ProgressMeter, ProgressSnapshot, PROGRESS_SCHEMA};
pub use reporter::Reporter;
pub use runner::{run_corpus, FaultTally, GraphResult, HeuristicOutcome, RobustnessStats};
pub use tables::Table;
pub use telemetry::{run_corpus_traced, TracedCorpusRun, TracedRun};
