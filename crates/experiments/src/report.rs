//! Assembles the full study — corpus, every table, every figure —
//! into one report, and renders the paper's worked appendix example.

use crate::checkpoint::{run_corpus_checkpointed, SweepConfig};
use crate::corpus::{generate_corpus, CorpusSpec};
use crate::figures::all_figures;
use crate::reporter::Reporter;
use crate::runner::{run_corpus_on, run_corpus_robust_on, GraphResult, RobustnessStats};
use crate::tables::{all_tables, table1};
use dagsched_core::{paper_heuristics, MachineSpec};
use dagsched_harness::HarnessConfig;
use dagsched_obs::{Summary, TelemetrySink};
use dagsched_sim::{gantt, metrics, Clique};
use std::fmt::Write as _;

/// Runs the whole study and renders every table and figure.
pub struct Study {
    /// The corpus specification used.
    pub spec: CorpusSpec,
    /// The machine model the heuristics scheduled (and the oracle
    /// validated) under.
    pub machine: MachineSpec,
    /// Per-graph results.
    pub results: Vec<GraphResult>,
    /// Fault-isolation report, when the study ran under the harness.
    pub robustness: Option<RobustnessStats>,
    /// Instrumentation aggregate, when the study ran observed.
    pub metrics: Option<Summary>,
}

impl Study {
    /// Generates the corpus and evaluates the five paper heuristics,
    /// trusting them not to fault, under the paper's uniform model.
    pub fn run(spec: CorpusSpec) -> Study {
        Study::run_on(spec, MachineSpec::Uniform)
    }

    /// As [`Study::run`], but under an arbitrary machine model: every
    /// schedule is produced for, validated against and measured on the
    /// same model.
    pub fn run_on(spec: CorpusSpec, machine: MachineSpec) -> Study {
        let corpus = generate_corpus(&spec);
        let results = run_corpus_on(&corpus, &paper_heuristics(), &machine.build());
        Study {
            spec,
            machine,
            results,
            robustness: None,
            metrics: None,
        }
    }

    /// As [`Study::run`], but when `harness` is given each heuristic
    /// runs fault-isolated under that policy and the report gains a
    /// robustness section.
    pub fn run_with(spec: CorpusSpec, harness: Option<HarnessConfig>) -> Study {
        Study::run_with_on(spec, harness, MachineSpec::Uniform)
    }

    /// As [`Study::run_with`], but under an arbitrary machine model.
    pub fn run_with_on(
        spec: CorpusSpec,
        harness: Option<HarnessConfig>,
        machine: MachineSpec,
    ) -> Study {
        let Some(config) = harness else {
            return Study::run_on(spec, machine);
        };
        let corpus = generate_corpus(&spec);
        let (results, stats) =
            run_corpus_robust_on(&corpus, paper_heuristics(), config, machine.build());
        Study {
            spec,
            machine,
            results,
            robustness: Some(stats),
            metrics: None,
        }
    }

    /// The crash-safe study: the sweep journals every finished graph
    /// into `dir` (fsynced before the graph counts as done) and, with
    /// `resume`, replays an earlier journal so only unfinished graphs
    /// execute. Graphs that exhaust their retries are quarantined (see
    /// [`crate::checkpoint`]); the robustness section reports them and
    /// a strict config fails the study instead. The rendered report is
    /// byte-identical to what an uninterrupted run produces.
    pub fn run_checkpointed(
        spec: CorpusSpec,
        config: &SweepConfig,
        dir: &std::path::Path,
        resume: bool,
    ) -> Result<Study, String> {
        let outcome = run_corpus_checkpointed(&spec, paper_heuristics(), config, dir, resume)
            .map_err(|e| e.to_string())?;
        Ok(Study {
            spec,
            machine: config.machine.clone(),
            results: outcome.results,
            robustness: Some(outcome.robustness),
            metrics: None,
        })
    }

    /// The instrumented study: every (graph, heuristic) run executes
    /// in its own collector scope; when `trace` is given the per-run
    /// records stream to it as JSONL (in corpus order, one line per
    /// run plus one summary line per heuristic). The report gains an
    /// instrumentation-summary section, and — with a `harness` — the
    /// robustness section as usual. Progress and incident lines go
    /// through `progress` in corpus order, never interleaved.
    pub fn run_observed(
        spec: CorpusSpec,
        harness: Option<HarnessConfig>,
        trace: Option<&TelemetrySink>,
        progress: Option<&Reporter>,
    ) -> Study {
        Study::run_observed_with_chrome(spec, harness, trace, None, progress)
            .expect("no chrome path, no I/O to fail")
    }

    /// As [`Study::run_observed`], but additionally writes the sweep's
    /// span trees as one Chrome trace-event JSON document to
    /// `chrome_out` (`--trace-out PATH --trace-format chrome`).
    pub fn run_observed_with_chrome(
        spec: CorpusSpec,
        harness: Option<HarnessConfig>,
        trace: Option<&TelemetrySink>,
        chrome_out: Option<&std::path::Path>,
        progress: Option<&Reporter>,
    ) -> Result<Study, String> {
        let corpus = generate_corpus(&spec);
        let traced =
            crate::telemetry::run_corpus_traced(&corpus, paper_heuristics(), harness, progress);
        let summary = match trace {
            Some(sink) => traced
                .write_trace(&corpus, sink)
                .expect("telemetry sink write failed"),
            None => traced.summarize(&corpus),
        };
        if let Some(path) = chrome_out {
            let mut file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            traced
                .write_chrome_trace(&corpus, &mut file)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        Ok(Study {
            spec,
            machine: MachineSpec::Uniform,
            results: traced.results,
            robustness: traced.robustness,
            metrics: Some(summary),
        })
    }

    /// The full report: Table 1, Tables 2–11, Figures 1–6.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "# Reproduction: A Comparison of Multiprocessor Scheduling Heuristics (ICPP 1994)\n"
        )
        .unwrap();
        writeln!(
            out,
            "corpus: {} graphs ({} per set), nodes {:?}, seed {:#x}\n",
            self.spec.total_graphs(),
            self.spec.graphs_per_set,
            self.spec.nodes,
            self.spec.seed
        )
        .unwrap();
        // The paper's own model is implicit; only deviations are noted,
        // keeping uniform-model reports byte-identical to before.
        if self.machine != MachineSpec::Uniform {
            writeln!(out, "machine model: {}\n", self.machine.label()).unwrap();
        }
        out.push_str(&table1(&self.spec));
        out.push('\n');
        for t in all_tables(&self.results) {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        for f in all_figures(&self.results) {
            out.push_str(&f.render(14));
            out.push('\n');
        }
        if let Some(stats) = &self.robustness {
            out.push_str(&stats.render());
            out.push('\n');
        }
        if let Some(summary) = self.metrics.as_ref().filter(|s| !s.is_empty()) {
            out.push_str(&summary.render());
            out.push('\n');
        }
        out
    }
}

impl Study {
    /// Renders the whole study as one self-contained HTML document:
    /// every table as an HTML table, every figure as an inline SVG
    /// chart, plus the appendix schedules as SVG Gantt charts.
    pub fn render_html(&self) -> String {
        let esc = crate::figures::xml_escape;
        let mut out = String::from(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
             <title>dagsched reproduction report</title>\
             <style>body{font-family:sans-serif;max-width:1000px;margin:2em auto;}\
             table{border-collapse:collapse;margin:0.7em 0;}</style></head><body>\n",
        );
        out.push_str(
            "<h1>Reproduction: A Comparison of Multiprocessor Scheduling Heuristics (ICPP 1994)</h1>\n",
        );
        out.push_str(&format!(
            "<p>corpus: {} graphs ({} per set), nodes {:?}, seed {:#x}</p>\n",
            self.spec.total_graphs(),
            self.spec.graphs_per_set,
            self.spec.nodes,
            self.spec.seed
        ));
        if self.machine != MachineSpec::Uniform {
            out.push_str(&format!(
                "<p>machine model: {}</p>\n",
                esc(&self.machine.label())
            ));
        }
        out.push_str("<h2>Tables</h2>\n");
        for t in all_tables(&self.results) {
            out.push_str(&t.to_html());
        }
        out.push_str("<h2>Figures</h2>\n");
        for f in all_figures(&self.results) {
            out.push_str(&f.render_svg(860, 340));
            out.push('\n');
        }
        out.push_str("<h2>Appendix worked example (Figure 16 graph)</h2>\n");
        let g = dagsched_core::fixtures::fig16();
        for h in paper_heuristics() {
            let s = h.schedule(&g, &Clique);
            let m = metrics::measures(&g, &s);
            out.push_str(&format!(
                "<h3>{}</h3><p>parallel time {}, speedup {:.3}, {} processor(s)</p>\n",
                esc(h.name()),
                m.parallel_time,
                m.speedup,
                m.procs
            ));
            out.push_str(&gantt::render_svg(&s));
        }
        out.push_str("</body></html>\n");
        out
    }
}

/// Renders the appendix worked example: every heuristic scheduling
/// the paper's 5-node graph, with Gantt charts (the paper's Figures
/// 8, 10, 12, 14 and 16).
pub fn render_appendix_example() -> String {
    let g = dagsched_core::fixtures::fig16();
    let mut out = String::new();
    writeln!(
        out,
        "# Appendix worked example (paper Figures 8/10/12/14/16)\n"
    )
    .unwrap();
    writeln!(
        out,
        "graph: 5 tasks (weights 10,20,30,40,50), serial time {}, CP {}\n",
        g.serial_time(),
        g.critical_path_len()
    )
    .unwrap();
    for h in paper_heuristics() {
        let s = h.schedule(&g, &Clique);
        let m = metrics::measures(&g, &s);
        writeln!(
            out,
            "## {}\nparallel time {}, speedup {:.3}, efficiency {:.3}, {} processor(s)",
            h.name(),
            m.parallel_time,
            m.speedup,
            m.efficiency,
            m.procs
        )
        .unwrap();
        out.push_str(&gantt::render(&s, 60));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_renders_everything() {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=20,
            ..Default::default()
        };
        let study = Study::run(spec);
        let text = study.render();
        for t in 1..=11 {
            assert!(text.contains(&format!("Table {t}")), "missing table {t}");
        }
        for f in 1..=6 {
            assert!(text.contains(&format!("Figure {f}")), "missing figure {f}");
        }
    }

    #[test]
    fn html_report_is_self_contained() {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=20,
            ..Default::default()
        };
        let html = Study::run(spec).render_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.trim_end().ends_with("</html>"));
        for t in 2..=11 {
            assert!(html.contains(&format!("Table {t}:")), "missing table {t}");
        }
        assert_eq!(html.matches("<svg").count(), 6 + 5, "6 figures + 5 gantts");
        assert!(html.contains("CLANS"));
    }

    #[test]
    fn harnessed_study_appends_a_robustness_section() {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=20,
            ..Default::default()
        };
        let study = Study::run_with(spec.clone(), Some(HarnessConfig::default()));
        let stats = study.robustness.as_ref().expect("harnessed run has stats");
        assert_eq!(stats.total_incidents(), 0, "paper heuristics are healthy");
        let text = study.render();
        assert!(text.contains("## Robustness report"));
        assert!(text.contains("| CLANS |"));
        // Without a harness config the section is absent.
        let plain = Study::run_with(spec, None);
        assert!(plain.robustness.is_none());
        assert!(!plain.render().contains("Robustness report"));
    }

    #[test]
    fn observed_study_appends_an_instrumentation_summary() {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=20,
            ..Default::default()
        };
        let study = Study::run_observed(spec, Some(HarnessConfig::default()), None, None);
        let summary = study.metrics.as_ref().expect("observed run has metrics");
        assert!(!summary.is_empty());
        assert_eq!(summary.rows().len(), 5);
        let text = study.render();
        assert!(text.contains("### Instrumentation summary"));
        assert!(text.contains("## Robustness report"));
        // The unobserved paths stay metric-free.
        assert!(Study::run_with(study.spec.clone(), None).metrics.is_none());
    }

    #[test]
    fn appendix_example_mentions_all_heuristics_and_130() {
        let text = render_appendix_example();
        for h in ["CLANS", "DSC", "MCP", "MH", "HU"] {
            assert!(text.contains(h));
        }
        // CLANS achieves the paper's 130-unit schedule.
        assert!(text.contains("parallel time 130"));
    }
}
