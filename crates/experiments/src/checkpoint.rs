//! Crash-safe, resumable corpus sweeps.
//!
//! The full 2100-graph study takes long enough that a killed process
//! (OOM, preemption, ^C) used to cost the whole run. This module makes
//! the sweep *journaled*: every finished graph is appended to a
//! checksummed JSONL journal — schema [`CHECKPOINT_SCHEMA`] — and
//! fsynced before the graph counts as done, so a run resumed with
//! `--resume <dir>` re-enqueues exactly the graphs whose records never
//! reached the disk and produces a report byte-identical (modulo
//! timestamps) to an uninterrupted run.
//!
//! The moving parts, bottom up:
//!
//! * **journal records** — [`seal_record`] closes a JSON object with a
//!   FNV-1a 64 checksum member; [`verify_record`] recomputes it on
//!   read. [`scan_journal`] replays a file, truncating a torn tail
//!   record (the kill landed mid-write) but refusing a corrupt
//!   *interior* record, which can only mean real damage;
//! * **supervised execution** — graphs run under
//!   [`dagsched_par::par_map_supervised`], so a worker panic is
//!   contained to its graph; each graph's evaluation is additionally
//!   retried under a seeded
//!   [`RetryPolicy`] (jittered backoff, escalating deadlines) before
//!   the sweep gives up on it;
//! * **quarantine** — a graph that exhausts its retries is appended to
//!   a second journal ([`QUARANTINE_FILE`]) with its generator
//!   coordinates and the full per-attempt error chain. Quarantined
//!   graphs are excluded from every table average (the robustness
//!   report says so explicitly) and can be re-run standalone via
//!   [`replay_quarantine`]; a `--strict` sweep fails instead of
//!   degrading.
//!
//! Determinism: graph evaluation is pure, the retry jitter is seeded
//! per-coordinate ([`entry_seed`]), and replayed
//! records parse back to bit-identical `f64`s (Rust's `{}` float
//! formatting is shortest-round-trip), so interrupt/resume cannot
//! change a single reported digit. Journal *record order* is the one
//! non-deterministic quantity — workers append as they finish — and
//! nothing reads it: records are keyed by corpus coordinates.

use crate::corpus::{entry_seed, generate_entry, CorpusEntry, CorpusSpec, SetKey};
use crate::runner::{
    finish_outcomes, new_tallies, FaultTally, GraphResult, HeuristicOutcome, RobustnessStats,
};
use crate::telemetry::band_slug;
use dagsched_core::{MachineSpec, Scheduler};
use dagsched_gen::spec::{GranularityBand, WeightRange};
use dagsched_harness::{
    run_with_retry, GraphFingerprint, HarnessConfig, Incident, RetryPolicy, RobustScheduler,
};
use dagsched_obs as obs;
use dagsched_obs::json::{write_escaped, write_f64, Json};
use dagsched_par::par_map_supervised;
use dagsched_sim::{metrics, validate, Clique, Machine};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Schema tag carried by every journal record.
pub const CHECKPOINT_SCHEMA: &str = "dagsched.checkpoint.v1";
/// File name of the result journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "checkpoint.jsonl";
/// File name of the quarantine journal inside a checkpoint directory.
pub const QUARANTINE_FILE: &str = "quarantine.jsonl";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Record sealing and verification
// ---------------------------------------------------------------------------

/// Appends the checksum member to `body` (a complete JSON object
/// *without* a `crc` member): the result is `body` with
/// `,"crc":"<16 hex digits>"` spliced in before the closing brace. The
/// checksum covers the body exactly as written, so any bit flip —
/// including inside the checksum itself — is detected by
/// [`verify_record`].
pub fn seal_record(body: &str) -> String {
    debug_assert!(
        body.starts_with('{') && body.ends_with('}'),
        "body must be a JSON object"
    );
    let crc = fnv64(body.as_bytes());
    let mut line = String::with_capacity(body.len() + 28);
    line.push_str(&body[..body.len() - 1]);
    let _ = write!(line, ",\"crc\":\"{crc:016x}\"}}");
    line
}

/// The byte length of the sealed suffix `,"crc":"<16 hex>"}`.
const CRC_TAIL: usize = 26;

/// Verifies a sealed journal line: strips the trailing `crc` member,
/// recomputes the checksum over the remaining body and parses the
/// record. Any mismatch — truncation, bit rot, hand edits — is an
/// error naming what failed.
pub fn verify_record(line: &str) -> Result<Json, String> {
    let split = line
        .len()
        .checked_sub(CRC_TAIL)
        .ok_or("record too short to carry a checksum")?;
    if !line.is_char_boundary(split) || !line.ends_with("\"}") {
        return Err("record does not end in a checksum member".into());
    }
    let (body, tail) = line.split_at(split);
    let hex = tail
        .strip_prefix(",\"crc\":\"")
        .and_then(|t| t.strip_suffix("\"}"))
        .ok_or("record does not end in a checksum member")?;
    let recorded = u64::from_str_radix(hex, 16).map_err(|_| "checksum is not hex".to_string())?;
    let mut unsealed = String::with_capacity(split + 1);
    unsealed.push_str(body);
    unsealed.push('}');
    let computed = fnv64(unsealed.as_bytes());
    if computed != recorded {
        return Err(format!(
            "checksum mismatch: recorded {recorded:016x}, computed {computed:016x}"
        ));
    }
    Json::parse(line).map_err(|e| format!("checksummed record is not valid JSON: {e}"))
}

// ---------------------------------------------------------------------------
// Journal file I/O
// ---------------------------------------------------------------------------

/// An append-only journal file. [`JournalWriter::append`] seals the
/// record, writes it as one line and fsyncs before returning — once it
/// returns `Ok`, the record survives a `SIGKILL`. Shared by the sweep
/// workers behind an internal mutex.
pub struct JournalWriter {
    file: Mutex<File>,
}

impl JournalWriter {
    /// Creates (truncating) the journal at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JournalWriter {
            file: Mutex::new(File::create(path)?),
        })
    }

    /// Opens the journal at `path` for appending after `valid_len`
    /// bytes (from a [`scan_journal`] pass), physically truncating any
    /// torn tail first so the next append starts at a record boundary.
    /// Creates the file if it does not exist.
    pub fn resume(path: &Path, valid_len: u64) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            // Not truncate: the valid prefix must survive; set_len
            // below trims exactly the torn tail.
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(JournalWriter {
            file: Mutex::new(file),
        })
    }

    /// Seals `body` (see [`seal_record`]) and durably appends it as
    /// one JSONL line.
    pub fn append(&self, body: &str) -> io::Result<()> {
        let mut line = seal_record(body);
        line.push('\n');
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        file.write_all(line.as_bytes())?;
        file.sync_data()
    }

    /// Consumes the writer and syncs file data *and* metadata to disk,
    /// surfacing the error — dropping the writer cannot report one.
    /// Long-running owners (the scheduling server) call this on
    /// shutdown so a failing disk turns into a nonzero exit instead of
    /// a silently incomplete journal.
    pub fn close(self) -> io::Result<()> {
        let file = self
            .file
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        file.sync_all()
    }
}

/// What [`scan_journal`] found in one journal file.
#[derive(Debug, Default)]
pub struct JournalScan {
    /// Checksum-valid records, in file order.
    pub records: Vec<Json>,
    /// Bytes of the file covered by valid records — the resume point
    /// for [`JournalWriter::resume`].
    pub valid_len: u64,
    /// Whether a torn tail (a record cut short by a kill) was dropped.
    pub torn_tail: bool,
}

/// Replays a journal file. A missing file scans as empty. The *last*
/// line failing verification is a torn tail — expected after a kill —
/// and is dropped (its graph simply re-runs); a failure anywhere
/// *before* the tail means the file was damaged after being written
/// and is a hard [`CheckpointError::Corrupt`].
pub fn scan_journal(path: &Path) -> Result<JournalScan, CheckpointError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => return Err(CheckpointError::Io(e)),
    };
    let mut scan = JournalScan::default();
    let mut pos = 0usize;
    let mut line_no = 0usize;
    while pos < bytes.len() {
        line_no += 1;
        let (line_bytes, consumed, terminated) = match bytes[pos..].iter().position(|&b| b == b'\n')
        {
            Some(i) => (&bytes[pos..pos + i], i + 1, true),
            None => (&bytes[pos..], bytes.len() - pos, false),
        };
        let parsed = match std::str::from_utf8(line_bytes) {
            Ok(line) => verify_record(line),
            Err(_) => Err("record is not UTF-8".into()),
        };
        match parsed {
            // A valid record without its newline still means the kill
            // interrupted the append; drop it so the resumed writer
            // starts at a clean boundary and the graph re-runs.
            Ok(record) if terminated => {
                scan.records.push(record);
                scan.valid_len += consumed as u64;
                pos += consumed;
            }
            Ok(_) => {
                scan.torn_tail = true;
                pos += consumed;
            }
            Err(reason) => {
                if pos + consumed >= bytes.len() {
                    scan.torn_tail = true;
                    pos = bytes.len();
                } else {
                    return Err(CheckpointError::Corrupt {
                        line: line_no,
                        reason,
                    });
                }
            }
        }
    }
    Ok(scan)
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a checkpointed sweep could not complete.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure underneath a journal.
    Io(io::Error),
    /// The journal was written by a different corpus spec or heuristic
    /// set than the one being resumed.
    SpecMismatch(String),
    /// A non-tail journal record failed verification (line numbers are
    /// 1-based).
    Corrupt {
        /// 1-based line of the offending record.
        line: usize,
        /// What failed about it.
        reason: String,
    },
    /// The sweep ran `--strict` and this many graphs were quarantined.
    StrictQuarantine(usize),
    /// The target directory already holds a journal and the run was
    /// not started with resume — refusing to overwrite it.
    WouldClobber(PathBuf),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::SpecMismatch(msg) => write!(f, "checkpoint spec mismatch: {msg}"),
            CheckpointError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            CheckpointError::StrictQuarantine(n) => write!(
                f,
                "strict sweep failed: {n} graph(s) quarantined after exhausting retries"
            ),
            CheckpointError::WouldClobber(path) => write!(
                f,
                "{} already contains a journal; pass --resume to continue it or point \
                 --checkpoint-dir at an empty directory",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Record shapes
// ---------------------------------------------------------------------------

/// The replay-stable subset of an [`Incident`]: the fault kind tag and
/// the deterministic one-line summary. Everything a resumed run needs
/// to rebuild the robustness report byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredIncident {
    /// Stable fault tag (`"panic"`, `"invalid-schedule"`,
    /// `"deadline-exceeded"`).
    pub kind: String,
    /// The incident's deterministic summary line.
    pub summary: String,
}

impl StoredIncident {
    /// The stored form of a live harness incident.
    pub fn of(incident: &Incident) -> Self {
        StoredIncident {
            kind: incident.fault.kind().to_string(),
            summary: incident.summary(),
        }
    }
}

/// One finished graph as the journal stores it: the outcome rows plus
/// the per-heuristic incidents and the attempt count the sweep needed.
#[derive(Debug, Clone)]
pub struct CompletedGraph {
    /// The outcome rows (exactly what the plain runners produce).
    pub result: GraphResult,
    /// Incidents per heuristic, in registry order (parallel to
    /// `result.outcomes`).
    pub incidents: Vec<Vec<StoredIncident>>,
    /// Attempts the sweep needed (1 on the clean path).
    pub attempts: u32,
}

/// One graph given up on: its generator coordinates (enough to replay
/// it standalone) and the error chain that exhausted the retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The corpus set of the graph.
    pub key: SetKey,
    /// Index within the set.
    pub index: usize,
    /// Master corpus seed — regenerates the graph together with the
    /// coordinates and the node range.
    pub master_seed: u64,
    /// Derived per-graph sub-seed (also the retry jitter seed), kept
    /// for debugging.
    pub seed: u64,
    /// Node-count range of the generating spec.
    pub nodes: (usize, usize),
    /// Attempts made before giving up.
    pub attempts: u32,
    /// One error per attempt, chronologically.
    pub chain: Vec<String>,
}

impl QuarantineRecord {
    /// Deterministic one-line description for the robustness report.
    pub fn summary(&self) -> String {
        let last = self
            .chain
            .last()
            .map(String::as_str)
            .unwrap_or("no error recorded");
        format!(
            "{}/a{}/w{}-{}/{} after {} attempt(s): {}",
            band_slug(self.key.band),
            self.key.anchor,
            self.key.weights.lo,
            self.key.weights.hi,
            self.index,
            self.attempts,
            last
        )
    }
}

/// The `kind` of a scheduling-server cache record: one computed
/// schedule, durable enough for the server (`dagsched-server`) to
/// warm-start its schedule cache from disk after a crash. Lives here,
/// next to the sweep records, because the server journal reuses this
/// module's sealing, scanning and resume machinery wholesale.
pub const CACHE_RECORD_KIND: &str = "server-cache";

/// One server-cached schedule as the disk journal stores it. The graph
/// itself is *not* stored: the key's fingerprint digest identifies it
/// and the requester supplies the graph again on a warm hit, so the
/// `(proc, start)` pair per task (in task order) is enough to rebuild
/// the schedule bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheRecord {
    /// Canonical cache key ([`dagsched_core::schedule_cache_key`]).
    pub key: String,
    /// The tier that produced the answer: the requested heuristic on
    /// the clean path, a fallback heuristic or `SERIAL-PLACEMENT`
    /// otherwise.
    pub scheduled_by: String,
    /// `(processor, start time)` per task, in task order.
    pub placements: Vec<(u32, u64)>,
    /// Incidents the harness contained while computing the entry.
    pub incidents: Vec<StoredIncident>,
}

/// Encodes a [`CacheRecord`] body; seal and write it with
/// [`JournalWriter::append`].
pub fn cache_record_body(rec: &CacheRecord) -> String {
    let mut s =
        format!("{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"{CACHE_RECORD_KIND}\",\"key\":");
    write_escaped(&mut s, &rec.key);
    s.push_str(",\"scheduled_by\":");
    write_escaped(&mut s, &rec.scheduled_by);
    s.push_str(",\"placements\":[");
    for (i, (proc, start)) in rec.placements.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{proc},{start}]");
    }
    s.push_str("],\"incidents\":[");
    for (i, inc) in rec.incidents.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"kind\":");
        write_escaped(&mut s, &inc.kind);
        s.push_str(",\"summary\":");
        write_escaped(&mut s, &inc.summary);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Parses a checksum-verified journal record back into a
/// [`CacheRecord`]. The key must be in the canonical
/// fingerprint×machine format — a record journaled under a different
/// composition must never warm a cache keyed by this one.
pub fn parse_cache_record(j: &Json) -> Result<CacheRecord, String> {
    check_kind(j, CACHE_RECORD_KIND)?;
    let key = str_field(j, "key")?.to_string();
    if dagsched_core::parse_fingerprint_machine_key(&key).is_none() {
        return Err(format!("cache key {key:?} is not in the canonical format"));
    }
    let mut placements = Vec::new();
    for pair in arr_field(j, "placements")? {
        let pair = pair
            .as_arr()
            .ok_or("placements entries must be [proc,start] pairs")?;
        match pair {
            [proc, start] => placements.push((
                proc.as_u64().ok_or("bad placement proc")? as u32,
                start.as_u64().ok_or("bad placement start")?,
            )),
            _ => return Err("placements entries must be [proc,start] pairs".into()),
        }
    }
    let mut incidents = Vec::new();
    for inc in arr_field(j, "incidents")? {
        incidents.push(StoredIncident {
            kind: str_field(inc, "kind")?.to_string(),
            summary: str_field(inc, "summary")?.to_string(),
        });
    }
    Ok(CacheRecord {
        key,
        scheduled_by: str_field(j, "scheduled_by")?.to_string(),
        placements,
        incidents,
    })
}

/// Inverse of [`band_slug`].
pub fn band_from_slug(slug: &str) -> Option<GranularityBand> {
    GranularityBand::ALL
        .iter()
        .copied()
        .find(|&b| band_slug(b) == slug)
}

/// Hash identifying the (corpus spec, heuristic set, machine model)
/// triple a journal belongs to; resume refuses a journal whose hash
/// differs. The machine enters through its stable
/// [`MachineSpec::label`] (content-fingerprinted for link-aware
/// tables), so a journal written under one model can never silently
/// continue under another.
pub fn spec_hash(spec: &CorpusSpec, names: &[&'static str], machine: &MachineSpec) -> u64 {
    let mut desc = format!(
        "seed={:#x};gps={};nodes={}..={};",
        spec.seed,
        spec.graphs_per_set,
        spec.nodes.start(),
        spec.nodes.end()
    );
    for w in &spec.weight_ranges {
        let _ = write!(desc, "w={}-{};", w.lo, w.hi);
    }
    for name in names {
        let _ = write!(desc, "h={name};");
    }
    let _ = write!(desc, "m={};", machine.label());
    fnv64(desc.as_bytes())
}

fn header_body(hash: u64, total: usize, names: &[&'static str]) -> String {
    let mut s = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"header\",\"spec\":\"{hash:#018x}\",\
         \"total\":{total},\"heuristics\":["
    );
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_escaped(&mut s, name);
    }
    s.push_str("]}");
    s
}

fn key_fields(s: &mut String, key: SetKey, index: usize) {
    let _ = write!(
        s,
        "\"band\":\"{}\",\"anchor\":{},\"wlo\":{},\"whi\":{},\"index\":{}",
        band_slug(key.band),
        key.anchor,
        key.weights.lo,
        key.weights.hi,
        index
    );
}

fn result_body(c: &CompletedGraph) -> String {
    let r = &c.result;
    let mut s = format!("{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"result\",");
    key_fields(&mut s, r.key, r.index);
    let _ = write!(s, ",\"serial\":{},\"granularity\":", r.serial);
    write_f64(&mut s, r.granularity);
    let _ = write!(s, ",\"attempts\":{},\"outcomes\":[", c.attempts);
    for (i, o) in r.outcomes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":");
        write_escaped(&mut s, o.name);
        let _ = write!(s, ",\"pt\":{},\"speedup\":", o.parallel_time);
        write_f64(&mut s, o.speedup);
        s.push_str(",\"eff\":");
        write_f64(&mut s, o.efficiency);
        let _ = write!(s, ",\"procs\":{},\"nrpt\":", o.procs);
        write_f64(&mut s, o.nrpt);
        s.push_str(",\"incidents\":[");
        for (k, inc) in c
            .incidents
            .get(i)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            if k > 0 {
                s.push(',');
            }
            s.push_str("{\"kind\":");
            write_escaped(&mut s, &inc.kind);
            s.push_str(",\"summary\":");
            write_escaped(&mut s, &inc.summary);
            s.push('}');
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

fn quarantine_body(q: &QuarantineRecord) -> String {
    let mut s = format!("{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"quarantine\",");
    key_fields(&mut s, q.key, q.index);
    // u64 seeds travel as hex strings: the JSON layer parses numbers
    // as f64, which cannot round-trip a full 64-bit seed.
    let _ = write!(
        s,
        ",\"master_seed\":\"{:#018x}\",\"seed\":\"{:#018x}\",\"nodes\":[{},{}],\"attempts\":{},\"chain\":[",
        q.master_seed, q.seed, q.nodes.0, q.nodes.1, q.attempts
    );
    for (i, err) in q.chain.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_escaped(&mut s, err);
    }
    s.push_str("]}");
    s
}

// ---------------------------------------------------------------------------
// Record parsing
// ---------------------------------------------------------------------------

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn f64_field(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field {key:?}"))
}

fn arr_field<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

fn hex_field(j: &Json, key: &str) -> Result<u64, String> {
    let s = str_field(j, key)?;
    let digits = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(digits, 16).map_err(|_| format!("field {key:?} is not a hex seed"))
}

fn check_kind(j: &Json, kind: &str) -> Result<(), String> {
    if str_field(j, "schema")? != CHECKPOINT_SCHEMA {
        return Err(format!("unknown schema (expected {CHECKPOINT_SCHEMA})"));
    }
    let found = str_field(j, "kind")?;
    if found != kind {
        return Err(format!("expected a {kind:?} record, found {found:?}"));
    }
    Ok(())
}

fn parse_key(j: &Json) -> Result<SetKey, String> {
    let slug = str_field(j, "band")?;
    let band = band_from_slug(slug).ok_or_else(|| format!("unknown band slug {slug:?}"))?;
    Ok(SetKey {
        band,
        anchor: u64_field(j, "anchor")? as usize,
        weights: WeightRange::new(u64_field(j, "wlo")?, u64_field(j, "whi")?),
    })
}

fn parse_result(j: &Json, names: &[&'static str]) -> Result<CompletedGraph, String> {
    check_kind(j, "result")?;
    let key = parse_key(j)?;
    let index = u64_field(j, "index")? as usize;
    let serial = u64_field(j, "serial")?;
    let granularity = f64_field(j, "granularity")?;
    let attempts = u64_field(j, "attempts")? as u32;
    let rows = arr_field(j, "outcomes")?;
    if rows.len() != names.len() {
        return Err(format!(
            "record carries {} outcomes but the run registers {} heuristics",
            rows.len(),
            names.len()
        ));
    }
    let mut outcomes = Vec::with_capacity(rows.len());
    let mut incidents = Vec::with_capacity(rows.len());
    for (row, &name) in rows.iter().zip(names) {
        let row_name = str_field(row, "name")?;
        if row_name != name {
            return Err(format!(
                "outcome for {row_name:?} where the run expects {name:?} — the heuristic \
                 registry changed since the journal was written"
            ));
        }
        outcomes.push(HeuristicOutcome {
            name,
            parallel_time: u64_field(row, "pt")?,
            speedup: f64_field(row, "speedup")?,
            efficiency: f64_field(row, "eff")?,
            procs: u64_field(row, "procs")? as usize,
            nrpt: f64_field(row, "nrpt")?,
        });
        let mut stored = Vec::new();
        for inc in arr_field(row, "incidents")? {
            stored.push(StoredIncident {
                kind: str_field(inc, "kind")?.to_string(),
                summary: str_field(inc, "summary")?.to_string(),
            });
        }
        incidents.push(stored);
    }
    Ok(CompletedGraph {
        result: GraphResult {
            key,
            index,
            serial,
            granularity,
            outcomes,
        },
        incidents,
        attempts,
    })
}

fn parse_quarantine(j: &Json) -> Result<QuarantineRecord, String> {
    check_kind(j, "quarantine")?;
    let nodes = arr_field(j, "nodes")?;
    let node_bound = |i: usize| -> Result<usize, String> {
        nodes
            .get(i)
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| "malformed nodes range".to_string())
    };
    let mut chain = Vec::new();
    for err in arr_field(j, "chain")? {
        chain.push(
            err.as_str()
                .ok_or("chain entries must be strings")?
                .to_string(),
        );
    }
    Ok(QuarantineRecord {
        key: parse_key(j)?,
        index: u64_field(j, "index")? as usize,
        master_seed: hex_field(j, "master_seed")?,
        seed: hex_field(j, "seed")?,
        nodes: (node_bound(0)?, node_bound(1)?),
        attempts: u64_field(j, "attempts")? as u32,
        chain,
    })
}

fn check_header(j: &Json, hash: u64) -> Result<(), CheckpointError> {
    check_kind(j, "header").map_err(|reason| CheckpointError::Corrupt { line: 1, reason })?;
    let found = str_field(j, "spec")
        .map_err(|reason| CheckpointError::Corrupt { line: 1, reason })?
        .to_string();
    let expected = format!("{hash:#018x}");
    if found != expected {
        return Err(CheckpointError::SpecMismatch(format!(
            "journal was written for spec {found}, this run is {expected} \
             (corpus parameters, heuristic set or machine model changed)"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The sweep engine
// ---------------------------------------------------------------------------

/// Containment policy of a crash-safe sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Fault isolation for individual scheduling runs. `Some` wraps
    /// every heuristic in a [`RobustScheduler`] (panics, invalid
    /// schedules and deadline overruns become incidents with fallback
    /// outcomes). `None` runs the heuristics trusted: a panic or an
    /// oracle rejection then costs the whole attempt and is handled by
    /// the retry/quarantine layer instead.
    pub harness: Option<HarnessConfig>,
    /// Retry policy for attempts that fail outright.
    pub retry: RetryPolicy,
    /// Fail the sweep ([`CheckpointError::StrictQuarantine`]) instead
    /// of degrading gracefully when any graph ends up quarantined.
    pub strict: bool,
    /// The machine model every heuristic schedules (and every oracle
    /// validates) under. Part of the journal's [`spec_hash`]: a sweep
    /// journaled under one model refuses to resume under another.
    pub machine: MachineSpec,
    /// Emit [`dagsched.progress.v1`](crate::progress::PROGRESS_SCHEMA)
    /// heartbeat lines on stderr at this interval while the sweep
    /// runs (plus one final line), `None` for silence. Heartbeats are
    /// advisory wall-clock output, outside the determinism contract
    /// and outside the journal.
    pub progress: Option<Duration>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            harness: Some(HarnessConfig::default()),
            retry: RetryPolicy::default(),
            strict: false,
            machine: MachineSpec::Uniform,
            progress: None,
        }
    }
}

/// What a crash-safe sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-graph results in corpus order; quarantined graphs carry no
    /// row here.
    pub results: Vec<GraphResult>,
    /// The fault-isolation report, quarantine summaries included.
    pub robustness: RobustnessStats,
    /// Quarantined graphs, in corpus order.
    pub quarantine: Vec<QuarantineRecord>,
    /// Graphs (results + quarantine entries) replayed from the journal
    /// instead of executed.
    pub replayed: usize,
    /// Graphs executed (and journaled) by this run.
    pub executed: usize,
    /// Torn tail records dropped while resuming (0 on a clean resume).
    pub torn_tails: usize,
}

#[derive(Default)]
struct SweepCounters {
    attempts: AtomicU64,
    backoffs: AtomicU64,
    quarantined: AtomicU64,
}

enum SweepItem {
    Done(CompletedGraph),
    Quarantined(QuarantineRecord),
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One evaluation attempt of one graph. Panics are caught here (this
/// is what makes trusted-mode retries possible); with a harness the
/// inner [`RobustScheduler`] will usually have contained them already.
fn attempt_entry(
    entry: &CorpusEntry,
    pool: &[Arc<dyn Scheduler>],
    machine: &Arc<dyn Machine>,
    config: &SweepConfig,
    budget: Option<Duration>,
) -> Result<CompletedGraph, String> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        evaluate_entry(entry, pool, machine, config, budget)
    }));
    match caught {
        Ok(outcome) => outcome,
        Err(payload) => Err(format!("panicked: {}", panic_text(payload.as_ref()))),
    }
}

fn evaluate_entry(
    entry: &CorpusEntry,
    pool: &[Arc<dyn Scheduler>],
    machine: &Arc<dyn Machine>,
    config: &SweepConfig,
    budget: Option<Duration>,
) -> Result<CompletedGraph, String> {
    let g = &entry.graph;
    let mut partial: Vec<(&'static str, metrics::Measures)> = Vec::with_capacity(pool.len());
    let mut incidents: Vec<Vec<StoredIncident>> = Vec::with_capacity(pool.len());
    match &config.harness {
        Some(base) => {
            let cfg = HarnessConfig {
                time_budget: budget,
                validate: base.validate,
            };
            for sched in pool {
                let robust = RobustScheduler::new(Arc::clone(sched)).with_config(cfg);
                let out = robust.run(g, machine);
                partial.push((
                    robust.name(),
                    metrics::measures_on(g, &out.schedule, machine.as_ref()),
                ));
                incidents.push(out.incidents.iter().map(StoredIncident::of).collect());
            }
        }
        None => {
            for sched in pool {
                let s = sched.schedule(g, machine.as_ref());
                if !validate::is_valid(g, machine.as_ref(), &s) {
                    return Err(format!("{} produced an invalid schedule", sched.name()));
                }
                partial.push((sched.name(), metrics::measures_on(g, &s, machine.as_ref())));
                incidents.push(Vec::new());
            }
        }
    }
    Ok(CompletedGraph {
        result: GraphResult {
            key: entry.key,
            index: entry.index,
            serial: g.serial_time(),
            granularity: entry.granularity,
            outcomes: finish_outcomes(partial),
        },
        incidents,
        attempts: 1,
    })
}

/// Retries one generated graph under the configured policy; exhaustion
/// yields a quarantine record instead of an outcome.
#[allow(clippy::too_many_arguments)]
fn sweep_entry(
    entry: &CorpusEntry,
    pool: &[Arc<dyn Scheduler>],
    machine: &Arc<dyn Machine>,
    config: &SweepConfig,
    jitter_seed: u64,
    master_seed: u64,
    nodes: (usize, usize),
    counters: &SweepCounters,
) -> SweepItem {
    let base_budget = config.harness.and_then(|h| h.time_budget);
    let report = run_with_retry(&config.retry, jitter_seed, base_budget, |_, budget| {
        attempt_entry(entry, pool, machine, config, budget)
    });
    counters
        .attempts
        .fetch_add(u64::from(report.attempts), Ordering::Relaxed);
    counters
        .backoffs
        .fetch_add(u64::from(report.backoffs), Ordering::Relaxed);
    match report.outcome {
        Ok(mut done) => {
            done.attempts = report.attempts;
            SweepItem::Done(done)
        }
        Err(exhausted) => {
            counters.quarantined.fetch_add(1, Ordering::Relaxed);
            SweepItem::Quarantined(QuarantineRecord {
                key: entry.key,
                index: entry.index,
                master_seed,
                seed: jitter_seed,
                nodes,
                attempts: exhausted.attempts,
                chain: exhausted.errors,
            })
        }
    }
}

fn tally_stored(tally: &mut FaultTally, incidents: &[StoredIncident], summaries: &mut Vec<String>) {
    if !incidents.is_empty() {
        tally.fallbacks += 1;
    }
    for inc in incidents {
        match inc.kind.as_str() {
            "panic" => tally.panics += 1,
            "invalid-schedule" => tally.invalid += 1,
            "deadline-exceeded" => tally.timeouts += 1,
            _ => {}
        }
        summaries.push(inc.summary.clone());
    }
}

fn assemble(
    coords: &[(SetKey, usize)],
    names: &[&'static str],
    done: &HashMap<(SetKey, usize), CompletedGraph>,
    quarantined: &HashMap<(SetKey, usize), QuarantineRecord>,
) -> (Vec<GraphResult>, RobustnessStats, Vec<QuarantineRecord>) {
    let mut results = Vec::with_capacity(done.len());
    let mut quarantine = Vec::with_capacity(quarantined.len());
    let mut completed: Vec<&CompletedGraph> = Vec::with_capacity(done.len());
    for coord in coords {
        if let Some(c) = done.get(coord) {
            completed.push(c);
            results.push(c.result.clone());
        } else if let Some(q) = quarantined.get(coord) {
            quarantine.push(q.clone());
        }
    }
    let mut tallies = new_tallies(names, completed.len());
    let mut summaries = Vec::new();
    for c in &completed {
        for (i, incs) in c.incidents.iter().enumerate() {
            tally_stored(&mut tallies[i], incs, &mut summaries);
        }
    }
    let robustness = RobustnessStats {
        tallies,
        incident_summaries: summaries,
        quarantined: quarantine.iter().map(QuarantineRecord::summary).collect(),
    };
    (results, robustness, quarantine)
}

/// Runs the corpus sweep with journaled checkpoints.
///
/// `dir` receives [`JOURNAL_FILE`] and [`QUARANTINE_FILE`]. With
/// `resume` the journals are replayed first (after checksum and
/// [`spec_hash`] validation, torn tails truncated) and only unfinished
/// graphs execute; without it the directory must not already hold a
/// journal. Every graph completes durably — the record is fsynced
/// before the graph counts as done — so interrupt/resume at *any*
/// point yields the same [`SweepOutcome`] as an uninterrupted run.
pub fn run_corpus_checkpointed(
    spec: &CorpusSpec,
    heuristics: Vec<Box<dyn Scheduler>>,
    config: &SweepConfig,
    dir: &Path,
    resume: bool,
) -> Result<SweepOutcome, CheckpointError> {
    let pool: Vec<Arc<dyn Scheduler>> = heuristics.into_iter().map(Arc::from).collect();
    let names: Vec<&'static str> = pool.iter().map(|h| h.name()).collect();
    let hash = spec_hash(spec, &names, &config.machine);
    std::fs::create_dir_all(dir)?;
    let journal_path = dir.join(JOURNAL_FILE);
    let quarantine_path = dir.join(QUARANTINE_FILE);

    let mut done: HashMap<(SetKey, usize), CompletedGraph> = HashMap::new();
    let mut quarantined: HashMap<(SetKey, usize), QuarantineRecord> = HashMap::new();
    let mut torn_tails = 0usize;

    let (journal, quarantine_log) = if resume {
        let scan = scan_journal(&journal_path)?;
        torn_tails += usize::from(scan.torn_tail);
        let mut records = scan.records.iter();
        match records.next() {
            None => {}
            Some(header) => {
                check_header(header, hash)?;
                for (i, record) in records.enumerate() {
                    let c = parse_result(record, &names).map_err(|reason| {
                        CheckpointError::Corrupt {
                            line: i + 2,
                            reason,
                        }
                    })?;
                    done.insert((c.result.key, c.result.index), c);
                }
            }
        }
        let fresh = scan.records.is_empty();
        let journal = JournalWriter::resume(&journal_path, scan.valid_len)?;
        if fresh {
            journal.append(&header_body(hash, spec.total_graphs(), &names))?;
        }

        let qscan = scan_journal(&quarantine_path)?;
        torn_tails += usize::from(qscan.torn_tail);
        for (i, record) in qscan.records.iter().enumerate() {
            let q = parse_quarantine(record).map_err(|reason| CheckpointError::Corrupt {
                line: i + 1,
                reason,
            })?;
            quarantined.insert((q.key, q.index), q);
        }
        (
            journal,
            JournalWriter::resume(&quarantine_path, qscan.valid_len)?,
        )
    } else {
        if std::fs::metadata(&journal_path)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            return Err(CheckpointError::WouldClobber(journal_path));
        }
        let journal = JournalWriter::create(&journal_path)?;
        journal.append(&header_body(hash, spec.total_graphs(), &names))?;
        (journal, JournalWriter::create(&quarantine_path)?)
    };

    let replayed = done.len() + quarantined.len();
    let mut coords = Vec::with_capacity(spec.total_graphs());
    for key in spec.set_keys() {
        for index in 0..spec.graphs_per_set {
            coords.push((key, index));
        }
    }
    let pending: Vec<(SetKey, usize)> = coords
        .iter()
        .copied()
        .filter(|c| !done.contains_key(c) && !quarantined.contains_key(c))
        .collect();

    let nodes_range = (*spec.nodes.start(), *spec.nodes.end());
    let counters = SweepCounters::default();
    let machine: Arc<dyn Machine> = config.machine.build();

    // Live heartbeats: the meter is bumped by the workers right after
    // each graph's journal append, the sampling thread turns it into
    // `dagsched.progress.v1` lines on stderr, and dropping the guard
    // at the end of this function emits the final snapshot.
    let meter = Arc::new(crate::progress::ProgressMeter::new(pending.len(), replayed));
    let _heartbeat = config
        .progress
        .map(|interval| crate::progress::Heartbeat::to_stderr(Arc::clone(&meter), interval));

    // Generation, evaluation and journalling all happen inside the
    // supervised pool: a crash of any worker is contained to its graph,
    // and after a kill a graph is pending iff its record never reached
    // the disk.
    let swept = par_map_supervised(&pending, |_, &(key, index)| {
        let jitter_seed = entry_seed(spec, key, index);
        let item = match catch_unwind(AssertUnwindSafe(|| generate_entry(spec, key, index))) {
            Ok(entry) => sweep_entry(
                &entry,
                &pool,
                &machine,
                config,
                jitter_seed,
                spec.seed,
                nodes_range,
                &counters,
            ),
            Err(payload) => {
                counters.attempts.fetch_add(1, Ordering::Relaxed);
                counters.quarantined.fetch_add(1, Ordering::Relaxed);
                SweepItem::Quarantined(QuarantineRecord {
                    key,
                    index,
                    master_seed: spec.seed,
                    seed: jitter_seed,
                    nodes: nodes_range,
                    attempts: 1,
                    chain: vec![format!(
                        "generation panicked: {}",
                        panic_text(payload.as_ref())
                    )],
                })
            }
        };
        let appended = match &item {
            SweepItem::Done(c) => journal.append(&result_body(c)),
            SweepItem::Quarantined(q) => quarantine_log.append(&quarantine_body(q)),
        };
        if matches!(item, SweepItem::Quarantined(_)) {
            meter.graph_quarantined();
        }
        meter.graph_done();
        (item, appended.err())
    });

    let mut io_error: Option<io::Error> = None;
    let mut executed = 0usize;
    for (slot, coord) in swept.into_iter().zip(&pending) {
        match slot {
            Ok((item, append_err)) => {
                if let Some(e) = append_err {
                    io_error.get_or_insert(e);
                }
                match item {
                    SweepItem::Done(c) => {
                        executed += 1;
                        done.insert(*coord, c);
                    }
                    SweepItem::Quarantined(q) => {
                        quarantined.insert(*coord, q);
                    }
                }
            }
            Err(worker_panic) => {
                // The retry loop itself (or the record encoder) blew up
                // — beyond per-attempt containment. Quarantine the
                // coordinate from the main thread.
                let (key, index) = *coord;
                let q = QuarantineRecord {
                    key,
                    index,
                    master_seed: spec.seed,
                    seed: entry_seed(spec, key, index),
                    nodes: nodes_range,
                    attempts: 1,
                    chain: vec![format!("sweep worker panicked: {}", worker_panic.message)],
                };
                if let Err(e) = quarantine_log.append(&quarantine_body(&q)) {
                    io_error.get_or_insert(e);
                }
                counters.quarantined.fetch_add(1, Ordering::Relaxed);
                quarantined.insert(*coord, q);
            }
        }
    }
    if let Some(e) = io_error {
        return Err(CheckpointError::Io(e));
    }

    // Worker threads carry no obs run scope, so the aggregate counters
    // are attributed here, on the caller's scope.
    let newly_quarantined = counters.quarantined.load(Ordering::Relaxed);
    obs::counter_add(
        "sweep.checkpoint.records",
        executed as u64 + newly_quarantined,
    );
    obs::counter_add("sweep.checkpoint.replayed", replayed as u64);
    obs::counter_add("sweep.checkpoint.torn_tails", torn_tails as u64);
    obs::counter_add(
        "sweep.retry.attempts",
        counters.attempts.load(Ordering::Relaxed),
    );
    obs::counter_add(
        "sweep.retry.backoffs",
        counters.backoffs.load(Ordering::Relaxed),
    );
    obs::counter_add("sweep.quarantine.graphs", newly_quarantined);

    let (results, robustness, quarantine) = assemble(&coords, &names, &done, &quarantined);
    if config.strict && !quarantine.is_empty() {
        return Err(CheckpointError::StrictQuarantine(quarantine.len()));
    }
    Ok(SweepOutcome {
        results,
        robustness,
        quarantine,
        replayed,
        executed,
        torn_tails,
    })
}

/// The journal-free sibling of [`run_corpus_checkpointed`]: supervised
/// pool, retries and quarantine over an already-generated corpus, with
/// nothing written to disk. Quarantine records from this path carry a
/// zero master seed and the graph's fingerprint digest as sub-seed —
/// they identify the graph but are not replayable from a spec.
pub fn run_corpus_supervised(
    corpus: &[CorpusEntry],
    heuristics: Vec<Box<dyn Scheduler>>,
    config: &SweepConfig,
) -> Result<SweepOutcome, CheckpointError> {
    let pool: Vec<Arc<dyn Scheduler>> = heuristics.into_iter().map(Arc::from).collect();
    let names: Vec<&'static str> = pool.iter().map(|h| h.name()).collect();
    let machine: Arc<dyn Machine> = config.machine.build();
    let counters = SweepCounters::default();

    let swept = par_map_supervised(corpus, |_, entry| {
        let digest = GraphFingerprint::of(&entry.graph).digest;
        let n = entry.graph.num_nodes();
        sweep_entry(entry, &pool, &machine, config, digest, 0, (n, n), &counters)
    });

    let mut done: HashMap<(SetKey, usize), CompletedGraph> = HashMap::new();
    let mut quarantined: HashMap<(SetKey, usize), QuarantineRecord> = HashMap::new();
    let mut coords = Vec::with_capacity(corpus.len());
    for (slot, entry) in swept.into_iter().zip(corpus) {
        let coord = (entry.key, entry.index);
        coords.push(coord);
        match slot {
            Ok(SweepItem::Done(c)) => {
                done.insert(coord, c);
            }
            Ok(SweepItem::Quarantined(q)) => {
                quarantined.insert(coord, q);
            }
            Err(worker_panic) => {
                counters.quarantined.fetch_add(1, Ordering::Relaxed);
                quarantined.insert(
                    coord,
                    QuarantineRecord {
                        key: entry.key,
                        index: entry.index,
                        master_seed: 0,
                        seed: GraphFingerprint::of(&entry.graph).digest,
                        nodes: (entry.graph.num_nodes(), entry.graph.num_nodes()),
                        attempts: 1,
                        chain: vec![format!("sweep worker panicked: {}", worker_panic.message)],
                    },
                );
            }
        }
    }

    obs::counter_add(
        "sweep.retry.attempts",
        counters.attempts.load(Ordering::Relaxed),
    );
    obs::counter_add(
        "sweep.retry.backoffs",
        counters.backoffs.load(Ordering::Relaxed),
    );
    obs::counter_add(
        "sweep.quarantine.graphs",
        counters.quarantined.load(Ordering::Relaxed),
    );

    let executed = done.len();
    let (results, robustness, quarantine) = assemble(&coords, &names, &done, &quarantined);
    if config.strict && !quarantine.is_empty() {
        return Err(CheckpointError::StrictQuarantine(quarantine.len()));
    }
    Ok(SweepOutcome {
        results,
        robustness,
        quarantine,
        replayed: 0,
        executed,
        torn_tails: 0,
    })
}

// ---------------------------------------------------------------------------
// Quarantine replay
// ---------------------------------------------------------------------------

/// One quarantined graph re-run standalone.
#[derive(Debug)]
pub struct QuarantineReplay {
    /// The parsed quarantine record.
    pub record: QuarantineRecord,
    /// The harnessed re-run: full outcome rows on success, or the
    /// error that still defeats containment.
    pub outcome: Result<GraphResult, String>,
    /// Incidents the harness contained during the replay, flattened
    /// across heuristics.
    pub incidents: Vec<StoredIncident>,
}

/// Regenerates every graph in a quarantine journal from its recorded
/// coordinates and re-runs it once under the given harness (no
/// retries — the point is to watch the failure, contained).
pub fn replay_quarantine(
    path: &Path,
    heuristics: Vec<Box<dyn Scheduler>>,
    harness: HarnessConfig,
) -> Result<Vec<QuarantineReplay>, CheckpointError> {
    let scan = scan_journal(path)?;
    let pool: Vec<Arc<dyn Scheduler>> = heuristics.into_iter().map(Arc::from).collect();
    let machine: Arc<dyn Machine> = Arc::new(Clique);
    let config = SweepConfig {
        harness: Some(harness),
        retry: RetryPolicy::none(),
        strict: false,
        machine: MachineSpec::Uniform,
        progress: None,
    };
    let mut replays = Vec::with_capacity(scan.records.len());
    for (i, record) in scan.records.iter().enumerate() {
        let q = parse_quarantine(record).map_err(|reason| CheckpointError::Corrupt {
            line: i + 1,
            reason,
        })?;
        let spec = CorpusSpec {
            seed: q.master_seed,
            nodes: q.nodes.0..=q.nodes.1,
            ..CorpusSpec::default()
        };
        let generated = catch_unwind(AssertUnwindSafe(|| generate_entry(&spec, q.key, q.index)));
        let entry = match generated {
            Ok(entry) => entry,
            Err(payload) => {
                replays.push(QuarantineReplay {
                    record: q,
                    outcome: Err(format!(
                        "generation panicked: {}",
                        panic_text(payload.as_ref())
                    )),
                    incidents: Vec::new(),
                });
                continue;
            }
        };
        match attempt_entry(&entry, &pool, &machine, &config, harness.time_budget) {
            Ok(completed) => {
                let CompletedGraph {
                    result, incidents, ..
                } = completed;
                replays.push(QuarantineReplay {
                    record: q,
                    outcome: Ok(result),
                    incidents: incidents.into_iter().flatten().collect(),
                });
            }
            Err(e) => replays.push(QuarantineReplay {
                record: q,
                outcome: Err(e),
                incidents: Vec::new(),
            }),
        }
    }
    Ok(replays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate_corpus;
    use crate::runner::run_corpus;
    use dagsched_core::paper_heuristics;
    use dagsched_harness::chaos::PanicScheduler;

    fn tiny_spec() -> CorpusSpec {
        CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=18,
            ..Default::default()
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..Default::default()
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dagsched-ckpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn seal_verify_round_trip_and_tamper_detection() {
        let body = r#"{"schema":"dagsched.checkpoint.v1","kind":"header","x":1}"#;
        let line = seal_record(body);
        assert!(line.contains("\"crc\":\""));
        let j = verify_record(&line).expect("sealed record verifies");
        assert_eq!(j.get("x").unwrap().as_u64(), Some(1));

        let tampered = line.replace("\"x\":1", "\"x\":2");
        assert!(verify_record(&tampered)
            .unwrap_err()
            .contains("checksum mismatch"));
        assert!(verify_record("{\"no\":\"crc\"}").is_err());
        assert!(verify_record("").is_err());
    }

    #[test]
    fn result_record_round_trips_exactly() {
        let spec = tiny_spec();
        let key = spec.set_keys()[7];
        let entry = generate_entry(&spec, key, 0);
        let pool: Vec<Arc<dyn Scheduler>> = paper_heuristics().into_iter().map(Arc::from).collect();
        let names: Vec<&'static str> = pool.iter().map(|h| h.name()).collect();
        let machine: Arc<dyn Machine> = Arc::new(Clique);
        let completed =
            evaluate_entry(&entry, &pool, &machine, &SweepConfig::default(), None).unwrap();

        let line = seal_record(&result_body(&completed));
        let parsed = parse_result(&verify_record(&line).unwrap(), &names).unwrap();
        assert_eq!(parsed.result.key, completed.result.key);
        assert_eq!(parsed.result.serial, completed.result.serial);
        // f64s survive bit-exactly (shortest round-trip formatting).
        assert_eq!(
            parsed.result.granularity.to_bits(),
            completed.result.granularity.to_bits()
        );
        assert_eq!(parsed.result.outcomes, completed.result.outcomes);
        assert_eq!(parsed.incidents, completed.incidents);
        assert_eq!(parsed.attempts, completed.attempts);
    }

    #[test]
    fn cache_record_round_trips_and_rejects_foreign_keys() {
        let rec = CacheRecord {
            key: dagsched_core::schedule_cache_key(0xfeed, "ring:4", "DSC"),
            scheduled_by: "HU".into(),
            placements: vec![(0, 0), (1, 10), (0, 25)],
            incidents: vec![StoredIncident {
                kind: "deadline-exceeded".into(),
                summary: "DSC exceeded its 25ms budget".into(),
            }],
        };
        let line = seal_record(&cache_record_body(&rec));
        let parsed = parse_cache_record(&verify_record(&line).unwrap()).unwrap();
        assert_eq!(parsed, rec);

        // A key outside the canonical composition never warms a cache.
        let alien = CacheRecord {
            key: "some-other-key".into(),
            ..rec
        };
        let line = seal_record(&cache_record_body(&alien));
        let err = parse_cache_record(&verify_record(&line).unwrap()).unwrap_err();
        assert!(err.contains("canonical"), "{err}");
    }

    #[test]
    fn journal_close_syncs_and_reports() {
        let dir = temp_dir("close");
        let path = dir.join("j.jsonl");
        let w = JournalWriter::create(&path).unwrap();
        w.append(r#"{"kind":"a"}"#).unwrap();
        w.close().unwrap();
        assert_eq!(scan_journal(&path).unwrap().records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_record_round_trips() {
        let spec = tiny_spec();
        let key = spec.set_keys()[3];
        let q = QuarantineRecord {
            key,
            index: 4,
            master_seed: spec.seed,
            seed: entry_seed(&spec, key, 4),
            nodes: (12, 18),
            attempts: 3,
            chain: vec!["panicked: \"quoted\"".into(), "exceeded budget".into()],
        };
        let line = seal_record(&quarantine_body(&q));
        let parsed = parse_quarantine(&verify_record(&line).unwrap()).unwrap();
        assert_eq!(parsed, q);
        assert!(q.summary().contains("after 3 attempt(s)"));
        assert!(q.summary().ends_with("exceeded budget"));
    }

    #[test]
    fn scan_truncates_torn_tail_but_rejects_interior_damage() {
        let dir = temp_dir("scan");
        let path = dir.join("j.jsonl");
        let a = seal_record(r#"{"kind":"a"}"#);
        let b = seal_record(r#"{"kind":"b"}"#);
        let c = seal_record(r#"{"kind":"c"}"#);
        let torn = &c[..20];
        std::fs::write(&path, format!("{a}\n{b}\n{torn}")).unwrap();

        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, (a.len() + b.len() + 2) as u64);

        // Resume truncates the torn bytes and appends cleanly.
        let w = JournalWriter::resume(&path, scan.valid_len).unwrap();
        w.append(r#"{"kind":"d"}"#).unwrap();
        let rescan = scan_journal(&path).unwrap();
        assert_eq!(rescan.records.len(), 3);
        assert!(!rescan.torn_tail);

        // Interior damage is a hard error, not a truncation.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replacen("\"kind\":\"a\"", "\"kind\":\"X\"", 1);
        std::fs::write(&path, text).unwrap();
        match scan_journal(&path) {
            Err(CheckpointError::Corrupt { line: 1, .. }) => {}
            other => panic!("expected interior corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_scans_empty() {
        let scan = scan_journal(Path::new("/nonexistent/journal.jsonl")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(!scan.torn_tail);
    }

    #[test]
    fn checkpointed_sweep_matches_plain_runner() {
        let dir = temp_dir("match");
        let spec = tiny_spec();
        let plain = run_corpus(&generate_corpus(&spec), &paper_heuristics());
        let out = run_corpus_checkpointed(
            &spec,
            paper_heuristics(),
            &SweepConfig::default(),
            &dir,
            false,
        )
        .unwrap();
        assert_eq!(out.executed, spec.total_graphs());
        assert_eq!(out.replayed, 0);
        assert!(out.quarantine.is_empty());
        assert_eq!(plain, out.results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_the_journal_and_finishes_identically() {
        let dir = temp_dir("resume");
        let spec = tiny_spec();
        let config = SweepConfig::default();
        let full =
            run_corpus_checkpointed(&spec, paper_heuristics(), &config, &dir, false).unwrap();

        // Simulate a kill: keep the header plus the first 20 records.
        let journal = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&journal).unwrap();
        let kept: Vec<&str> = text.lines().take(21).collect();
        std::fs::write(&journal, format!("{}\n", kept.join("\n"))).unwrap();

        let resumed =
            run_corpus_checkpointed(&spec, paper_heuristics(), &config, &dir, true).unwrap();
        assert_eq!(resumed.replayed, 20);
        assert_eq!(resumed.executed, spec.total_graphs() - 20);
        assert_eq!(resumed.results, full.results);
        assert_eq!(resumed.robustness, full.robustness);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_changed_spec() {
        let dir = temp_dir("mismatch");
        let spec = tiny_spec();
        run_corpus_checkpointed(
            &spec,
            paper_heuristics(),
            &SweepConfig::default(),
            &dir,
            false,
        )
        .unwrap();
        let other = CorpusSpec {
            seed: 12345,
            ..tiny_spec()
        };
        match run_corpus_checkpointed(
            &other,
            paper_heuristics(),
            &SweepConfig::default(),
            &dir,
            true,
        ) {
            Err(CheckpointError::SpecMismatch(_)) => {}
            other => panic!("expected SpecMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_run_refuses_to_clobber_an_existing_journal() {
        let dir = temp_dir("clobber");
        let spec = tiny_spec();
        run_corpus_checkpointed(
            &spec,
            paper_heuristics(),
            &SweepConfig::default(),
            &dir,
            false,
        )
        .unwrap();
        match run_corpus_checkpointed(
            &spec,
            paper_heuristics(),
            &SweepConfig::default(),
            &dir,
            false,
        ) {
            Err(CheckpointError::WouldClobber(_)) => {}
            other => panic!("expected WouldClobber, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trusted_sweep_quarantines_a_poison_heuristic_and_strict_fails() {
        let dir = temp_dir("quarantine");
        let spec = tiny_spec();
        let poison = || -> Vec<Box<dyn Scheduler>> { vec![Box::new(PanicScheduler)] };
        let config = SweepConfig {
            harness: None,
            retry: fast_retry(),
            strict: false,
            machine: MachineSpec::Uniform,
            progress: None,
        };
        let out = run_corpus_checkpointed(&spec, poison(), &config, &dir, false).unwrap();
        assert!(out.results.is_empty(), "every graph exhausted its retries");
        assert_eq!(out.quarantine.len(), spec.total_graphs());
        assert_eq!(out.robustness.quarantined.len(), spec.total_graphs());
        for q in &out.quarantine {
            assert_eq!(q.attempts, 2);
            assert_eq!(q.chain.len(), 2);
            assert!(q.chain[0].starts_with("panicked:"), "{:?}", q.chain);
        }
        assert!(out
            .robustness
            .render()
            .contains("quarantined after exhausting retries"));

        // The quarantine journal replays on resume without re-running.
        let resumed = run_corpus_checkpointed(&spec, poison(), &config, &dir, true).unwrap();
        assert_eq!(resumed.replayed, spec.total_graphs());
        assert_eq!(resumed.executed, 0);
        assert_eq!(resumed.quarantine.len(), spec.total_graphs());

        // Strict mode turns the same state into a hard failure.
        let strict = SweepConfig {
            strict: true,
            ..config
        };
        match run_corpus_checkpointed(&spec, poison(), &strict, &dir, true) {
            Err(CheckpointError::StrictQuarantine(n)) => assert_eq!(n, spec.total_graphs()),
            other => panic!("expected StrictQuarantine, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harnessed_sweep_contains_the_same_poison_without_quarantine() {
        let dir = temp_dir("contained");
        let spec = tiny_spec();
        let mut heuristics = paper_heuristics();
        heuristics.push(Box::new(PanicScheduler));
        let out = run_corpus_checkpointed(
            &spec,
            heuristics,
            &SweepConfig {
                retry: fast_retry(),
                ..Default::default()
            },
            &dir,
            false,
        )
        .unwrap();
        assert!(
            out.quarantine.is_empty(),
            "harness contains the panic per run"
        );
        assert_eq!(out.results.len(), spec.total_graphs());
        let chaos = out
            .robustness
            .tallies
            .iter()
            .find(|t| t.name == "CHAOS-PANIC")
            .unwrap();
        assert_eq!(chaos.panics, spec.total_graphs());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_quarantine_regenerates_and_contains_the_failure() {
        let dir = temp_dir("replay");
        let spec = tiny_spec();
        let config = SweepConfig {
            harness: None,
            retry: fast_retry(),
            strict: false,
            machine: MachineSpec::Uniform,
            progress: None,
        };
        run_corpus_checkpointed(
            &spec,
            vec![Box::new(PanicScheduler) as Box<dyn Scheduler>],
            &config,
            &dir,
            false,
        )
        .unwrap();
        let replays = replay_quarantine(
            &dir.join(QUARANTINE_FILE),
            vec![Box::new(PanicScheduler) as Box<dyn Scheduler>],
            HarnessConfig::default(),
        )
        .unwrap();
        assert_eq!(replays.len(), spec.total_graphs());
        for replay in &replays {
            // Under the harness the panic is contained: the replay
            // completes via the fallback chain and surfaces the panic
            // as an incident.
            let result = replay.outcome.as_ref().expect("harnessed replay completes");
            assert_eq!(result.key, replay.record.key);
            assert_eq!(result.index, replay.record.index);
            assert!(replay.incidents.iter().any(|i| i.kind == "panic"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervised_sweep_without_journal_matches_plain_runner() {
        let spec = tiny_spec();
        let corpus = generate_corpus(&spec);
        let plain = run_corpus(&corpus, &paper_heuristics());
        let out =
            run_corpus_supervised(&corpus, paper_heuristics(), &SweepConfig::default()).unwrap();
        assert_eq!(out.results, plain);
        assert!(out.quarantine.is_empty());
        assert_eq!(out.executed, corpus.len());
    }

    #[test]
    fn band_slugs_invert() {
        for &band in GranularityBand::ALL.iter() {
            assert_eq!(band_from_slug(band_slug(band)), Some(band));
        }
        assert_eq!(band_from_slug("nope"), None);
    }
}
