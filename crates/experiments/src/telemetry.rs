//! Traced corpus runs: per-(graph, heuristic) collector scopes and
//! JSONL telemetry emission.
//!
//! [`run_corpus_traced`] is the instrumented sibling of
//! [`run_corpus`](crate::runner::run_corpus) /
//! [`run_corpus_robust`](crate::runner::run_corpus_robust): every
//! (graph, heuristic) pair runs inside its own `dagsched-obs` run
//! scope, so the counters, gauges, histograms and spans recorded by
//! the schedulers (and the harness) are harvested per run and can be
//! streamed as one [`RunRecord`] JSONL line each via
//! [`TracedCorpusRun::write_trace`].
//!
//! Determinism: records are emitted sequentially in corpus order
//! *after* the parallel phase (the order-preserving `par_map` pins
//! every run to its index), so two runs of the same seeded corpus
//! produce byte-identical trace files modulo the `"ns"` span-timing
//! fields — the one nondeterministic quantity in the schema.

use crate::corpus::CorpusEntry;
use crate::reporter::Reporter;
use crate::runner::{finish_outcomes, new_tallies, tally_run, GraphResult, RobustnessStats};
use dagsched_core::Scheduler;
use dagsched_gen::spec::GranularityBand;
use dagsched_harness::{HarnessConfig, Incident, RobustScheduler};
use dagsched_obs as obs;
use dagsched_obs::{GraphMeta, IncidentMeta, RunRecord, Summary, TelemetrySink};
use dagsched_sim::{metrics, validate, Clique, Machine};
use std::io;
use std::sync::Arc;

/// Kebab-case band slug used in graph ids and the `"band"` JSON field.
pub fn band_slug(band: GranularityBand) -> &'static str {
    match band {
        GranularityBand::VeryFine => "very-fine",
        GranularityBand::Fine => "fine",
        GranularityBand::Medium => "medium",
        GranularityBand::Coarse => "coarse",
        GranularityBand::VeryCoarse => "very-coarse",
    }
}

/// Stable identifier of a corpus entry, e.g. `"fine/a4/w20-100/3"`.
pub fn entry_id(entry: &CorpusEntry) -> String {
    format!(
        "{}/a{}/w{}-{}/{}",
        band_slug(entry.key.band),
        entry.key.anchor,
        entry.key.weights.lo,
        entry.key.weights.hi,
        entry.index
    )
}

/// What one (graph, heuristic) run left behind, beyond its outcome
/// row: who actually scheduled, the contained incidents, and the
/// harvested metrics.
#[derive(Debug)]
pub struct TracedRun {
    /// The requested heuristic.
    pub heuristic: &'static str,
    /// The scheduler whose output was kept (a fallback on faults).
    pub scheduled_by: &'static str,
    /// Incidents contained by the harness during this run.
    pub incidents: Vec<Incident>,
    /// Metrics harvested from the run's collector scope (empty when
    /// the `obs` feature is compiled out).
    pub stats: obs::RunStats,
}

/// A whole corpus run with per-run telemetry attached.
#[derive(Debug)]
pub struct TracedCorpusRun {
    /// Per-graph results, in corpus order (as `run_corpus`).
    pub results: Vec<GraphResult>,
    /// Per-graph, per-heuristic traced runs, parallel to `results`.
    pub runs: Vec<Vec<TracedRun>>,
    /// Per-graph stats of the one-time `DagAnalysis` warm-up (the
    /// `dag.analysis.*` counters), parallel to `results`. Harvested in
    /// a scope of their own — deliberately *not* part of any run's
    /// [`RunRecord`], so traces stay identical whether a graph's cache
    /// was cold or warm when the sweep reached it.
    pub analysis: Vec<obs::RunStats>,
    /// Fault-isolation report when the run was harnessed.
    pub robustness: Option<RobustnessStats>,
}

enum Pool {
    Trusted(Vec<Box<dyn Scheduler>>),
    Robust(Vec<RobustScheduler>),
}

/// Evaluates `heuristics` over the corpus with one collector scope per
/// (graph, heuristic) run. With a `harness` config each heuristic runs
/// fault-isolated (as [`run_corpus_robust`](crate::runner::run_corpus_robust));
/// without one it runs trusted. A `progress` reporter gets one ordered
/// section per graph carrying any incident lines, so parallel workers
/// never interleave their output.
pub fn run_corpus_traced(
    corpus: &[CorpusEntry],
    heuristics: Vec<Box<dyn Scheduler>>,
    harness: Option<HarnessConfig>,
    progress: Option<&Reporter>,
) -> TracedCorpusRun {
    let pool = match harness {
        Some(config) => Pool::Robust(
            heuristics
                .into_iter()
                .map(|h| RobustScheduler::new(Arc::from(h)).with_config(config))
                .collect(),
        ),
        None => Pool::Trusted(heuristics),
    };
    let machine: Arc<dyn Machine> = Arc::new(Clique);

    let per_graph = dagsched_par::par_map(corpus, |i, entry| {
        let section = progress.map(|r| r.section(i));
        let traced = evaluate_graph_traced(entry, &pool, &machine);
        if let Some(mut section) = section {
            for run in &traced.1 {
                for incident in &run.incidents {
                    section.line(&format!("incident: {}", incident.summary()));
                }
            }
        }
        traced
    });

    let robust_names: Option<Vec<&'static str>> = match &pool {
        Pool::Trusted(_) => None,
        Pool::Robust(ws) => Some(ws.iter().map(|w| w.name()).collect()),
    };
    let mut results = Vec::with_capacity(per_graph.len());
    let mut runs = Vec::with_capacity(per_graph.len());
    let mut analysis = Vec::with_capacity(per_graph.len());
    for (result, traced, warm) in per_graph {
        results.push(result);
        runs.push(traced);
        analysis.push(warm);
    }
    let robustness = robust_names.map(|names| {
        let mut tallies = new_tallies(&names, corpus.len());
        let mut incident_summaries = Vec::new();
        for traced in &runs {
            for (i, run) in traced.iter().enumerate() {
                tally_run(&mut tallies[i], &run.incidents, &mut incident_summaries);
            }
        }
        RobustnessStats {
            tallies,
            incident_summaries,
            quarantined: Vec::new(),
        }
    });
    TracedCorpusRun {
        results,
        runs,
        analysis,
        robustness,
    }
}

fn evaluate_graph_traced(
    entry: &CorpusEntry,
    pool: &Pool,
    machine: &Arc<dyn Machine>,
) -> (GraphResult, Vec<TracedRun>, obs::RunStats) {
    let g = &entry.graph;
    // Materialize the graph's DagAnalysis cache exactly once, in a
    // scope of its own: every heuristic below then reads the shared
    // labellings, and no per-run scope ever records a top-level
    // `dag.analysis.*` counter — which keeps the emitted trace
    // independent of cache temperature.
    let warm_scope = obs::run_scope();
    g.warm_analysis();
    let warm_stats = warm_scope.finish();
    let count = match pool {
        Pool::Trusted(hs) => hs.len(),
        Pool::Robust(ws) => ws.len(),
    };
    let mut partial: Vec<(&'static str, metrics::Measures)> = Vec::with_capacity(count);
    let mut traced: Vec<TracedRun> = Vec::with_capacity(count);
    for i in 0..count {
        let scope = obs::run_scope();
        let span = obs::span!("run.schedule");
        let (schedule, name, scheduled_by, incidents) = match pool {
            Pool::Trusted(hs) => {
                let s = hs[i].schedule(g, machine.as_ref());
                debug_assert!(
                    validate::is_valid(g, machine.as_ref(), &s),
                    "{} produced an invalid schedule",
                    hs[i].name()
                );
                (s, hs[i].name(), hs[i].name(), Vec::new())
            }
            Pool::Robust(ws) => {
                let out = ws[i].run(g, machine);
                (out.schedule, ws[i].name(), out.scheduled_by, out.incidents)
            }
        };
        drop(span);
        let stats = scope.finish();
        partial.push((name, metrics::measures(g, &schedule)));
        traced.push(TracedRun {
            heuristic: name,
            scheduled_by,
            incidents,
            stats,
        });
    }
    let result = GraphResult {
        key: entry.key,
        index: entry.index,
        serial: g.serial_time(),
        granularity: entry.granularity,
        outcomes: finish_outcomes(partial),
    };
    (result, traced, warm_stats)
}

/// Builds the telemetry record of one traced run.
pub fn record_for(entry: &CorpusEntry, result: &GraphResult, run: &TracedRun) -> RunRecord {
    let outcome = result.outcome(run.heuristic);
    RunRecord {
        graph: GraphMeta {
            id: entry_id(entry),
            index: Some(entry.index as u64),
            band: Some(band_slug(entry.key.band).to_string()),
            anchor_out_degree: Some(entry.key.anchor as u64),
            weights: Some((entry.key.weights.lo, entry.key.weights.hi)),
            nodes: entry.graph.num_nodes() as u64,
            edges: entry.graph.num_edges() as u64,
            serial_time: Some(entry.graph.serial_time()),
            granularity: Some(entry.granularity),
        },
        heuristic: run.heuristic.to_string(),
        scheduled_by: Some(run.scheduled_by.to_string()),
        ok: true,
        processors: Some(outcome.procs as u64),
        makespan: Some(outcome.parallel_time),
        speedup: outcome.speedup.is_finite().then_some(outcome.speedup),
        incidents: run
            .incidents
            .iter()
            .map(|inc| IncidentMeta {
                heuristic: inc.heuristic.to_string(),
                kind: inc.fault.kind().to_string(),
                summary: inc.summary(),
            })
            .collect(),
        stats: run.stats.clone(),
    }
}

impl TracedCorpusRun {
    /// Aggregates every run into the per-heuristic [`Summary`]
    /// (without emitting anything).
    pub fn summarize(&self, corpus: &[CorpusEntry]) -> Summary {
        let mut summary = Summary::default();
        for ((entry, result), traced) in corpus.iter().zip(&self.results).zip(&self.runs) {
            for run in traced {
                summary.observe(&record_for(entry, result, run));
            }
        }
        summary
    }

    /// Streams one [`RunRecord`] line per (graph, heuristic) run to
    /// `sink`, sequentially in corpus order, followed by one summary
    /// line per heuristic. Returns the aggregate.
    pub fn write_trace(&self, corpus: &[CorpusEntry], sink: &TelemetrySink) -> io::Result<Summary> {
        let mut summary = Summary::default();
        for ((entry, result), traced) in corpus.iter().zip(&self.results).zip(&self.runs) {
            for run in traced {
                let record = record_for(entry, result, run);
                sink.emit(&record)?;
                summary.observe(&record);
            }
        }
        sink.emit_summary(&summary)?;
        sink.flush()?;
        Ok(summary)
    }

    /// Renders every run's span tree as one Chrome trace-event JSON
    /// document (one trace thread per heuristic, runs laid end-to-end
    /// in corpus order). Like the JSONL stream, the document is
    /// byte-identical across same-seed sweeps modulo the `ts`/`dur`
    /// timing values; see [`obs::ChromeTrace`].
    pub fn render_chrome_trace(&self, corpus: &[CorpusEntry]) -> String {
        let mut trace = obs::ChromeTrace::new();
        for (entry, traced) in corpus.iter().zip(&self.runs) {
            let id = entry_id(entry);
            for run in traced {
                trace.add_run(run.heuristic, &id, &run.stats);
            }
        }
        trace.finish()
    }

    /// Writes [`TracedCorpusRun::render_chrome_trace`] to `out`.
    pub fn write_chrome_trace(
        &self,
        corpus: &[CorpusEntry],
        out: &mut dyn io::Write,
    ) -> io::Result<()> {
        out.write_all(self.render_chrome_trace(corpus).as_bytes())?;
        out.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};
    use crate::runner::run_corpus;
    use dagsched_core::paper_heuristics;
    use dagsched_obs::{Json, RUN_SCHEMA, SUMMARY_SCHEMA};

    fn tiny_corpus() -> Vec<CorpusEntry> {
        generate_corpus(&CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=18,
            ..Default::default()
        })
    }

    #[test]
    fn traced_results_match_the_plain_runner() {
        let corpus = tiny_corpus();
        let plain = run_corpus(&corpus, &paper_heuristics());
        let traced = run_corpus_traced(&corpus, paper_heuristics(), None, None);
        assert!(traced.robustness.is_none());
        assert_eq!(plain.len(), traced.results.len());
        for (p, t) in plain.iter().zip(&traced.results) {
            for (po, to) in p.outcomes.iter().zip(&t.outcomes) {
                assert_eq!(po.name, to.name);
                assert_eq!(po.parallel_time, to.parallel_time);
                assert_eq!(po.nrpt, to.nrpt);
            }
        }
    }

    #[test]
    fn trace_stream_has_one_record_per_graph_heuristic() {
        let corpus = tiny_corpus();
        let traced = run_corpus_traced(
            &corpus,
            paper_heuristics(),
            Some(HarnessConfig::default()),
            None,
        );
        let (sink, buffer) = TelemetrySink::in_memory();
        let summary = traced.write_trace(&corpus, &sink).unwrap();
        assert!(!summary.is_empty());

        let text = buffer.contents();
        let mut run_lines = 0;
        let mut summary_lines = 0;
        for line in text.lines() {
            let j = Json::parse(line).expect("schema-valid JSONL");
            match j.get("schema").unwrap().as_str().unwrap() {
                RUN_SCHEMA => {
                    run_lines += 1;
                    assert!(j
                        .get("graph")
                        .unwrap()
                        .get("band")
                        .unwrap()
                        .as_str()
                        .is_some());
                    assert!(j.get("makespan").unwrap().as_u64().is_some());
                }
                SUMMARY_SCHEMA => summary_lines += 1,
                other => panic!("unexpected schema {other}"),
            }
        }
        assert_eq!(run_lines, corpus.len() * 5);
        assert_eq!(summary_lines, 5);
        // First record belongs to the first corpus entry.
        let first = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("graph").unwrap().get("id").unwrap().as_str(),
            Some(entry_id(&corpus[0]).as_str())
        );
    }

    #[test]
    fn fallback_runs_are_traced_with_their_incidents() {
        use dagsched_harness::chaos::PanicScheduler;
        let corpus = tiny_corpus()[..3].to_vec();
        let mut heuristics = paper_heuristics();
        heuristics.push(Box::new(PanicScheduler));
        let traced = run_corpus_traced(&corpus, heuristics, Some(HarnessConfig::default()), None);
        let stats = traced.robustness.as_ref().expect("harnessed");
        assert_eq!(stats.total_incidents(), corpus.len());
        for traced_runs in &traced.runs {
            let chaos = traced_runs.last().unwrap();
            assert_eq!(chaos.heuristic, "CHAOS-PANIC");
            assert_eq!(chaos.scheduled_by, "HU");
            assert_eq!(chaos.incidents.len(), 1);
        }
        let summary = traced.summarize(&corpus);
        let row = summary
            .rows()
            .into_iter()
            .find(|r| r.heuristic == "CHAOS-PANIC")
            .expect("chaos row");
        assert_eq!(row.fallbacks, corpus.len() as u64);
        assert_eq!(row.incidents, corpus.len() as u64);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn per_run_stats_carry_scheduler_metrics() {
        let corpus = tiny_corpus()[..2].to_vec();
        let traced = run_corpus_traced(&corpus, paper_heuristics(), None, None);
        for runs in &traced.runs {
            for run in runs {
                assert!(
                    run.stats.span("run.schedule").is_some(),
                    "{} missing run span",
                    run.heuristic
                );
            }
            let dsc = runs.iter().find(|r| r.heuristic == "DSC").unwrap();
            assert!(dsc.stats.counter("dsc.merges") + dsc.stats.counter("dsc.new_clusters") > 0);
            let mh = runs.iter().find(|r| r.heuristic == "MH").unwrap();
            assert!(mh.stats.histogram("mh.ready_list_len").is_some());
        }
    }

    #[test]
    fn band_slugs_cover_all_bands() {
        let slugs: Vec<&str> = GranularityBand::ALL.iter().map(|&b| band_slug(b)).collect();
        assert_eq!(
            slugs,
            vec!["very-fine", "fine", "medium", "coarse", "very-coarse"]
        );
    }
}
