//! Runs heuristics over the corpus and records the paper's measures.
//!
//! Two runners: [`run_corpus`] trusts the heuristics (a faulty one
//! aborts the study), while [`run_corpus_robust`] wraps each in a
//! [`RobustScheduler`] so panics, invalid schedules and deadline
//! overruns are contained as [`Incident`]s and aggregated into a
//! [`RobustnessStats`] report.

use crate::corpus::{CorpusEntry, SetKey};
use dagsched_core::Scheduler;
use dagsched_dag::Weight;
use dagsched_harness::{Fault, HarnessConfig, Incident, RobustScheduler};
use dagsched_sim::{metrics, validate, Clique, Machine};
use std::fmt::Write as _;
use std::sync::Arc;

/// One heuristic's outcome on one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicOutcome {
    /// Heuristic name (paper column).
    pub name: &'static str,
    /// Parallel time (makespan).
    pub parallel_time: Weight,
    /// `serial / parallel`.
    pub speedup: f64,
    /// `speedup / processors`.
    pub efficiency: f64,
    /// Processors used.
    pub procs: usize,
    /// Normalized relative parallel time against the best heuristic on
    /// this graph.
    pub nrpt: f64,
}

/// All heuristics' outcomes on one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphResult {
    /// The corpus set of the graph.
    pub key: SetKey,
    /// Index within the set.
    pub index: usize,
    /// Serial time of the graph.
    pub serial: Weight,
    /// Measured granularity.
    pub granularity: f64,
    /// One outcome per heuristic, in registry order.
    pub outcomes: Vec<HeuristicOutcome>,
}

impl GraphResult {
    /// The outcome of the heuristic called `name`.
    pub fn outcome(&self, name: &str) -> &HeuristicOutcome {
        self.outcomes
            .iter()
            .find(|o| o.name == name)
            .unwrap_or_else(|| panic!("no outcome for {name}"))
    }
}

/// Evaluates `heuristics` on a single graph under the paper's machine
/// model (unbounded clique), validating every schedule against the
/// independent oracle.
pub fn evaluate_graph(entry: &CorpusEntry, heuristics: &[Box<dyn Scheduler>]) -> GraphResult {
    evaluate_graph_on(entry, heuristics, &Clique)
}

/// As [`evaluate_graph`], but under an arbitrary machine model: every
/// schedule is validated (and its efficiency measured) against the
/// same `machine` the heuristics scheduled for.
pub fn evaluate_graph_on(
    entry: &CorpusEntry,
    heuristics: &[Box<dyn Scheduler>],
    machine: &dyn Machine,
) -> GraphResult {
    let g = &entry.graph;
    let mut partial: Vec<(&'static str, metrics::Measures)> = Vec::with_capacity(heuristics.len());
    for h in heuristics {
        let s = h.schedule(g, machine);
        debug_assert!(
            validate::is_valid(g, machine, &s),
            "{} produced an invalid schedule",
            h.name()
        );
        partial.push((h.name(), metrics::measures_on(g, &s, machine)));
    }
    GraphResult {
        key: entry.key,
        index: entry.index,
        serial: g.serial_time(),
        granularity: entry.granularity,
        outcomes: finish_outcomes(partial),
    }
}

/// Turns per-heuristic measures into outcome rows, computing the NRPT
/// column across the group (shared by every runner variant).
pub(crate) fn finish_outcomes(
    partial: Vec<(&'static str, metrics::Measures)>,
) -> Vec<HeuristicOutcome> {
    let parallel_times: Vec<Weight> = partial.iter().map(|(_, m)| m.parallel_time).collect();
    let nrpts = metrics::normalized_relative_pts(&parallel_times);
    partial
        .into_iter()
        .zip(nrpts)
        .map(|((name, m), nrpt)| HeuristicOutcome {
            name,
            parallel_time: m.parallel_time,
            speedup: m.speedup,
            efficiency: m.efficiency,
            procs: m.procs,
            nrpt,
        })
        .collect()
}

/// Evaluates `heuristics` over the whole corpus, in parallel.
pub fn run_corpus(corpus: &[CorpusEntry], heuristics: &[Box<dyn Scheduler>]) -> Vec<GraphResult> {
    dagsched_par::par_map(corpus, |_, entry| evaluate_graph(entry, heuristics))
}

/// As [`run_corpus`], but under an arbitrary machine model.
pub fn run_corpus_on(
    corpus: &[CorpusEntry],
    heuristics: &[Box<dyn Scheduler>],
    machine: &Arc<dyn Machine>,
) -> Vec<GraphResult> {
    dagsched_par::par_map(corpus, |_, entry| {
        evaluate_graph_on(entry, heuristics, machine.as_ref())
    })
}

/// Containment counters for one (primary) heuristic across a robust
/// corpus run. Faults raised by fallback entries of the chain are
/// attributed to the primary whose run needed them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTally {
    /// The requested (primary) heuristic.
    pub name: &'static str,
    /// Graphs this heuristic was asked to schedule.
    pub runs: usize,
    /// Contained panics.
    pub panics: usize,
    /// Schedules rejected by the oracle gate.
    pub invalid: usize,
    /// Attempts abandoned by the watchdog.
    pub timeouts: usize,
    /// Runs completed by a fallback instead of the primary.
    pub fallbacks: usize,
}

impl FaultTally {
    /// `true` when every run completed via the primary heuristic.
    pub fn clean(&self) -> bool {
        self.fallbacks == 0 && self.panics == 0 && self.invalid == 0 && self.timeouts == 0
    }
}

/// Aggregated robustness report for a corpus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RobustnessStats {
    /// One tally per heuristic, in registry order.
    pub tallies: Vec<FaultTally>,
    /// Deterministic one-line summaries of every incident, in corpus
    /// order.
    pub incident_summaries: Vec<String>,
    /// One-line summaries of graphs quarantined by a checkpointed
    /// sweep (empty for the plain runners). Quarantined graphs carry
    /// no outcome rows, so they are excluded from every table average;
    /// the rendered report says so explicitly.
    pub quarantined: Vec<String>,
}

impl RobustnessStats {
    /// Total number of contained faults across all heuristics.
    pub fn total_incidents(&self) -> usize {
        self.incident_summaries.len()
    }

    /// Renders the report as a markdown section.
    pub fn render(&self) -> String {
        const MAX_LISTED: usize = 20;
        let mut out = String::from("## Robustness report\n\n");
        writeln!(
            out,
            "| heuristic | runs | panics | invalid | timeouts | fallbacks |"
        )
        .unwrap();
        writeln!(out, "|---|---:|---:|---:|---:|---:|").unwrap();
        for t in &self.tallies {
            writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                t.name, t.runs, t.panics, t.invalid, t.timeouts, t.fallbacks
            )
            .unwrap();
        }
        if self.incident_summaries.is_empty() {
            out.push_str("\nno incidents: every run completed via the requested heuristic\n");
        } else {
            writeln!(out, "\n{} incident(s):\n", self.total_incidents()).unwrap();
            for s in self.incident_summaries.iter().take(MAX_LISTED) {
                writeln!(out, "- {s}").unwrap();
            }
            if self.total_incidents() > MAX_LISTED {
                writeln!(
                    out,
                    "- ... and {} more",
                    self.total_incidents() - MAX_LISTED
                )
                .unwrap();
            }
        }
        if !self.quarantined.is_empty() {
            writeln!(
                out,
                "\n{} graph(s) quarantined after exhausting retries:\n",
                self.quarantined.len()
            )
            .unwrap();
            for s in self.quarantined.iter().take(MAX_LISTED) {
                writeln!(out, "- {s}").unwrap();
            }
            if self.quarantined.len() > MAX_LISTED {
                writeln!(
                    out,
                    "- ... and {} more",
                    self.quarantined.len() - MAX_LISTED
                )
                .unwrap();
            }
            out.push_str(
                "\nfootnote: quarantined graphs are excluded from every average above; \
                 replay them standalone with `dagsched --replay-quarantine <quarantine.jsonl>` \
                 or fail such runs outright with `--strict`.\n",
            );
        }
        out
    }
}

/// Evaluates one graph with fault isolation. Returns the usual
/// [`GraphResult`] plus, per heuristic (outer index = registry
/// order), the incidents its run raised.
pub fn evaluate_graph_robust(
    entry: &CorpusEntry,
    wrapped: &[RobustScheduler],
    machine: &Arc<dyn Machine>,
) -> (GraphResult, Vec<Vec<Incident>>) {
    let g = &entry.graph;
    let mut partial: Vec<(&'static str, metrics::Measures)> = Vec::with_capacity(wrapped.len());
    let mut incidents = Vec::with_capacity(wrapped.len());
    for robust in wrapped {
        let out = robust.run(g, machine);
        partial.push((
            robust.name(),
            metrics::measures_on(g, &out.schedule, machine.as_ref()),
        ));
        incidents.push(out.incidents);
    }
    (
        GraphResult {
            key: entry.key,
            index: entry.index,
            serial: g.serial_time(),
            granularity: entry.granularity,
            outcomes: finish_outcomes(partial),
        },
        incidents,
    )
}

/// Evaluates `heuristics` over the whole corpus with fault isolation:
/// each is wrapped in a [`RobustScheduler`] (default fallback chain,
/// `config` policy), every schedule entering the result tables is
/// oracle-gated, and contained faults come back aggregated as
/// [`RobustnessStats`].
pub fn run_corpus_robust(
    corpus: &[CorpusEntry],
    heuristics: Vec<Box<dyn Scheduler>>,
    config: HarnessConfig,
) -> (Vec<GraphResult>, RobustnessStats) {
    run_corpus_robust_on(corpus, heuristics, config, Arc::new(Clique))
}

/// As [`run_corpus_robust`], but under an arbitrary machine model: the
/// heuristics schedule for `machine`, the oracle gate validates under
/// it, and efficiency is measured against its processor limit.
pub fn run_corpus_robust_on(
    corpus: &[CorpusEntry],
    heuristics: Vec<Box<dyn Scheduler>>,
    config: HarnessConfig,
    machine: Arc<dyn Machine>,
) -> (Vec<GraphResult>, RobustnessStats) {
    let wrapped: Vec<RobustScheduler> = heuristics
        .into_iter()
        .map(|h| RobustScheduler::new(Arc::from(h)).with_config(config))
        .collect();
    let per_graph = dagsched_par::par_map(corpus, |_, entry| {
        evaluate_graph_robust(entry, &wrapped, &machine)
    });

    let names: Vec<&'static str> = wrapped.iter().map(|r| r.name()).collect();
    let mut tallies = new_tallies(&names, corpus.len());
    let mut incident_summaries = Vec::new();
    let mut results = Vec::with_capacity(per_graph.len());
    for (result, per_heuristic) in per_graph {
        for (i, run_incidents) in per_heuristic.iter().enumerate() {
            tally_run(&mut tallies[i], run_incidents, &mut incident_summaries);
        }
        results.push(result);
    }
    (
        results,
        RobustnessStats {
            tallies,
            incident_summaries,
            quarantined: Vec::new(),
        },
    )
}

/// Fresh zeroed tallies, one per primary heuristic.
pub(crate) fn new_tallies(names: &[&'static str], runs: usize) -> Vec<FaultTally> {
    names
        .iter()
        .map(|&name| FaultTally {
            name,
            runs,
            panics: 0,
            invalid: 0,
            timeouts: 0,
            fallbacks: 0,
        })
        .collect()
}

/// Folds one run's incidents into its heuristic's tally and the
/// chronological summary list (shared by every robust runner variant).
pub(crate) fn tally_run(
    tally: &mut FaultTally,
    run_incidents: &[Incident],
    summaries: &mut Vec<String>,
) {
    if !run_incidents.is_empty() {
        tally.fallbacks += 1;
    }
    for incident in run_incidents {
        match &incident.fault {
            Fault::Panic(_) => tally.panics += 1,
            Fault::Invalid(_) => tally.invalid += 1,
            Fault::DeadlineExceeded { .. } => tally.timeouts += 1,
        }
        summaries.push(incident.summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};
    use dagsched_core::paper_heuristics;

    fn tiny_run() -> Vec<GraphResult> {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 15..=25,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        run_corpus(&corpus, &paper_heuristics())
    }

    #[test]
    fn every_graph_gets_five_outcomes() {
        let results = tiny_run();
        assert_eq!(results.len(), 60);
        for r in &results {
            assert_eq!(r.outcomes.len(), 5);
            let names: Vec<_> = r.outcomes.iter().map(|o| o.name).collect();
            assert_eq!(names, vec!["CLANS", "DSC", "MCP", "MH", "HU"]);
        }
    }

    #[test]
    fn nrpt_has_a_zero_per_graph() {
        for r in tiny_run() {
            let min = r
                .outcomes
                .iter()
                .map(|o| o.nrpt)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(min, 0.0, "best heuristic scores 0 NRPT");
            for o in &r.outcomes {
                assert!(o.nrpt >= 0.0);
            }
        }
    }

    #[test]
    fn clans_never_retards() {
        for r in tiny_run() {
            let clans = r.outcome("CLANS");
            assert!(
                clans.speedup >= 1.0 - 1e-12,
                "CLANS speedup {} on {:?} #{}",
                clans.speedup,
                r.key,
                r.index
            );
        }
    }

    #[test]
    fn speedup_consistency() {
        for r in tiny_run() {
            for o in &r.outcomes {
                let expect = r.serial as f64 / o.parallel_time as f64;
                assert!((o.speedup - expect).abs() < 1e-9);
                assert!((o.efficiency - o.speedup / o.procs as f64).abs() < 1e-9);
            }
        }
    }

    fn tiny_corpus() -> Vec<CorpusEntry> {
        generate_corpus(&CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=18,
            ..Default::default()
        })
    }

    #[test]
    fn robust_run_matches_trusting_run_on_healthy_heuristics() {
        let corpus = tiny_corpus();
        let plain = run_corpus(&corpus, &paper_heuristics());
        let (robust, stats) =
            run_corpus_robust(&corpus, paper_heuristics(), HarnessConfig::default());
        assert_eq!(stats.total_incidents(), 0);
        assert!(stats.tallies.iter().all(FaultTally::clean));
        assert_eq!(plain.len(), robust.len());
        for (p, r) in plain.iter().zip(&robust) {
            for (po, ro) in p.outcomes.iter().zip(&r.outcomes) {
                assert_eq!(po.name, ro.name);
                assert_eq!(po.parallel_time, ro.parallel_time);
            }
        }
        assert!(stats.render().contains("no incidents"));
    }

    #[test]
    fn faulty_heuristic_is_tallied_and_the_run_still_completes() {
        use dagsched_harness::chaos::PanicScheduler;
        let corpus = tiny_corpus();
        let mut heuristics = paper_heuristics();
        heuristics.push(Box::new(PanicScheduler));
        let (results, stats) = run_corpus_robust(&corpus, heuristics, HarnessConfig::default());
        assert_eq!(results.len(), corpus.len());
        let chaos = stats
            .tallies
            .iter()
            .find(|t| t.name == "CHAOS-PANIC")
            .expect("chaos tally present");
        assert_eq!(chaos.runs, corpus.len());
        assert_eq!(chaos.panics, corpus.len());
        assert_eq!(chaos.fallbacks, corpus.len());
        assert_eq!(stats.total_incidents(), corpus.len());
        // Healthy heuristics are untouched by the chaos column.
        for t in stats.tallies.iter().filter(|t| t.name != "CHAOS-PANIC") {
            assert!(t.clean(), "{} tally not clean", t.name);
        }
        // Every graph still gets a full outcome row, chaos included
        // (scheduled by its fallback).
        for r in &results {
            assert_eq!(r.outcomes.len(), 6);
            assert!(r.outcome("CHAOS-PANIC").parallel_time > 0);
        }
        let report = stats.render();
        assert!(report.contains("## Robustness report"));
        assert!(report.contains("CHAOS-PANIC"));
        assert!(report.contains("panicked"));
    }
}
