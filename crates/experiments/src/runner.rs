//! Runs heuristics over the corpus and records the paper's measures.

use crate::corpus::{CorpusEntry, SetKey};
use dagsched_core::Scheduler;
use dagsched_dag::Weight;
use dagsched_sim::{metrics, validate, Clique};

/// One heuristic's outcome on one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicOutcome {
    /// Heuristic name (paper column).
    pub name: &'static str,
    /// Parallel time (makespan).
    pub parallel_time: Weight,
    /// `serial / parallel`.
    pub speedup: f64,
    /// `speedup / processors`.
    pub efficiency: f64,
    /// Processors used.
    pub procs: usize,
    /// Normalized relative parallel time against the best heuristic on
    /// this graph.
    pub nrpt: f64,
}

/// All heuristics' outcomes on one graph.
#[derive(Debug, Clone)]
pub struct GraphResult {
    /// The corpus set of the graph.
    pub key: SetKey,
    /// Index within the set.
    pub index: usize,
    /// Serial time of the graph.
    pub serial: Weight,
    /// Measured granularity.
    pub granularity: f64,
    /// One outcome per heuristic, in registry order.
    pub outcomes: Vec<HeuristicOutcome>,
}

impl GraphResult {
    /// The outcome of the heuristic called `name`.
    pub fn outcome(&self, name: &str) -> &HeuristicOutcome {
        self.outcomes
            .iter()
            .find(|o| o.name == name)
            .unwrap_or_else(|| panic!("no outcome for {name}"))
    }
}

/// Evaluates `heuristics` on a single graph under the paper's machine
/// model (unbounded clique), validating every schedule against the
/// independent oracle.
pub fn evaluate_graph(entry: &CorpusEntry, heuristics: &[Box<dyn Scheduler>]) -> GraphResult {
    let g = &entry.graph;
    let machine = Clique;
    let mut parallel_times = Vec::with_capacity(heuristics.len());
    let mut partial: Vec<(&'static str, metrics::Measures)> = Vec::with_capacity(heuristics.len());
    for h in heuristics {
        let s = h.schedule(g, &machine);
        debug_assert!(
            validate::is_valid(g, &machine, &s),
            "{} produced an invalid schedule",
            h.name()
        );
        let m = metrics::measures(g, &s);
        parallel_times.push(m.parallel_time);
        partial.push((h.name(), m));
    }
    let nrpts = metrics::normalized_relative_pts(&parallel_times);
    let outcomes = partial
        .into_iter()
        .zip(nrpts)
        .map(|((name, m), nrpt)| HeuristicOutcome {
            name,
            parallel_time: m.parallel_time,
            speedup: m.speedup,
            efficiency: m.efficiency,
            procs: m.procs,
            nrpt,
        })
        .collect();
    GraphResult {
        key: entry.key,
        index: entry.index,
        serial: g.serial_time(),
        granularity: entry.granularity,
        outcomes,
    }
}

/// Evaluates `heuristics` over the whole corpus, in parallel.
pub fn run_corpus(corpus: &[CorpusEntry], heuristics: &[Box<dyn Scheduler>]) -> Vec<GraphResult> {
    dagsched_par::par_map(corpus, |_, entry| evaluate_graph(entry, heuristics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};
    use dagsched_core::paper_heuristics;

    fn tiny_run() -> Vec<GraphResult> {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 15..=25,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        run_corpus(&corpus, &paper_heuristics())
    }

    #[test]
    fn every_graph_gets_five_outcomes() {
        let results = tiny_run();
        assert_eq!(results.len(), 60);
        for r in &results {
            assert_eq!(r.outcomes.len(), 5);
            let names: Vec<_> = r.outcomes.iter().map(|o| o.name).collect();
            assert_eq!(names, vec!["CLANS", "DSC", "MCP", "MH", "HU"]);
        }
    }

    #[test]
    fn nrpt_has_a_zero_per_graph() {
        for r in tiny_run() {
            let min = r
                .outcomes
                .iter()
                .map(|o| o.nrpt)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(min, 0.0, "best heuristic scores 0 NRPT");
            for o in &r.outcomes {
                assert!(o.nrpt >= 0.0);
            }
        }
    }

    #[test]
    fn clans_never_retards() {
        for r in tiny_run() {
            let clans = r.outcome("CLANS");
            assert!(
                clans.speedup >= 1.0 - 1e-12,
                "CLANS speedup {} on {:?} #{}",
                clans.speedup,
                r.key,
                r.index
            );
        }
    }

    #[test]
    fn speedup_consistency() {
        for r in tiny_run() {
            for o in &r.outcomes {
                let expect = r.serial as f64 / o.parallel_time as f64;
                assert!((o.speedup - expect).abs() < 1e-9);
                assert!((o.efficiency - o.speedup / o.procs as f64).abs() < 1e-9);
            }
        }
    }
}
