//! Figures 1–6 of the paper: the granularity and node-weight-range
//! tables plotted as per-heuristic series, with a plain-text chart
//! renderer for terminal output.

use crate::runner::GraphResult;
use crate::tables::{self, Table};
use std::fmt::Write as _;

/// One figure: per-heuristic series over a categorical x-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Paper figure number (1–6).
    pub number: u32,
    /// Caption, mirroring the paper's.
    pub title: String,
    /// Category labels along the x-axis.
    pub x_labels: Vec<String>,
    /// `(heuristic, y value per category)`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl Figure {
    /// Transposes a table into a figure.
    pub fn from_table(number: u32, title: &str, table: &Table) -> Figure {
        let x_labels: Vec<String> = table.rows.iter().map(|(l, _)| l.clone()).collect();
        let series = table
            .columns
            .iter()
            .enumerate()
            .map(|(c, name)| {
                let ys: Vec<f64> = table.rows.iter().map(|(_, v)| v[c]).collect();
                (name.clone(), ys)
            })
            .collect();
        Figure {
            number,
            title: title.to_string(),
            x_labels,
            series,
        }
    }

    /// Renders the series numerically plus an ASCII chart
    /// (one row per heuristic, `height` rows of resolution).
    pub fn render(&self, height: usize) -> String {
        let mut out = String::new();
        writeln!(out, "Figure {}: {}", self.number, self.title).unwrap();
        // Series values.
        write!(out, "{:>24}", "").unwrap();
        for x in &self.x_labels {
            write!(out, "{x:>16}").unwrap();
        }
        writeln!(out).unwrap();
        for (name, ys) in &self.series {
            write!(out, "{name:>24}").unwrap();
            for y in ys {
                write!(out, "{y:>16.3}").unwrap();
            }
            writeln!(out).unwrap();
        }
        // ASCII chart: columns = categories, marks = first letter.
        let max = self
            .series
            .iter()
            .flat_map(|(_, ys)| ys.iter().copied())
            .fold(0.0_f64, f64::max)
            .max(1e-9);
        let height = height.max(4);
        let mut grid = vec![vec![b' '; self.x_labels.len() * 8]; height];
        for (name, ys) in &self.series {
            let mark = name.as_bytes()[0];
            for (i, &y) in ys.iter().enumerate() {
                let row = ((y / max) * (height - 1) as f64).round() as usize;
                let row = height - 1 - row.min(height - 1);
                let col = i * 8 + 4;
                grid[row][col] = match grid[row][col] {
                    b' ' => mark,
                    _ => b'*', // collision of series
                };
            }
        }
        writeln!(out, "  y-max = {max:.3}").unwrap();
        for row in grid {
            writeln!(out, "  |{}", String::from_utf8(row).expect("ascii")).unwrap();
        }
        writeln!(out, "  +{}", "-".repeat(self.x_labels.len() * 8)).unwrap();
        out
    }
}

impl Figure {
    /// Renders the figure as a standalone SVG line chart (categorical
    /// x-axis, one polyline + markers per heuristic, legend on the
    /// right). Pure string generation.
    pub fn render_svg(&self, width: u32, height: u32) -> String {
        use std::fmt::Write as _;
        let (width, height) = (width.max(320), height.max(200));
        let (ml, mr, mt, mb) = (52.0, 110.0, 28.0, 42.0);
        let (pw, ph) = (width as f64 - ml - mr, height as f64 - mt - mb);
        let max_y = self
            .series
            .iter()
            .flat_map(|(_, ys)| ys.iter().copied())
            .fold(0.0_f64, f64::max)
            .max(1e-9);
        let k = self.x_labels.len().max(1);
        let x = |i: usize| ml + (i as f64 + 0.5) / k as f64 * pw;
        let y = |v: f64| mt + (1.0 - v / max_y) * ph;
        let color = |s: usize| format!("hsl({},65%,45%)", (s * 67) % 360);

        let mut out = String::new();
        writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             font-family=\"sans-serif\" font-size=\"11\">"
        )
        .unwrap();
        writeln!(out, "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>").unwrap();
        writeln!(
            out,
            "<text x=\"{}\" y=\"16\" font-size=\"13\">Figure {}: {}</text>",
            ml,
            self.number,
            xml_escape(&self.title)
        )
        .unwrap();
        // Axes.
        writeln!(
            out,
            "<line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{:.1}\" stroke=\"black\"/>",
            mt + ph
        )
        .unwrap();
        writeln!(
            out,
            "<line x1=\"{ml}\" y1=\"{0:.1}\" x2=\"{1:.1}\" y2=\"{0:.1}\" stroke=\"black\"/>",
            mt + ph,
            ml + pw
        )
        .unwrap();
        // Y ticks at 0, max/2, max.
        for v in [0.0, max_y / 2.0, max_y] {
            writeln!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{:.2}</text>",
                ml - 4.0,
                y(v) + 4.0,
                v
            )
            .unwrap();
        }
        // X labels.
        for (i, label) in self.x_labels.iter().enumerate() {
            writeln!(
                out,
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
                x(i),
                mt + ph + 16.0,
                xml_escape(label)
            )
            .unwrap();
        }
        // Series.
        for (si, (name, ys)) in self.series.iter().enumerate() {
            let pts: Vec<String> = ys
                .iter()
                .enumerate()
                .map(|(i, &v)| format!("{:.1},{:.1}", x(i), y(v)))
                .collect();
            writeln!(
                out,
                "<polyline fill=\"none\" stroke=\"{}\" stroke-width=\"1.6\" points=\"{}\"/>",
                color(si),
                pts.join(" ")
            )
            .unwrap();
            for (i, &v) in ys.iter().enumerate() {
                writeln!(
                    out,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.6\" fill=\"{}\"/>",
                    x(i),
                    y(v),
                    color(si)
                )
                .unwrap();
            }
            let ly = mt + 14.0 * si as f64 + 8.0;
            writeln!(
                out,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>",
                ml + pw + 12.0,
                ly - 9.0,
                color(si)
            )
            .unwrap();
            writeln!(
                out,
                "<text x=\"{:.1}\" y=\"{ly:.1}\">{}</text>",
                ml + pw + 26.0,
                xml_escape(name)
            )
            .unwrap();
        }
        out.push_str("</svg>\n");
        out
    }
}

/// Minimal XML text escaping for SVG/HTML embedding.
pub(crate) fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Figure 1: average relative parallel time vs granularity (Table 3).
pub fn figure1(results: &[GraphResult]) -> Figure {
    Figure::from_table(
        1,
        "Average relative parallel time comparison with the increase in granularity",
        &tables::table3(results),
    )
}

/// Figure 2: average speedup vs granularity (Table 4).
pub fn figure2(results: &[GraphResult]) -> Figure {
    Figure::from_table(
        2,
        "Trend illustrating the increase in speedup with the increase in granularity",
        &tables::table4(results),
    )
}

/// Figure 3: average efficiency vs granularity (Table 5).
pub fn figure3(results: &[GraphResult]) -> Figure {
    Figure::from_table(
        3,
        "Average efficiency comparison with the increase in granularity",
        &tables::table5(results),
    )
}

/// Figure 4: average relative parallel time vs node weight range (Table 7).
pub fn figure4(results: &[GraphResult]) -> Figure {
    Figure::from_table(
        4,
        "Average relative parallel time for the given node weight range",
        &tables::table7(results),
    )
}

/// Figure 5: average speedup vs node weight range (Table 8).
pub fn figure5(results: &[GraphResult]) -> Figure {
    Figure::from_table(
        5,
        "Average speedup for the given node weight range",
        &tables::table8(results),
    )
}

/// Figure 6: average efficiency vs node weight range (Table 9).
pub fn figure6(results: &[GraphResult]) -> Figure {
    Figure::from_table(
        6,
        "Average efficiency for the given node weight range",
        &tables::table9(results),
    )
}

/// All six figures in paper order.
pub fn all_figures(results: &[GraphResult]) -> Vec<Figure> {
    vec![
        figure1(results),
        figure2(results),
        figure3(results),
        figure4(results),
        figure5(results),
        figure6(results),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};
    use crate::runner::run_corpus;
    use dagsched_core::paper_heuristics;

    fn small_results() -> Vec<GraphResult> {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 15..=25,
            ..Default::default()
        };
        run_corpus(&generate_corpus(&spec), &paper_heuristics())
    }

    #[test]
    fn figures_match_their_tables() {
        let results = small_results();
        let f = figure2(&results);
        let t = tables::table4(&results);
        assert_eq!(f.x_labels.len(), 5);
        assert_eq!(f.series.len(), 5);
        for (name, ys) in &f.series {
            for (i, (label, _)) in t.rows.iter().enumerate() {
                assert_eq!(Some(ys[i]), t.value(label, name));
            }
        }
    }

    #[test]
    fn all_six_figures_render() {
        let results = small_results();
        let figs = all_figures(&results);
        assert_eq!(figs.len(), 6);
        for (i, f) in figs.iter().enumerate() {
            assert_eq!(f.number as usize, i + 1);
            let text = f.render(12);
            assert!(text.contains(&format!("Figure {}", i + 1)));
            assert!(text.contains("CLANS"));
            assert!(text.contains("y-max"));
        }
    }

    #[test]
    fn svg_charts_are_well_formed() {
        let results = small_results();
        for f in all_figures(&results) {
            let svg = f.render_svg(720, 360);
            assert!(svg.starts_with("<svg"));
            assert!(svg.trim_end().ends_with("</svg>"));
            assert_eq!(
                svg.matches("<polyline").count(),
                5,
                "one line per heuristic"
            );
            assert!(svg.contains("CLANS"));
            // Title escaped and embedded.
            assert!(svg.contains(&format!("Figure {}", f.number)));
        }
    }

    #[test]
    fn xml_escape_covers_the_specials() {
        assert_eq!(super::xml_escape("a<b>&c"), "a&lt;b&gt;&amp;c");
    }

    #[test]
    fn render_handles_all_zero_series() {
        let f = Figure {
            number: 9,
            title: "zeros".into(),
            x_labels: vec!["a".into(), "b".into()],
            series: vec![("Z".into(), vec![0.0, 0.0])],
        };
        let text = f.render(5);
        assert!(text.contains("Figure 9"));
    }
}
