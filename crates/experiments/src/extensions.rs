//! Extension studies beyond the paper's tables, in the directions its
//! §5 proposes:
//!
//! * [`bounded_processor_study`] — "variations … caused by the
//!   properties of the multiprocessor architecture": the same
//!   heuristics on machines with 2–16 processors instead of the
//!   unbounded pool;
//! * [`kernel_study`] — "DAGs generated from real serial programs":
//!   the deterministic numerical-kernel families (Gaussian
//!   elimination, FFT, stencil sweeps, trees) across communication
//!   scales;
//! * [`summary`] — per-heuristic win counts and overall means over a
//!   corpus run, the "best scheduler selection" view a parallelizing
//!   compiler would consult.

use crate::corpus::CorpusEntry;
use crate::runner::GraphResult;
use crate::tables::Table;
use dagsched_core::paper_heuristics;
use dagsched_dag::Dag;
use dagsched_sim::{metrics, BoundedClique, Clique, Machine};

/// Mean speedup of each paper heuristic on `P ∈ procs` processors over
/// the given corpus graphs (bounded clique machines).
pub fn bounded_processor_study(corpus: &[CorpusEntry], procs: &[usize]) -> Table {
    let heuristics = paper_heuristics();
    let rows = dagsched_par::par_map(procs, |_, &p| {
        let machine: Box<dyn Machine> = if p == 0 {
            Box::new(Clique)
        } else {
            Box::new(BoundedClique::new(p))
        };
        let values: Vec<f64> = heuristics
            .iter()
            .map(|h| {
                let total: f64 = corpus
                    .iter()
                    .map(|e| {
                        let s = h.schedule(&e.graph, machine.as_ref());
                        metrics::measures(&e.graph, &s).speedup
                    })
                    .sum();
                total / corpus.len().max(1) as f64
            })
            .collect();
        let label = if p == 0 {
            "unbounded".to_string()
        } else {
            format!("P = {p}")
        };
        (label, values)
    });
    Table {
        number: 12,
        title: "Extension: average speedup on bounded machines".to_string(),
        row_label: "Processors".to_string(),
        columns: heuristics.iter().map(|h| h.name().to_string()).collect(),
        rows,
    }
}

/// The kernel workloads of the study: name and constructor per
/// communication weight.
pub fn kernel_workloads(comm: u64) -> Vec<(String, Dag)> {
    use dagsched_gen::families;
    vec![
        (
            format!("gauss16/c{comm}"),
            families::gaussian_elimination(16, 2, comm),
        ),
        (format!("fft16/c{comm}"), families::fft(4, 10, comm)),
        (
            format!("stencil8x8/c{comm}"),
            families::stencil(8, 8, 10, comm),
        ),
        (
            format!("intree6/c{comm}"),
            families::binary_in_tree(6, 10, comm),
        ),
        (
            format!("forkjoin16/c{comm}"),
            families::fork_join(16, 40, comm),
        ),
    ]
}

/// Speedup of each paper heuristic on every kernel workload, across
/// three communication scales (fine → coarse).
pub fn kernel_study() -> Table {
    let heuristics = paper_heuristics();
    let mut rows = Vec::new();
    for comm in [2u64, 25, 250] {
        for (name, g) in kernel_workloads(comm) {
            let values: Vec<f64> = heuristics
                .iter()
                .map(|h| {
                    let s = h.schedule(&g, &Clique);
                    metrics::measures(&g, &s).speedup
                })
                .collect();
            rows.push((name, values));
        }
    }
    Table {
        number: 13,
        title: "Extension: speedup on numerical-kernel task graphs".to_string(),
        row_label: "Kernel".to_string(),
        columns: heuristics.iter().map(|h| h.name().to_string()).collect(),
        rows,
    }
}

/// Overall per-heuristic summary of a corpus run: share of graphs won
/// (NRPT = 0), mean NRPT, mean speedup, mean efficiency, mean
/// processors.
pub fn summary(results: &[GraphResult]) -> Table {
    let names: Vec<String> = results
        .first()
        .map(|r| r.outcomes.iter().map(|o| o.name.to_string()).collect())
        .unwrap_or_default();
    let n = results.len().max(1) as f64;
    let rows = vec![
        (
            "wins (share of graphs)".to_string(),
            names
                .iter()
                .map(|h| results.iter().filter(|r| r.outcome(h).nrpt == 0.0).count() as f64 / n)
                .collect(),
        ),
        (
            "mean NRPT".to_string(),
            names
                .iter()
                .map(|h| results.iter().map(|r| r.outcome(h).nrpt).sum::<f64>() / n)
                .collect(),
        ),
        (
            "mean speedup".to_string(),
            names
                .iter()
                .map(|h| results.iter().map(|r| r.outcome(h).speedup).sum::<f64>() / n)
                .collect(),
        ),
        (
            "mean efficiency".to_string(),
            names
                .iter()
                .map(|h| results.iter().map(|r| r.outcome(h).efficiency).sum::<f64>() / n)
                .collect(),
        ),
        (
            "mean processors".to_string(),
            names
                .iter()
                .map(|h| {
                    results
                        .iter()
                        .map(|r| r.outcome(h).procs as f64)
                        .sum::<f64>()
                        / n
                })
                .collect(),
        ),
    ];
    Table {
        number: 14,
        title: "Extension: overall per-heuristic summary".to_string(),
        row_label: "Measure".to_string(),
        columns: names,
        rows,
    }
}

/// The rewiring ablation behind EXPERIMENTS.md's deviation #2: the
/// paper's generator grows a series-parallel parse tree and then
/// rewires edges to hit the anchor out-degree, which destroys the
/// clan structure ("its parse tree does not resemble the randomly
/// generated parse tree", §5.1). This study generates *pure*
/// series-parallel graphs (no rewiring) and the usual rewired corpus
/// side by side and reports CLANS's mean NRPT against DSC/MCP/MH on
/// each — quantifying how much of CLANS's mid-band deficit is the
/// corpus, not the algorithm.
pub fn rewiring_study(graphs_per_band: usize, seed: u64) -> Table {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let heuristics = paper_heuristics();
    let names: Vec<String> = heuristics.iter().map(|h| h.name().to_string()).collect();

    let mut rows = Vec::new();
    for pure in [true, false] {
        for band in dagsched_gen::GranularityBand::ALL {
            let coords: Vec<u64> = (0..graphs_per_band as u64).collect();
            let nrpts: Vec<Vec<f64>> = dagsched_par::par_map(&coords, |_, &i| {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (i * 2 + pure as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let nodes = rng.gen_range(60..=110);
                let weights = dagsched_gen::WeightRange::new(20, 200);
                let g = if pure {
                    // Parse tree + weights + granularity targeting,
                    // NO anchor rewiring.
                    let base = dagsched_gen::parsetree::ParseTreeSpec {
                        nodes,
                        node_weights: (weights.lo, weights.hi),
                        edge_weights: (weights.lo / 2, weights.hi),
                        series_bias: 0.42,
                        max_arity: 8,
                    };
                    let g = dagsched_gen::parsetree::generate(&base, &mut rng)
                        .expect("rewiring-study spec is valid");
                    let target = band.sample_target(&mut rng);
                    dagsched_gen::pdg::retarget_granularity(&g, target, band)
                        .expect("band targets are finite and positive")
                } else {
                    dagsched_gen::pdg::generate(
                        &dagsched_gen::PdgSpec {
                            nodes,
                            anchor: 3,
                            weights,
                            band,
                        },
                        &mut rng,
                    )
                    .expect("rewiring-study spec is valid")
                };
                let pts: Vec<u64> = heuristics
                    .iter()
                    .map(|h| h.schedule(&g, &Clique).makespan())
                    .collect();
                dagsched_sim::metrics::normalized_relative_pts(&pts)
            });
            let n = nrpts.len().max(1) as f64;
            let means: Vec<f64> = (0..names.len())
                .map(|c| nrpts.iter().map(|v| v[c]).sum::<f64>() / n)
                .collect();
            let label = format!(
                "{} ({})",
                band.label(),
                if pure { "pure SP" } else { "rewired" }
            );
            rows.push((label, means));
        }
    }
    Table {
        number: 18,
        title: "Extension: mean NRPT on pure series-parallel vs anchor-rewired corpora".to_string(),
        row_label: "Granularity (corpus)".to_string(),
        columns: names,
        rows,
    }
}

/// Relaxing assumption 4 (free multicasts): re-execute every
/// heuristic's schedule under single-send-port contention and report
/// the mean makespan inflation (`contended / ideal`) per granularity
/// band. Heuristics that spread fine-grained work over many
/// processors multicast more and suffer more.
pub fn contention_study(corpus: &[CorpusEntry]) -> Table {
    let heuristics = paper_heuristics();
    let names: Vec<String> = heuristics.iter().map(|h| h.name().to_string()).collect();
    let per_graph: Vec<(dagsched_gen::GranularityBand, Vec<f64>)> =
        dagsched_par::par_map(corpus, |_, e| {
            let inflations = heuristics
                .iter()
                .map(|h| {
                    let s = h.schedule(&e.graph, &Clique);
                    let contended = dagsched_sim::event::simulate_with_send_contention(
                        &e.graph, &Clique, &s, None,
                    );
                    contended.makespan as f64 / s.makespan().max(1) as f64
                })
                .collect();
            (e.key.band, inflations)
        });
    let rows = dagsched_gen::GranularityBand::ALL
        .into_iter()
        .map(|band| {
            let group: Vec<&Vec<f64>> = per_graph
                .iter()
                .filter(|(b, _)| *b == band)
                .map(|(_, v)| v)
                .collect();
            let n = group.len().max(1) as f64;
            let means: Vec<f64> = (0..names.len())
                .map(|i| group.iter().map(|v| v[i]).sum::<f64>() / n)
                .collect();
            (band.label().to_string(), means)
        })
        .collect();
    Table {
        number: 17,
        title: "Extension: makespan inflation under send-port contention (contended / ideal)"
            .to_string(),
        row_label: "Granularity".to_string(),
        columns: names,
        rows,
    }
}

/// The duplication experiment the paper's assumption 3 excludes from
/// its comparison (its references [2, 12, 16]): mean speedup of DSH
/// (task duplication) against MH (same authors' non-duplicating list
/// scheduler) and CLANS, per granularity band. Duplication pays off
/// most exactly where the paper's heuristics suffer most — heavy
/// communication relative to computation.
pub fn duplication_study(corpus: &[CorpusEntry]) -> Table {
    use dagsched_core::Scheduler as _;
    let per_graph: Vec<(dagsched_gen::GranularityBand, [f64; 3])> =
        dagsched_par::par_map(corpus, |_, e| {
            let serial = e.graph.serial_time() as f64;
            let dsh = dagsched_core::Dsh.schedule(&e.graph, &Clique);
            let mh = dagsched_core::Mh.schedule(&e.graph, &Clique);
            let clans = dagsched_core::Clans.schedule(&e.graph, &Clique);
            (
                e.key.band,
                [
                    serial / dsh.makespan().max(1) as f64,
                    serial / mh.makespan().max(1) as f64,
                    serial / clans.makespan().max(1) as f64,
                ],
            )
        });
    let rows = dagsched_gen::GranularityBand::ALL
        .into_iter()
        .map(|band| {
            let group: Vec<&[f64; 3]> = per_graph
                .iter()
                .filter(|(b, _)| *b == band)
                .map(|(_, v)| v)
                .collect();
            let n = group.len().max(1) as f64;
            let means: Vec<f64> = (0..3)
                .map(|i| group.iter().map(|v| v[i]).sum::<f64>() / n)
                .collect();
            (band.label().to_string(), means)
        })
        .collect();
    Table {
        number: 16,
        title: "Extension: task duplication (mean speedup of DSH vs MH and CLANS)".to_string(),
        row_label: "Granularity".to_string(),
        columns: vec!["DSH".into(), "MH".into(), "CLANS".into()],
        rows,
    }
}

/// The parallelizing-compiler experiment the paper's §5.2 motivates:
/// add the granularity-dispatched meta-scheduler (`SELECT`, CLANS
/// below G = 0.2, MCP above) and the `BEST-OF` oracle to the five
/// heuristics and compare mean NRPT per granularity band. `SELECT`
/// should track the per-band winner; `BEST-OF` is 0 by construction.
pub fn selector_study(corpus: &[CorpusEntry]) -> Table {
    let mut heuristics = paper_heuristics();
    heuristics.push(Box::new(dagsched_core::BandSelector::default()));
    heuristics.push(Box::new(dagsched_core::BestOf::paper()));
    let names: Vec<String> = heuristics.iter().map(|h| h.name().to_string()).collect();

    // Parallel per-graph evaluation of all candidates.
    let per_graph: Vec<(dagsched_gen::GranularityBand, Vec<f64>)> =
        dagsched_par::par_map(corpus, |_, e| {
            let pts: Vec<u64> = heuristics
                .iter()
                .map(|h| h.schedule(&e.graph, &Clique).makespan())
                .collect();
            (
                e.key.band,
                dagsched_sim::metrics::normalized_relative_pts(&pts),
            )
        });

    let rows = dagsched_gen::GranularityBand::ALL
        .into_iter()
        .map(|band| {
            let group: Vec<&Vec<f64>> = per_graph
                .iter()
                .filter(|(b, _)| *b == band)
                .map(|(_, v)| v)
                .collect();
            let n = group.len().max(1) as f64;
            let means: Vec<f64> = (0..names.len())
                .map(|i| group.iter().map(|v| v[i]).sum::<f64>() / n)
                .collect();
            (band.label().to_string(), means)
        })
        .collect();
    Table {
        number: 15,
        title: "Extension: the compiler's scheduler-selection rule (mean NRPT incl. SELECT and BEST-OF)"
            .to_string(),
        row_label: "Granularity".to_string(),
        columns: names,
        rows,
    }
}

/// Per-graph raw records as CSV (one row per graph × heuristic) for
/// external analysis.
pub fn dump_csv(results: &[GraphResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "band,anchor,weight_lo,weight_hi,index,granularity,serial,heuristic,parallel_time,speedup,efficiency,procs,nrpt\n",
    );
    for r in results {
        for o in &r.outcomes {
            writeln!(
                out,
                "\"{}\",{},{},{},{},{},{},{},{},{},{},{},{}",
                r.key.band.label(),
                r.key.anchor,
                r.key.weights.lo,
                r.key.weights.hi,
                r.index,
                r.granularity,
                r.serial,
                o.name,
                o.parallel_time,
                o.speedup,
                o.efficiency,
                o.procs,
                o.nrpt
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};
    use crate::runner::run_corpus;

    fn tiny_corpus() -> Vec<CorpusEntry> {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=18,
            ..Default::default()
        };
        generate_corpus(&spec)
            .into_iter()
            .step_by(6) // 10 graphs are plenty here
            .collect()
    }

    #[test]
    fn bounded_study_has_a_row_per_processor_count() {
        let corpus = tiny_corpus();
        let t = bounded_processor_study(&corpus, &[1, 2, 0]);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].0, "P = 1");
        assert_eq!(t.rows[2].0, "unbounded");
        // On one processor every heuristic is serial: speedup 1.
        for v in &t.rows[0].1 {
            assert!((*v - 1.0).abs() < 1e-9, "P=1 must give speedup 1, got {v}");
        }
        // More processors never hurt CLANS below 1.
        let clans_col = t.columns.iter().position(|c| c == "CLANS").unwrap();
        for (_, vals) in &t.rows {
            assert!(vals[clans_col] >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn kernel_study_covers_all_kernels_and_scales() {
        let t = kernel_study();
        assert_eq!(t.rows.len(), 15); // 5 kernels × 3 comm scales
        assert!(t.rows.iter().any(|(n, _)| n == "gauss16/c2"));
        assert!(t.rows.iter().any(|(n, _)| n == "forkjoin16/c250"));
        // CLANS never below 1 on kernels either.
        let clans_col = t.columns.iter().position(|c| c == "CLANS").unwrap();
        for (name, vals) in &t.rows {
            assert!(vals[clans_col] >= 1.0 - 1e-9, "{name}");
        }
    }

    #[test]
    fn rewiring_study_shows_clans_prefers_pure_graphs() {
        let t = rewiring_study(3, 5);
        assert_eq!(t.rows.len(), 10); // 5 bands × {pure, rewired}
        let clans = t.columns.iter().position(|c| c == "CLANS").unwrap();
        // Averaged over the bands, CLANS's NRPT on pure SP graphs is
        // no worse than on rewired ones (its structure is intact).
        let pure: f64 = t.rows[..5].iter().map(|(_, v)| v[clans]).sum();
        let rewired: f64 = t.rows[5..].iter().map(|(_, v)| v[clans]).sum();
        assert!(pure <= rewired + 0.25, "pure {pure} vs rewired {rewired}");
    }

    #[test]
    fn contention_study_inflates_never_deflates() {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 20..=30,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let t = contention_study(&corpus);
        assert_eq!(t.rows.len(), 5);
        for (band, vals) in &t.rows {
            for v in vals {
                assert!(*v >= 1.0 - 1e-9, "{band}: inflation {v} below 1");
            }
        }
    }

    #[test]
    fn duplication_study_shapes() {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 20..=30,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let t = duplication_study(&corpus);
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.columns, vec!["DSH", "MH", "CLANS"]);
        // Duplication never loses to MH on average in the finest band
        // (it subsumes MH-style placements).
        let fine = &t.rows[0].1;
        assert!(
            fine[0] >= fine[1] * 0.95,
            "DSH {} vs MH {}",
            fine[0],
            fine[1]
        );
    }

    #[test]
    fn selector_study_tracks_the_winner() {
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 20..=30,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let t = selector_study(&corpus);
        assert_eq!(t.rows.len(), 5);
        let best_col = t.columns.iter().position(|c| c == "BEST-OF").unwrap();
        let select_col = t.columns.iter().position(|c| c == "SELECT").unwrap();
        let clans_col = t.columns.iter().position(|c| c == "CLANS").unwrap();
        let hu_col = t.columns.iter().position(|c| c == "HU").unwrap();
        for (band, vals) in &t.rows {
            // BEST-OF defines the 0 line.
            assert_eq!(vals[best_col], 0.0, "{band}");
            // SELECT never trails the worst heuristic and tracks the
            // dispatched one.
            assert!(vals[select_col] < vals[hu_col], "{band}");
        }
        // In the finest band SELECT ≈ CLANS.
        let fine = &t.rows[0].1;
        assert!((fine[select_col] - fine[clans_col]).abs() < 0.2);
    }

    #[test]
    fn summary_and_dump() {
        let corpus = tiny_corpus();
        let results = run_corpus(&corpus, &dagsched_core::paper_heuristics());
        let s = summary(&results);
        assert_eq!(s.rows.len(), 5);
        // Win shares sum to ≥ 1 (ties can make several winners per graph).
        let wins: f64 = s.rows[0].1.iter().sum();
        assert!(wins >= 1.0 - 1e-9);
        let csv = dump_csv(&results);
        assert_eq!(csv.lines().count(), 1 + results.len() * 5);
        assert!(csv.starts_with("band,anchor"));
        assert!(csv.contains("CLANS"));
    }
}
