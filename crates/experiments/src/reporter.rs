//! An ordered progress reporter for parallel corpus runs.
//!
//! Workers of a `par_map` complete out of order; letting each write to
//! stderr directly interleaves lines from different graphs. A
//! [`Reporter`] serializes that output: every work item opens a
//! [`Section`] keyed by its corpus index, buffers its lines locally,
//! and the reporter releases sections to the writer strictly in index
//! order. A section whose predecessors are still running is held back
//! until they finish, so the emitted stream always reads as if the run
//! had been sequential.
//!
//! Every index from 0 up must eventually be opened (and dropped)
//! exactly once — `par_map` over a corpus does exactly that. Empty
//! sections write nothing, so per-graph sections cost nothing on the
//! common clean path.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

/// Serializes per-item output from parallel workers into index order.
pub struct Reporter {
    inner: Mutex<Inner>,
}

struct Inner {
    out: Box<dyn Write + Send>,
    /// Next index allowed to reach the writer.
    next: usize,
    /// Sections not yet flushed: `None` while open, `Some` once the
    /// section dropped with its buffered text.
    pending: BTreeMap<usize, Option<String>>,
}

impl std::fmt::Debug for Reporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reporter").finish_non_exhaustive()
    }
}

impl Reporter {
    /// A reporter writing to an arbitrary writer.
    pub fn new(out: impl Write + Send + 'static) -> Self {
        Reporter {
            inner: Mutex::new(Inner {
                out: Box::new(out),
                next: 0,
                pending: BTreeMap::new(),
            }),
        }
    }

    /// A reporter writing to standard error.
    pub fn stderr() -> Self {
        Self::new(std::io::stderr())
    }

    /// Writes one line immediately, bypassing section ordering. Only
    /// meaningful outside a parallel region (before sections open or
    /// after they all flushed).
    pub fn line(&self, msg: &str) {
        let mut inner = self.lock();
        let _ = writeln!(inner.out, "{msg}");
        let _ = inner.out.flush();
    }

    /// Opens the ordered section for work item `index`. Lines logged
    /// on the handle are buffered and released in index order when the
    /// handle drops.
    pub fn section(&self, index: usize) -> Section<'_> {
        let mut inner = self.lock();
        let prev = inner.pending.insert(index, None);
        debug_assert!(prev.is_none(), "section {index} opened twice");
        debug_assert!(index >= inner.next, "section {index} already flushed");
        Section {
            reporter: self,
            index,
            buf: String::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn submit(&self, index: usize, buf: String) {
        let mut inner = self.lock();
        inner.pending.insert(index, Some(buf));
        // Release every consecutive finished section from `next` on.
        while let Some(slot) = inner.pending.get(&inner.next) {
            let Some(text) = slot else { break };
            let text = text.clone();
            let i = inner.next;
            inner.pending.remove(&i);
            inner.next += 1;
            if !text.is_empty() {
                let _ = inner.out.write_all(text.as_bytes());
            }
        }
        let _ = inner.out.flush();
    }
}

/// One work item's buffered output; flushes in order on drop.
pub struct Section<'a> {
    reporter: &'a Reporter,
    index: usize,
    buf: String,
}

impl Section<'_> {
    /// Appends one line to the section.
    pub fn line(&mut self, msg: &str) {
        self.buf.push_str(msg);
        self.buf.push('\n');
    }
}

impl Drop for Section<'_> {
    fn drop(&mut self) {
        self.reporter
            .submit(self.index, std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_obs::SharedBuffer;

    #[test]
    fn sections_flush_in_index_order_regardless_of_completion() {
        let buffer = SharedBuffer::new();
        let reporter = Reporter::new(buffer.clone());
        // Open all three up front, close out of order.
        let mut s0 = reporter.section(0);
        let mut s1 = reporter.section(1);
        let mut s2 = reporter.section(2);
        s2.line("graph 2");
        drop(s2); // held: 0 and 1 still open
        assert_eq!(buffer.contents(), "");
        s1.line("graph 1");
        drop(s1); // still held behind 0
        assert_eq!(buffer.contents(), "");
        s0.line("graph 0");
        drop(s0); // releases 0, 1, 2 in order
        assert_eq!(buffer.contents(), "graph 0\ngraph 1\ngraph 2\n");
    }

    #[test]
    fn empty_sections_are_silent_and_direct_lines_pass_through() {
        let buffer = SharedBuffer::new();
        let reporter = Reporter::new(buffer.clone());
        reporter.line("starting");
        drop(reporter.section(0));
        let mut s1 = reporter.section(1);
        s1.line("incident");
        drop(s1);
        reporter.line("done");
        assert_eq!(buffer.contents(), "starting\nincident\ndone\n");
    }

    #[test]
    fn parallel_workers_never_interleave() {
        let buffer = SharedBuffer::new();
        let reporter = Reporter::new(buffer.clone());
        let items: Vec<usize> = (0..64).collect();
        dagsched_par::par_map(&items, |i, _| {
            let mut s = reporter.section(i);
            s.line(&format!("item {i} line a"));
            s.line(&format!("item {i} line b"));
        });
        let expect: String = (0..64)
            .map(|i| format!("item {i} line a\nitem {i} line b\n"))
            .collect();
        assert_eq!(buffer.contents(), expect);
    }
}
