//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [options] all           # full study: Tables 1–11, Figures 1–6
//! repro [options] table <N>     # one table (1–11)
//! repro [options] figure <N>    # one figure (1–6)
//! repro [options] corpus        # Table 1 only (no scheduling)
//! repro appendix                # the worked appendix example
//! repro html                   # self-contained HTML report (tables + SVG charts)
//! repro bounded / kernels / select / duplication / contention / summary / dump
//! repro exact                   # gap to proven optimum (exact anchor corpus)
//!
//! options:
//!   --graphs-per-set <N>   graphs per corpus set (default 35 → 2100)
//!   --seed <N>             master seed (default 0x19940c99)
//!   --nodes <LO>..<HI>     node count range (default 60..110)
//!   --machine <SPEC>       machine model to schedule (and validate)
//!                          under: `uniform` (the paper's §2 model,
//!                          default), `bounded:<p>` (p homogeneous
//!                          processors) or `linkaware:<file>` (per-pair
//!                          latency/bandwidth table)
//!   --csv                  emit tables as CSV instead of markdown
//!   --validate             run fault-isolated with oracle gating;
//!                          the report gains a robustness section
//!   --time-budget <MS>     abandon any scheduling attempt that takes
//!                          longer than MS milliseconds (implies the
//!                          fault-isolated runner)
//!   --trace-out <PATH>     stream one JSONL telemetry record per
//!                          (graph, heuristic) run to PATH, plus one
//!                          summary line per heuristic
//!   --trace-format <FMT>   `jsonl` (default) or `chrome`: with
//!                          `chrome`, additionally write the sweep's
//!                          span trees as a Perfetto-loadable Chrome
//!                          trace-event document to PATH.chrome.json
//!                          (needs --trace-out)
//!   --progress <MS>        emit one `dagsched.progress.v1` heartbeat
//!                          line (graphs done/total, quarantines,
//!                          throughput, ETA) to stderr every MS
//!                          milliseconds (needs a checkpoint dir)
//!   --metrics              append the instrumentation summary to the
//!                          command's output
//!   --checkpoint-dir <DIR> run the sweep crash-safe: journal every
//!                          finished graph (checksummed JSONL, fsynced)
//!                          into DIR; graphs that exhaust their retries
//!                          are quarantined to DIR/quarantine.jsonl
//!   --resume <DIR>         replay the journal in DIR and execute only
//!                          the unfinished graphs (implies
//!                          --checkpoint-dir DIR); the output is
//!                          byte-identical to an uninterrupted run
//!   --strict               fail the run instead of degrading when any
//!                          graph is quarantined (needs a checkpoint
//!                          dir)
//!   --exact                append the exact-anchor gap table to the
//!                          `all` report (small companion corpus
//!                          solved by branch-and-bound)
//!   --exact-budget <N>     branch-and-bound node budget per anchored
//!                          graph (default 2000000; serial search, so
//!                          the table reproduces deterministically)
//! ```

use dagsched_core::MachineSpec;
use dagsched_experiments::checkpoint::SweepConfig;
use dagsched_experiments::corpus::CorpusSpec;
use dagsched_experiments::figures::all_figures;
use dagsched_experiments::report::{render_appendix_example, Study};
use dagsched_experiments::reporter::Reporter;
use dagsched_experiments::tables::{all_tables, table1};
use dagsched_harness::{HarnessConfig, RetryPolicy};
use dagsched_obs::TelemetrySink;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: repro [--graphs-per-set N] [--seed N] [--nodes LO..HI] [--machine uniform|bounded:P|linkaware:FILE] [--csv] [--validate] [--time-budget MS] [--trace-out PATH] [--trace-format jsonl|chrome] [--progress MS] [--metrics] [--checkpoint-dir DIR] [--resume DIR] [--strict] [--exact] [--exact-budget N] (all | table N | figure N | corpus | appendix | html | spread | rewiring | bounded | kernels | select | duplication | contention | summary | exact | dump)");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut spec = CorpusSpec::default();
    let mut machine = MachineSpec::Uniform;
    let mut csv = false;
    let mut harness: Option<HarnessConfig> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_chrome = false;
    let mut progress_interval: Option<Duration> = None;
    let mut metrics = false;
    let mut exact = false;
    let mut exact_budget: u64 = 2_000_000;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut strict = false;
    let mut command: Vec<&str> = Vec::new();

    // Either robustness flag switches the study onto the
    // fault-isolated runner; absent both, heuristics run trusted.
    fn harness_entry(h: &mut Option<HarnessConfig>) -> &mut HarnessConfig {
        h.get_or_insert(HarnessConfig {
            time_budget: None,
            validate: false,
        })
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--graphs-per-set" => {
                spec.graphs_per_set = next_num(&mut it, "--graphs-per-set")? as usize;
                if spec.graphs_per_set == 0 {
                    return Err("--graphs-per-set must be positive".into());
                }
            }
            "--seed" => spec.seed = next_num(&mut it, "--seed")?,
            "--nodes" => {
                let v = it.next().ok_or("--nodes needs LO..HI")?;
                let (lo, hi) = v.split_once("..").ok_or("--nodes needs LO..HI")?;
                let lo: usize = lo.parse().map_err(|_| "bad --nodes low bound")?;
                let hi: usize = hi.parse().map_err(|_| "bad --nodes high bound")?;
                if lo == 0 || lo > hi {
                    return Err("--nodes range must be 1 ≤ LO ≤ HI".into());
                }
                spec.nodes = lo..=hi;
            }
            "--machine" => {
                let v = it
                    .next()
                    .ok_or("--machine needs uniform|bounded:<p>|linkaware:<file>")?;
                machine = MachineSpec::parse(v)?;
            }
            "--csv" => csv = true,
            "--trace-out" => {
                let path = it.next().ok_or("--trace-out needs a path")?;
                trace_out = Some(PathBuf::from(path));
            }
            "--trace-format" => {
                let fmt = it.next().ok_or("--trace-format needs jsonl|chrome")?;
                trace_chrome = match fmt.as_str() {
                    "jsonl" => false,
                    "chrome" => true,
                    _ => return Err("--trace-format needs jsonl|chrome".into()),
                };
            }
            "--progress" => {
                let ms = next_num(&mut it, "--progress")?;
                if ms == 0 {
                    return Err("--progress interval must be positive".into());
                }
                progress_interval = Some(Duration::from_millis(ms));
            }
            "--metrics" => metrics = true,
            "--exact" => exact = true,
            "--exact-budget" => {
                exact_budget = next_num(&mut it, "--exact-budget")?;
                if exact_budget == 0 {
                    return Err("--exact-budget must be positive".into());
                }
            }
            "--checkpoint-dir" => {
                let dir = it.next().ok_or("--checkpoint-dir needs a directory")?;
                checkpoint_dir = Some(PathBuf::from(dir));
            }
            "--resume" => {
                let dir = it.next().ok_or("--resume needs a directory")?;
                checkpoint_dir = Some(PathBuf::from(dir));
                resume = true;
            }
            "--strict" => strict = true,
            "--validate" => harness_entry(&mut harness).validate = true,
            "--time-budget" => {
                let ms = next_num(&mut it, "--time-budget")?;
                if ms == 0 {
                    return Err("--time-budget must be positive".into());
                }
                harness_entry(&mut harness).time_budget = Some(Duration::from_millis(ms));
            }
            other => command.push(other),
        }
    }

    // All user-facing progress (and any incident lines raised inside
    // the parallel runners) goes through one ordered reporter, so
    // worker output never interleaves.
    if strict && checkpoint_dir.is_none() {
        return Err("--strict needs --checkpoint-dir or --resume".into());
    }
    if checkpoint_dir.is_some() && (trace_out.is_some() || metrics) {
        return Err(
            "--checkpoint-dir/--resume cannot be combined with --trace-out/--metrics".into(),
        );
    }
    if machine != MachineSpec::Uniform && (trace_out.is_some() || metrics) {
        return Err("--machine cannot be combined with --trace-out/--metrics \
             (telemetry runs the paper's uniform model)"
            .into());
    }
    if trace_chrome && trace_out.is_none() {
        return Err("--trace-format chrome needs --trace-out".into());
    }
    if progress_interval.is_some() && checkpoint_dir.is_none() {
        return Err("--progress needs --checkpoint-dir or --resume".into());
    }

    let progress = Reporter::stderr();
    let build_study = |spec: &CorpusSpec| -> Result<Study, String> {
        if let Some(dir) = &checkpoint_dir {
            // Crash-safe sweep: journaled checkpoints, retry/backoff,
            // quarantine. Fault-isolated by default — an explicit
            // --validate/--time-budget harness takes precedence.
            let config = SweepConfig {
                harness: harness.or_else(|| Some(HarnessConfig::default())),
                retry: RetryPolicy::default(),
                strict,
                machine: machine.clone(),
                progress: progress_interval,
            };
            let study = Study::run_checkpointed(spec.clone(), &config, dir, resume)?;
            if let Some(stats) = &study.robustness {
                if !stats.quarantined.is_empty() {
                    progress.line(&format!(
                        "{} graph(s) quarantined -> {}",
                        stats.quarantined.len(),
                        dir.join("quarantine.jsonl").display()
                    ));
                }
            }
            return Ok(study);
        }
        if trace_out.is_none() && !metrics {
            return Ok(Study::run_with_on(spec.clone(), harness, machine.clone()));
        }
        let sink = match &trace_out {
            Some(path) => Some(
                TelemetrySink::to_path(path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
            ),
            None => None,
        };
        // `--trace-format chrome` writes the Chrome trace next to the
        // JSONL stream: PATH.chrome.json.
        let chrome_path = trace_out.as_ref().filter(|_| trace_chrome).map(|path| {
            let mut name = path.as_os_str().to_os_string();
            name.push(".chrome.json");
            PathBuf::from(name)
        });
        Study::run_observed_with_chrome(
            spec.clone(),
            harness,
            sink.as_ref(),
            chrome_path.as_deref(),
            Some(&progress),
        )
    };

    // The exact anchor study inherits the master seed so `--seed`
    // moves both corpora together; its own knobs stay separate from
    // the main corpus size (2100 exact solves would never finish).
    let anchor_spec = dagsched_experiments::AnchorSpec {
        seed: spec.seed,
        node_budget: exact_budget,
        ..Default::default()
    };

    match command.as_slice() {
        ["all"] => {
            progress.line(&format!(
                "generating {} graphs and running 5 heuristics...",
                spec.total_graphs()
            ));
            let study = build_study(&spec)?;
            if csv {
                for t in all_tables(&study.results) {
                    println!("# Table {}", t.number);
                    print!("{}", t.to_csv());
                    println!();
                }
                if let Some(stats) = &study.robustness {
                    print!("{}", stats.render());
                }
                print_metrics(&study, metrics, false);
            } else {
                // `render()` already appends the metrics section.
                print!("{}", study.render());
            }
            if exact {
                // Markdown in both modes: the gap table's proven vs
                // bracketed rows do not fit the per-table CSV schema.
                print!(
                    "{}",
                    dagsched_experiments::run_anchor_study(&anchor_spec).render()
                );
            }
            Ok(())
        }
        ["exact"] => {
            progress.line(&format!(
                "exact anchor study: 5 bands × {} graphs, node budget {}...",
                anchor_spec.graphs_per_band, anchor_spec.node_budget
            ));
            let report = dagsched_experiments::run_anchor_study(&anchor_spec);
            print!("{}", report.render());
            Ok(())
        }
        ["table", n] => {
            let n: u32 = n.parse().map_err(|_| "table number must be 1-11")?;
            if n == 1 {
                print!("{}", table1(&spec));
                return Ok(());
            }
            if !(2..=11).contains(&n) {
                return Err("table number must be 1-11".into());
            }
            let study = build_study(&spec)?;
            let t = all_tables(&study.results)
                .into_iter()
                .find(|t| t.number == n)
                .expect("tables 2-11 exist");
            if csv {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.to_markdown());
            }
            print_metrics(&study, metrics, false);
            Ok(())
        }
        ["figure", n] => {
            let n: u32 = n.parse().map_err(|_| "figure number must be 1-6")?;
            if !(1..=6).contains(&n) {
                return Err("figure number must be 1-6".into());
            }
            let study = build_study(&spec)?;
            let f = all_figures(&study.results)
                .into_iter()
                .find(|f| f.number == n)
                .expect("figures 1-6 exist");
            print!("{}", f.render(14));
            print_metrics(&study, metrics, false);
            Ok(())
        }
        ["spread"] => {
            let study = build_study(&spec)?;
            print!(
                "{}",
                dagsched_experiments::tables::table3_spread(&study.results).to_markdown()
            );
            println!();
            print!(
                "{}",
                dagsched_experiments::tables::table4_spread(&study.results).to_markdown()
            );
            print_metrics(&study, metrics, false);
            Ok(())
        }
        ["html"] => {
            progress.line(&format!(
                "generating {} graphs and rendering the HTML report...",
                spec.total_graphs()
            ));
            let study = build_study(&spec)?;
            print!("{}", study.render_html());
            Ok(())
        }
        ["corpus"] => {
            print!("{}", table1(&spec));
            Ok(())
        }
        ["appendix"] => {
            print!("{}", render_appendix_example());
            Ok(())
        }
        ["bounded"] => {
            progress.line(&format!(
                "bounded-processor sweep over {} graphs...",
                spec.total_graphs()
            ));
            let corpus = dagsched_experiments::corpus::generate_corpus(&spec);
            let t = dagsched_experiments::extensions::bounded_processor_study(
                &corpus,
                &[1, 2, 4, 8, 16, 0],
            );
            if csv {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.to_markdown());
            }
            Ok(())
        }
        ["rewiring"] => {
            let t = dagsched_experiments::extensions::rewiring_study(
                spec.graphs_per_set.max(4) * 4,
                spec.seed,
            );
            if csv {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.to_markdown());
            }
            Ok(())
        }
        ["contention"] => {
            progress.line(&format!(
                "contention study over {} graphs...",
                spec.total_graphs()
            ));
            let corpus = dagsched_experiments::corpus::generate_corpus(&spec);
            let t = dagsched_experiments::extensions::contention_study(&corpus);
            if csv {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.to_markdown());
            }
            Ok(())
        }
        ["duplication"] => {
            progress.line(&format!(
                "duplication study over {} graphs...",
                spec.total_graphs()
            ));
            let corpus = dagsched_experiments::corpus::generate_corpus(&spec);
            let t = dagsched_experiments::extensions::duplication_study(&corpus);
            if csv {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.to_markdown());
            }
            Ok(())
        }
        ["select"] => {
            progress.line(&format!(
                "scheduler-selection study over {} graphs...",
                spec.total_graphs()
            ));
            let corpus = dagsched_experiments::corpus::generate_corpus(&spec);
            let t = dagsched_experiments::extensions::selector_study(&corpus);
            if csv {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.to_markdown());
            }
            Ok(())
        }
        ["kernels"] => {
            let t = dagsched_experiments::extensions::kernel_study();
            if csv {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.to_markdown());
            }
            Ok(())
        }
        ["summary"] => {
            let study = build_study(&spec)?;
            let t = dagsched_experiments::extensions::summary(&study.results);
            if csv {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.to_markdown());
            }
            print_metrics(&study, metrics, false);
            Ok(())
        }
        ["dump"] => {
            let study = build_study(&spec)?;
            print!(
                "{}",
                dagsched_experiments::extensions::dump_csv(&study.results)
            );
            print_metrics(&study, metrics, false);
            Ok(())
        }
        [] => Err("missing command".into()),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Appends the instrumentation summary to stdout when requested and
/// not already part of the rendered report.
fn print_metrics(study: &Study, requested: bool, already_rendered: bool) {
    if !requested || already_rendered {
        return;
    }
    if let Some(summary) = study.metrics.as_ref().filter(|s| !s.is_empty()) {
        println!();
        print!("{}", summary.render());
    }
}

fn next_num<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<u64, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad value for {flag}"))
    } else {
        v.parse().map_err(|_| format!("bad value for {flag}"))
    }
}
