//! Exact-anchored "gap to optimal" reporting (`repro exact`).
//!
//! The paper's tables only rank heuristics against *each other* —
//! NRPT normalizes by the best heuristic on each graph, so a band
//! where every heuristic is 40% off optimal looks identical to one
//! where the best is optimal. This module adds the missing absolute
//! anchor: a companion corpus built by the same generator over the
//! same five granularity bands, but at 8–16 nodes so the
//! branch-and-bound solver in `dagsched-exact` can certify the true
//! optimum (or at least bracket it) under a deterministic node
//! budget. Each heuristic's makespan is then reported as a percent
//! gap to that anchor, aggregated per band with *proven* and
//! *bracketed* rows kept separate: a proven row compares against a
//! certified optimum, a bracketed row only bounds the gap from above
//! via the admissible lower bound.
//!
//! The main corpus (60–110 nodes) stays exact-free by construction —
//! branch-and-bound at that scale is hopeless, which is exactly why
//! the anchor corpus exists as a separate, smaller companion.

use crate::corpus::derive_seed;
use crate::corpus::SetKey;
use dagsched_core::all_heuristics;
use dagsched_dag::{metrics, Dag, Weight};
use dagsched_exact::{solve, ExactConfig};
use dagsched_gen::pdg::{generate, PdgSpec};
use dagsched_gen::spec::{GranularityBand, WeightRange, PAPER_ANCHORS};
use dagsched_sim::Clique;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Parameters of the exact anchor corpus.
#[derive(Debug, Clone)]
pub struct AnchorSpec {
    /// Graphs per granularity band (anchors and weight ranges cycle).
    pub graphs_per_band: usize,
    /// Node count range — must stay within the exact solver's cap.
    pub nodes: std::ops::RangeInclusive<usize>,
    /// Master seed (independent of, but defaulting to, the main
    /// corpus seed).
    pub seed: u64,
    /// Branch-and-bound node budget per graph. The search runs
    /// serially, so identical inputs explore an identical tree and
    /// the whole report is reproducible bit-for-bit.
    pub node_budget: u64,
}

impl Default for AnchorSpec {
    fn default() -> Self {
        AnchorSpec {
            graphs_per_band: 6,
            nodes: 8..=16,
            seed: 0x1994_0c99,
            node_budget: 2_000_000,
        }
    }
}

/// One heuristic's distance from the anchor on one graph.
#[derive(Debug, Clone)]
pub struct HeuristicGap {
    /// Heuristic name (paper column).
    pub name: &'static str,
    /// The heuristic's makespan.
    pub makespan: Weight,
    /// Guaranteed gap fraction: `makespan / incumbent - 1` (0 when
    /// the heuristic matched the incumbent). Exact when `proven`.
    pub gap_lo: f64,
    /// Worst-case gap fraction: `makespan / lower_bound - 1`.
    /// Collapses onto `gap_lo` when the anchor is proven.
    pub gap_hi: f64,
}

/// The exact anchor for one graph plus every heuristic's gap to it.
#[derive(Debug, Clone)]
pub struct GraphAnchor {
    /// Granularity band of the graph.
    pub band: GranularityBand,
    /// Index within the band.
    pub index: usize,
    /// Node count.
    pub nodes: usize,
    /// Best makespan found by branch-and-bound (a certified optimum
    /// when `proven`).
    pub makespan: Weight,
    /// Admissible lower bound (equals `makespan` when `proven`).
    pub lower_bound: Weight,
    /// Whether the optimum is certified.
    pub proven: bool,
    /// Search nodes expanded.
    pub nodes_explored: u64,
    /// One gap per registered heuristic, in registry order.
    pub gaps: Vec<HeuristicGap>,
}

/// The full anchor study: per-graph anchors plus render helpers.
#[derive(Debug, Clone)]
pub struct OptimalityReport {
    /// The spec the study ran under.
    pub spec: AnchorSpec,
    /// One anchor per generated graph, band-major order.
    pub anchors: Vec<GraphAnchor>,
    /// Graphs whose granularity targeting failed (tiny graphs cannot
    /// always hit a band) — skipped, never silently substituted.
    pub skipped: usize,
}

/// Seed salt separating the anchor corpus from the main corpus even
/// when both use the same master seed.
const ANCHOR_SALT: u64 = 0x0e8a_c701;

/// Generates the anchor graph for `(band, index)`, or `None` when
/// granularity targeting fails within the attempt budget.
fn anchor_graph(spec: &AnchorSpec, band: GranularityBand, index: usize) -> Option<(Dag, f64)> {
    let key = SetKey {
        band,
        anchor: PAPER_ANCHORS[index % PAPER_ANCHORS.len()],
        weights: WeightRange::PAPER[index % WeightRange::PAPER.len()],
    };
    for attempt in 0..64u64 {
        let seed = derive_seed(spec.seed ^ ANCHOR_SALT, key, index, attempt);
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = rng.gen_range(spec.nodes.clone());
        let g = generate(
            &PdgSpec {
                nodes,
                anchor: key.anchor,
                weights: key.weights,
                band,
            },
            &mut rng,
        )
        .expect("anchor sets use validated specs");
        let gran = metrics::granularity(&g);
        if band.contains(gran) {
            return Some((g, gran));
        }
    }
    None
}

/// Runs the anchor study: generates the companion corpus, solves
/// every graph exactly (serial, node-budgeted — deterministic), and
/// measures every registered heuristic against the anchor on the
/// paper's machine model (unbounded clique).
pub fn run_anchor_study(spec: &AnchorSpec) -> OptimalityReport {
    assert!(
        *spec.nodes.end() <= 20,
        "anchor graphs must fit the exact solver's default cap"
    );
    let mut coords = Vec::with_capacity(GranularityBand::ALL.len() * spec.graphs_per_band);
    for &band in &GranularityBand::ALL {
        for index in 0..spec.graphs_per_band {
            coords.push((band, index));
        }
    }
    let anchors = dagsched_par::par_map(&coords, |_, &(band, index)| {
        let (g, _gran) = anchor_graph(spec, band, index)?;
        let exact = solve(&g, &Clique, &ExactConfig::deterministic(spec.node_budget))
            .expect("anchor graphs fit the node cap");
        let gaps = all_heuristics()
            .iter()
            .map(|h| {
                let mk = h.schedule(&g, &Clique).makespan();
                HeuristicGap {
                    name: h.name(),
                    makespan: mk,
                    gap_lo: gap_fraction(mk, exact.makespan),
                    gap_hi: gap_fraction(mk, exact.lower_bound),
                }
            })
            .collect();
        Some(GraphAnchor {
            band,
            index,
            nodes: g.num_nodes(),
            makespan: exact.makespan,
            lower_bound: exact.lower_bound,
            proven: exact.proven,
            nodes_explored: exact.nodes_explored,
            gaps,
        })
    });
    let skipped = anchors.iter().filter(|a| a.is_none()).count();
    OptimalityReport {
        spec: spec.clone(),
        anchors: anchors.into_iter().flatten().collect(),
        skipped,
    }
}

/// `makespan / anchor - 1`, floored at zero (an incumbent is itself a
/// valid schedule, so a heuristic can match but never beat a *proven*
/// anchor; against a mere lower bound the floor just clamps noise).
fn gap_fraction(makespan: Weight, anchor: Weight) -> f64 {
    if anchor == 0 {
        return 0.0;
    }
    (makespan as f64 / anchor as f64 - 1.0).max(0.0)
}

impl OptimalityReport {
    /// Heuristic column names, registry order.
    fn columns(&self) -> Vec<&'static str> {
        match self.anchors.first() {
            Some(a) => a.gaps.iter().map(|g| g.name).collect(),
            None => Vec::new(),
        }
    }

    /// Mean gap (percent) per heuristic over `band`'s anchors with
    /// the given proof status, with the contributing graph count.
    /// `None` when no anchor matches.
    fn band_row(&self, band: GranularityBand, proven: bool) -> Option<(usize, Vec<f64>)> {
        let group: Vec<&GraphAnchor> = self
            .anchors
            .iter()
            .filter(|a| a.band == band && a.proven == proven)
            .collect();
        if group.is_empty() {
            return None;
        }
        let columns = self.columns();
        let mut means = Vec::with_capacity(columns.len());
        for (i, _) in columns.iter().enumerate() {
            let sum: f64 = group
                .iter()
                .map(|a| {
                    if proven {
                        a.gaps[i].gap_lo
                    } else {
                        a.gaps[i].gap_hi
                    }
                })
                .sum();
            means.push(100.0 * sum / group.len() as f64);
        }
        Some((group.len(), means))
    }

    /// The gap table as GitHub-flavoured markdown. Proven rows report
    /// the mean gap to a certified optimum; bracketed rows (marked
    /// `≤`) report the mean *worst-case* gap to the lower bound and
    /// only upper-bound the truth.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("## Gap to optimum (exact anchor corpus)\n\n");
        let proven_total = self.anchors.iter().filter(|a| a.proven).count();
        writeln!(
            out,
            "anchor corpus: {} graphs/band, nodes {:?}, seed {:#x}, \
             node budget {} (serial branch-and-bound)",
            self.spec.graphs_per_band, self.spec.nodes, self.spec.seed, self.spec.node_budget,
        )
        .unwrap();
        writeln!(
            out,
            "{} anchored: {} proven optimal, {} bracketed by lower bound, {} skipped\n",
            self.anchors.len(),
            proven_total,
            self.anchors.len() - proven_total,
            self.skipped,
        )
        .unwrap();
        if self.anchors.is_empty() {
            out.push_str("no graphs anchored — nothing to report\n");
            return out;
        }
        let columns = self.columns();
        write!(out, "| Granularity | Graphs | Status |").unwrap();
        for c in &columns {
            write!(out, " {c} |").unwrap();
        }
        writeln!(out).unwrap();
        write!(out, "|---|---|---|").unwrap();
        for _ in &columns {
            write!(out, "---|").unwrap();
        }
        writeln!(out).unwrap();
        for &band in &GranularityBand::ALL {
            for (proven, status) in [(true, "proven"), (false, "bracketed ≤")] {
                let Some((count, means)) = self.band_row(band, proven) else {
                    continue;
                };
                write!(out, "| {} | {count} | {status} |", band.label()).unwrap();
                for m in means {
                    write!(out, " {m:.2}% |").unwrap();
                }
                writeln!(out).unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> AnchorSpec {
        AnchorSpec {
            graphs_per_band: 2,
            nodes: 8..=12,
            node_budget: 200_000,
            ..AnchorSpec::default()
        }
    }

    #[test]
    fn the_anchor_study_is_deterministic() {
        let spec = small_spec();
        let a = run_anchor_study(&spec);
        let b = run_anchor_study(&spec);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.anchors.len(), b.anchors.len());
        for (x, y) in a.anchors.iter().zip(&b.anchors) {
            assert_eq!(x.makespan, y.makespan);
            assert_eq!(x.lower_bound, y.lower_bound);
            assert_eq!(x.proven, y.proven);
            assert_eq!(x.nodes_explored, y.nodes_explored);
        }
    }

    #[test]
    fn anchors_bound_every_heuristic_from_below() {
        let report = run_anchor_study(&small_spec());
        assert_eq!(
            report.anchors.len() + report.skipped,
            GranularityBand::ALL.len() * 2
        );
        for a in &report.anchors {
            assert!(a.lower_bound <= a.makespan, "{:?}#{}", a.band, a.index);
            if a.proven {
                assert_eq!(a.lower_bound, a.makespan);
            }
            for g in &a.gaps {
                // The solver seeds its incumbent with every
                // heuristic, so none can undercut the anchor.
                assert!(
                    g.makespan >= a.makespan,
                    "{} beat the anchor on {:?}#{}",
                    g.name,
                    a.band,
                    a.index
                );
                assert!(g.gap_lo >= 0.0 && g.gap_hi >= g.gap_lo);
            }
        }
    }

    #[test]
    fn the_rendered_table_separates_proven_from_bracketed_rows() {
        let report = run_anchor_study(&small_spec());
        let rendered = report.render();
        assert!(rendered.contains("## Gap to optimum"));
        assert!(rendered.contains("| Granularity | Graphs | Status |"));
        if report.anchors.iter().any(|a| a.proven) {
            assert!(rendered.contains("| proven |"));
        }
        if report.anchors.iter().any(|a| !a.proven) {
            assert!(rendered.contains("| bracketed ≤ |"));
        }
    }
}
