//! Tables 2–11 of the paper as aggregations over run records.

use crate::corpus::CorpusSpec;
use crate::runner::GraphResult;
use dagsched_gen::spec::{GranularityBand, WeightRange, PAPER_ANCHORS};
use std::fmt::Write as _;

/// A rendered table: named rows of per-heuristic values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Paper table number (2–11).
    pub number: u32,
    /// Caption, mirroring the paper's.
    pub title: String,
    /// Header of the row-label column (e.g. `"Granularity"`).
    pub row_label: String,
    /// Heuristic column names.
    pub columns: Vec<String>,
    /// `(row label, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// GitHub-flavoured markdown rendering (2 decimal places, like the
    /// paper).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        writeln!(out, "**Table {}: {}**", self.number, self.title).unwrap();
        writeln!(out).unwrap();
        write!(out, "| {} |", self.row_label).unwrap();
        for c in &self.columns {
            write!(out, " {c} |").unwrap();
        }
        writeln!(out).unwrap();
        write!(out, "|---|").unwrap();
        for _ in &self.columns {
            write!(out, "---|").unwrap();
        }
        writeln!(out).unwrap();
        for (label, values) in &self.rows {
            write!(out, "| {label} |").unwrap();
            for v in values {
                write!(out, " {v:.2} |").unwrap();
            }
            writeln!(out).unwrap();
        }
        out
    }

    /// CSV rendering (full precision).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        write!(out, "{}", self.row_label).unwrap();
        for c in &self.columns {
            write!(out, ",{c}").unwrap();
        }
        writeln!(out).unwrap();
        for (label, values) in &self.rows {
            write!(out, "\"{label}\"").unwrap();
            for v in values {
                write!(out, ",{v}").unwrap();
            }
            writeln!(out).unwrap();
        }
        out
    }

    /// HTML rendering (for the `repro html` report).
    pub fn to_html(&self) -> String {
        let esc = crate::figures::xml_escape;
        let mut out = String::new();
        writeln!(out, "<h3>Table {}: {}</h3>", self.number, esc(&self.title)).unwrap();
        out.push_str("<table border=\"1\" cellspacing=\"0\" cellpadding=\"4\">\n<tr>");
        write!(out, "<th>{}</th>", esc(&self.row_label)).unwrap();
        for c in &self.columns {
            write!(out, "<th>{}</th>", esc(c)).unwrap();
        }
        out.push_str("</tr>\n");
        for (label, values) in &self.rows {
            write!(out, "<tr><td>{}</td>", esc(label)).unwrap();
            for v in values {
                write!(out, "<td align=\"right\">{v:.2}</td>").unwrap();
            }
            out.push_str("</tr>\n");
        }
        out.push_str("</table>\n");
        out
    }

    /// The value at `(row, column)` by labels.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        self.rows
            .iter()
            .find(|(l, _)| l == row)
            .map(|(_, vals)| vals[c])
    }
}

fn heuristic_names(results: &[GraphResult]) -> Vec<String> {
    results
        .first()
        .map(|r| r.outcomes.iter().map(|o| o.name.to_string()).collect())
        .unwrap_or_default()
}

/// An axis to group the corpus by.
#[derive(Debug, Clone, Copy)]
enum Axis {
    Granularity,
    WeightRange,
    Anchor,
}

/// A labelled row predicate over graph results.
type RowPredicate = Box<dyn Fn(&GraphResult) -> bool>;

impl Axis {
    fn rows(&self) -> Vec<(String, RowPredicate)> {
        match self {
            Axis::Granularity => GranularityBand::ALL
                .into_iter()
                .map(|b| {
                    let f: RowPredicate = Box::new(move |r: &GraphResult| r.key.band == b);
                    (b.label().to_string(), f)
                })
                .collect(),
            Axis::WeightRange => WeightRange::PAPER
                .into_iter()
                .map(|w| {
                    let f: RowPredicate = Box::new(move |r: &GraphResult| r.key.weights == w);
                    (w.label(), f)
                })
                .collect(),
            Axis::Anchor => PAPER_ANCHORS
                .into_iter()
                .map(|a| {
                    let f: RowPredicate = Box::new(move |r: &GraphResult| r.key.anchor == a);
                    (format!("A = {a}"), f)
                })
                .collect(),
        }
    }

    fn row_label(&self) -> &'static str {
        match self {
            Axis::Granularity => "Granularity",
            Axis::WeightRange => "Node Weight Range",
            Axis::Anchor => "Anchor",
        }
    }
}

/// What to aggregate per heuristic within a group.
#[derive(Debug, Clone, Copy)]
enum Measure {
    /// Count of schedules with speedup < 1.
    RetardCount,
    /// Mean normalized relative parallel time.
    MeanNrpt,
    /// Mean speedup.
    MeanSpeedup,
    /// Mean efficiency.
    MeanEfficiency,
}

fn aggregate(results: &[GraphResult], axis: Axis, measure: Measure) -> Vec<(String, Vec<f64>)> {
    let names = heuristic_names(results);
    axis.rows()
        .into_iter()
        .map(|(label, pred)| {
            let group: Vec<&GraphResult> = results.iter().filter(|r| pred(r)).collect();
            let values = names
                .iter()
                .map(|name| {
                    let per: Vec<f64> = group
                        .iter()
                        .map(|r| {
                            let o = r.outcome(name);
                            match measure {
                                Measure::RetardCount => (o.speedup < 1.0) as u32 as f64,
                                Measure::MeanNrpt => o.nrpt,
                                Measure::MeanSpeedup => o.speedup,
                                Measure::MeanEfficiency => o.efficiency,
                            }
                        })
                        .collect();
                    match measure {
                        Measure::RetardCount => per.iter().sum(),
                        _ => {
                            if per.is_empty() {
                                0.0
                            } else {
                                per.iter().sum::<f64>() / per.len() as f64
                            }
                        }
                    }
                })
                .collect();
            (label, values)
        })
        .collect()
}

fn make_table(
    results: &[GraphResult],
    number: u32,
    title: &str,
    axis: Axis,
    measure: Measure,
) -> Table {
    Table {
        number,
        title: title.to_string(),
        row_label: axis.row_label().to_string(),
        columns: heuristic_names(results),
        rows: aggregate(results, axis, measure),
    }
}

/// Table 1: corpus composition (sets × graph counts) — derived from
/// the spec rather than the results.
pub fn table1(spec: &CorpusSpec) -> String {
    let mut out = String::from("**Table 1: corpus composition**\n\n");
    out.push_str("| Granularity | Anchor | Node Weight Range | # of Graphs |\n|---|---|---|---|\n");
    for key in spec.set_keys() {
        writeln!(
            out,
            "| {} | {} | {} | {} |",
            key.band.label(),
            key.anchor,
            key.weights.label(),
            spec.graphs_per_set
        )
        .unwrap();
    }
    writeln!(out, "\nTotal graphs: {}", spec.total_graphs()).unwrap();
    out
}

/// Table 2: number of schedules with speedup < 1 per granularity band.
pub fn table2(results: &[GraphResult]) -> Table {
    make_table(
        results,
        2,
        "Number of graphs for which the heuristics give a speedup of less than 1 (per granularity band)",
        Axis::Granularity,
        Measure::RetardCount,
    )
}

/// Table 3 / Figure 1: average normalized relative parallel time per
/// granularity band.
pub fn table3(results: &[GraphResult]) -> Table {
    make_table(
        results,
        3,
        "Average normalized relative parallel time per granularity band",
        Axis::Granularity,
        Measure::MeanNrpt,
    )
}

/// Table 4 / Figure 2: average speedup per granularity band.
pub fn table4(results: &[GraphResult]) -> Table {
    make_table(
        results,
        4,
        "Average speedup per granularity band",
        Axis::Granularity,
        Measure::MeanSpeedup,
    )
}

/// Table 5 / Figure 3: average efficiency per granularity band.
pub fn table5(results: &[GraphResult]) -> Table {
    make_table(
        results,
        5,
        "Average efficiency per granularity band",
        Axis::Granularity,
        Measure::MeanEfficiency,
    )
}

/// Table 6: number of schedules with speedup < 1 per node weight range.
pub fn table6(results: &[GraphResult]) -> Table {
    make_table(
        results,
        6,
        "Number of schedules with speedups less than 1 in the given node weight range",
        Axis::WeightRange,
        Measure::RetardCount,
    )
}

/// Table 7 / Figure 4: average relative parallel time per node weight range.
pub fn table7(results: &[GraphResult]) -> Table {
    make_table(
        results,
        7,
        "Average relative parallel time for each heuristic in the given node weight range",
        Axis::WeightRange,
        Measure::MeanNrpt,
    )
}

/// Table 8 / Figure 5: average speedup per node weight range.
pub fn table8(results: &[GraphResult]) -> Table {
    make_table(
        results,
        8,
        "Average speedup for each heuristic in the given node weight range",
        Axis::WeightRange,
        Measure::MeanSpeedup,
    )
}

/// Table 9 / Figure 6: average efficiency per node weight range.
pub fn table9(results: &[GraphResult]) -> Table {
    make_table(
        results,
        9,
        "Average efficiency for each heuristic in the given node weight range",
        Axis::WeightRange,
        Measure::MeanEfficiency,
    )
}

/// Table 10: number of schedules with speedup < 1 per anchor out-degree.
pub fn table10(results: &[GraphResult]) -> Table {
    make_table(
        results,
        10,
        "Number of times each heuristic gives speedup less than 1 for the given anchor out-degree",
        Axis::Anchor,
        Measure::RetardCount,
    )
}

/// Table 11: average relative parallel time per anchor out-degree.
pub fn table11(results: &[GraphResult]) -> Table {
    make_table(
        results,
        11,
        "Normalized average relative parallel time for the given anchor out-degree",
        Axis::Anchor,
        Measure::MeanNrpt,
    )
}

/// A table of `mean ± std` cells: the statistical-spread companion to
/// the mean-only paper tables, quantifying how tight each average is.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadTable {
    /// Which paper table this is the spread of.
    pub of_table: u32,
    /// Caption.
    pub title: String,
    /// Row-label header.
    pub row_label: String,
    /// Heuristic column names.
    pub columns: Vec<String>,
    /// `(row label, (mean, sample std) per column)`.
    pub rows: Vec<(String, Vec<(f64, f64)>)>,
}

impl SpreadTable {
    /// Markdown rendering with `mean ± std` cells.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        writeln!(out, "**Spread of Table {}: {}**", self.of_table, self.title).unwrap();
        writeln!(out).unwrap();
        write!(out, "| {} |", self.row_label).unwrap();
        for c in &self.columns {
            write!(out, " {c} |").unwrap();
        }
        writeln!(out).unwrap();
        write!(out, "|---|").unwrap();
        for _ in &self.columns {
            write!(out, "---|").unwrap();
        }
        writeln!(out).unwrap();
        for (label, values) in &self.rows {
            write!(out, "| {label} |").unwrap();
            for (m, sd) in values {
                write!(out, " {m:.2} ± {sd:.2} |").unwrap();
            }
            writeln!(out).unwrap();
        }
        out
    }
}

fn spread(
    results: &[GraphResult],
    axis: Axis,
    per: impl Fn(&crate::runner::HeuristicOutcome) -> f64,
) -> Vec<(String, Vec<(f64, f64)>)> {
    let names = heuristic_names(results);
    axis.rows()
        .into_iter()
        .map(|(label, pred)| {
            let group: Vec<&GraphResult> = results.iter().filter(|r| pred(r)).collect();
            let values = names
                .iter()
                .map(|name| {
                    let xs: Vec<f64> = group.iter().map(|r| per(r.outcome(name))).collect();
                    let n = xs.len().max(1) as f64;
                    let mean = xs.iter().sum::<f64>() / n;
                    let var = if xs.len() < 2 {
                        0.0
                    } else {
                        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
                    };
                    (mean, var.sqrt())
                })
                .collect();
            (label, values)
        })
        .collect()
}

/// Spread (mean ± sample std) of Table 4's speedups per granularity
/// band.
pub fn table4_spread(results: &[GraphResult]) -> SpreadTable {
    SpreadTable {
        of_table: 4,
        title: "Speedup per granularity band, with sample standard deviations".to_string(),
        row_label: "Granularity".to_string(),
        columns: heuristic_names(results),
        rows: spread(results, Axis::Granularity, |o| o.speedup),
    }
}

/// Spread (mean ± sample std) of Table 3's NRPT per granularity band.
pub fn table3_spread(results: &[GraphResult]) -> SpreadTable {
    SpreadTable {
        of_table: 3,
        title: "Normalized relative parallel time per granularity band, with sample standard deviations"
            .to_string(),
        row_label: "Granularity".to_string(),
        columns: heuristic_names(results),
        rows: spread(results, Axis::Granularity, |o| o.nrpt),
    }
}

/// All result tables (2–11) in paper order.
pub fn all_tables(results: &[GraphResult]) -> Vec<Table> {
    vec![
        table2(results),
        table3(results),
        table4(results),
        table5(results),
        table6(results),
        table7(results),
        table8(results),
        table9(results),
        table10(results),
        table11(results),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};
    use crate::runner::run_corpus;
    use dagsched_core::paper_heuristics;

    fn small_results() -> Vec<GraphResult> {
        let spec = CorpusSpec {
            graphs_per_set: 2,
            nodes: 15..=25,
            ..Default::default()
        };
        run_corpus(&generate_corpus(&spec), &paper_heuristics())
    }

    #[test]
    fn tables_have_expected_shape() {
        let results = small_results();
        for t in all_tables(&results) {
            assert_eq!(t.columns, vec!["CLANS", "DSC", "MCP", "MH", "HU"]);
            let expected_rows = match t.number {
                2..=5 => 5,
                6..=9 => 3,
                10 | 11 => 4,
                _ => unreachable!(),
            };
            assert_eq!(t.rows.len(), expected_rows, "table {}", t.number);
        }
    }

    #[test]
    fn boundary_granularity_classifies_into_the_upper_band() {
        // §3.1's bands are half-open `[lo, hi)`: a measured granularity
        // landing exactly on 0.08 / 0.2 / 0.8 / 2.0 belongs to the
        // upper band, and to exactly one band — so no corpus graph can
        // be double-counted or dropped by the table row predicates.
        use dagsched_dag::metrics::granularity;
        use dagsched_gen::pdg::from_lists;
        for (w, e, band) in [
            (2u64, 25u64, GranularityBand::Fine), // G = 0.08 exactly
            (1, 5, GranularityBand::Medium),      // G = 0.2
            (4, 5, GranularityBand::Coarse),      // G = 0.8
            (2, 1, GranularityBand::VeryCoarse),  // G = 2.0
        ] {
            // One non-sink node of weight `w` with a single out-edge of
            // weight `e`: measured granularity is exactly w / e.
            let g = from_lists(&[w, 1], &[(0, 1, e)]).unwrap();
            let gran = granularity(&g);
            assert_eq!((w as f64) / (e as f64), gran);
            assert_eq!(GranularityBand::classify(gran), Some(band), "w={w} e={e}");
            let hits = GranularityBand::ALL
                .iter()
                .filter(|b| b.contains(gran))
                .count();
            assert_eq!(hits, 1, "G = {gran} must land in exactly one band");
        }
    }

    #[test]
    fn clans_column_of_table2_is_all_zeros() {
        let results = small_results();
        let t = table2(&results);
        for (label, _) in &t.rows {
            assert_eq!(t.value(label, "CLANS"), Some(0.0), "row {label}");
        }
    }

    #[test]
    fn retard_counts_sum_consistently_across_axes() {
        // Tables 2, 6 and 10 count the same events grouped differently;
        // per-heuristic totals must agree.
        let results = small_results();
        let sums = |t: &Table| -> Vec<f64> {
            (0..t.columns.len())
                .map(|c| t.rows.iter().map(|(_, v)| v[c]).sum())
                .collect()
        };
        let s2 = sums(&table2(&results));
        let s6 = sums(&table6(&results));
        let s10 = sums(&table10(&results));
        assert_eq!(s2, s6);
        assert_eq!(s2, s10);
    }

    #[test]
    fn markdown_and_csv_render() {
        let results = small_results();
        let t = table3(&results);
        let md = t.to_markdown();
        assert!(md.contains("**Table 3"));
        assert!(md.contains("| CLANS |"));
        assert!(md.contains("G < 0.08"));
        let csv = t.to_csv();
        assert!(csv.starts_with("Granularity,CLANS,DSC,MCP,MH,HU"));
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    fn table1_lists_sixty_sets() {
        let spec = CorpusSpec::default();
        let t1 = table1(&spec);
        assert_eq!(t1.matches("| G < 0.08 |").count(), 12);
        assert!(t1.contains("Total graphs: 2100"));
    }

    #[test]
    fn spread_tables_report_sane_statistics() {
        let results = small_results();
        for t in [table4_spread(&results), table3_spread(&results)] {
            assert_eq!(t.rows.len(), 5);
            for (label, cells) in &t.rows {
                for (mean, sd) in cells {
                    assert!(*sd >= 0.0, "{label}: negative std");
                    assert!(mean.is_finite(), "{label}: non-finite mean");
                }
            }
            let md = t.to_markdown();
            assert!(md.contains('±'));
            assert!(md.contains("Spread of Table"));
        }
        // The spread's means agree with the plain table.
        let t4 = table4(&results);
        let s4 = table4_spread(&results);
        for ((l1, plain), (l2, cells)) in t4.rows.iter().zip(&s4.rows) {
            assert_eq!(l1, l2);
            for (p, (m, _)) in plain.iter().zip(cells) {
                assert!((p - m).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn value_lookup() {
        let results = small_results();
        let t = table4(&results);
        assert!(t.value("G < 0.08", "CLANS").is_some());
        assert!(t.value("nonsense", "CLANS").is_none());
        assert!(t.value("G < 0.08", "NOPE").is_none());
    }
}
