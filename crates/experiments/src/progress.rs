//! Live sweep progress heartbeats (`dagsched.progress.v1`).
//!
//! A checkpointed sweep can run for minutes; until now its only live
//! output was the per-graph reporter sections. A [`ProgressMeter`] is
//! the sweep-shared tally (graphs done / total / quarantined, updated
//! lock-free by the workers), and a [`Heartbeat`] is a sampling thread
//! that snapshots the meter on a fixed interval and hands each
//! [`ProgressSnapshot`] to a sink callback — by default one
//! `dagsched.progress.v1` JSON line on stderr, so heartbeats never
//! interleave with JSONL telemetry or checkpoint journals on stdout.
//!
//! Heartbeats are *advisory* output: throughput and ETA derive from
//! wall-clock and are explicitly outside the determinism contract
//! (nothing downstream parses them back).

use dagsched_obs::json::{write_escaped, write_f64};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema tag carried by every heartbeat line.
pub const PROGRESS_SCHEMA: &str = "dagsched.progress.v1";

/// Shared progress tally for one sweep. Cheap enough to bump from
/// every worker (two relaxed atomic adds per graph).
#[derive(Debug)]
pub struct ProgressMeter {
    /// Graphs the sweep will execute (excluding journal replays).
    total: usize,
    /// Graphs replayed from the journal before execution started.
    replayed: usize,
    done: AtomicUsize,
    quarantined: AtomicUsize,
    started: Instant,
}

impl ProgressMeter {
    /// A fresh meter for a sweep of `total` graphs, `replayed` of
    /// which were already satisfied by journal replay.
    pub fn new(total: usize, replayed: usize) -> Self {
        ProgressMeter {
            total,
            replayed,
            done: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Records one freshly executed graph.
    pub fn graph_done(&self) {
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one graph quarantined by the retry supervisor.
    pub fn graph_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time snapshot of the tally.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let done = self.done.load(Ordering::Relaxed);
        let quarantined = self.quarantined.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        let secs = elapsed.as_secs_f64();
        let throughput = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        // Quarantined graphs will never execute, so they are not part
        // of the remaining work — otherwise the ETA stays `Some` (and
        // overestimates) forever on a sweep with poisoned graphs.
        let remaining = self.total.saturating_sub(done + quarantined);
        let eta_ms = (done > 0 && remaining > 0)
            .then(|| (secs / done as f64 * remaining as f64 * 1e3) as u64);
        ProgressSnapshot {
            done,
            total: self.total,
            replayed: self.replayed,
            quarantined,
            elapsed_ms: elapsed.as_millis() as u64,
            graphs_per_sec: throughput,
            eta_ms,
        }
    }
}

/// One heartbeat: where the sweep stands and how fast it is moving.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Graphs executed so far (excluding replays).
    pub done: usize,
    /// Graphs the sweep will execute in total (excluding replays).
    pub total: usize,
    /// Graphs satisfied by journal replay before execution.
    pub replayed: usize,
    /// Graphs quarantined so far.
    pub quarantined: usize,
    /// Wall-clock since the meter was created.
    pub elapsed_ms: u64,
    /// Freshly executed graphs per second of wall-clock.
    pub graphs_per_sec: f64,
    /// Projected milliseconds to completion at the current rate
    /// (`None` until the first graph lands, and once done).
    pub eta_ms: Option<u64>,
}

impl ProgressSnapshot {
    /// Encodes the snapshot as one `dagsched.progress.v1` JSON line
    /// (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"schema\":");
        write_escaped(&mut out, PROGRESS_SCHEMA);
        out.push_str(",\"done\":");
        out.push_str(&self.done.to_string());
        out.push_str(",\"total\":");
        out.push_str(&self.total.to_string());
        out.push_str(",\"replayed\":");
        out.push_str(&self.replayed.to_string());
        out.push_str(",\"quarantined\":");
        out.push_str(&self.quarantined.to_string());
        out.push_str(",\"elapsed_ms\":");
        out.push_str(&self.elapsed_ms.to_string());
        out.push_str(",\"graphs_per_sec\":");
        write_f64(&mut out, (self.graphs_per_sec * 1e3).round() / 1e3);
        out.push_str(",\"eta_ms\":");
        match self.eta_ms {
            Some(ms) => out.push_str(&ms.to_string()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// A sampling thread emitting one snapshot per `interval` until
/// dropped (plus one final snapshot at shutdown, so even sweeps
/// shorter than the interval report once).
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts sampling `meter` every `interval`, handing each
    /// snapshot to `sink`.
    pub fn start(
        meter: Arc<ProgressMeter>,
        interval: Duration,
        sink: impl Fn(ProgressSnapshot) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("dagsched-heartbeat".into())
            .spawn(move || {
                // Wake frequently so drop latency stays small even
                // with multi-second intervals.
                let tick = interval
                    .min(Duration::from_millis(25))
                    .max(Duration::from_millis(1));
                let mut next = Instant::now() + interval;
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    if Instant::now() >= next {
                        sink(meter.snapshot());
                        next = Instant::now() + interval;
                    }
                }
                sink(meter.snapshot());
            })
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            thread: Some(thread),
        }
    }

    /// Starts a heartbeat that prints each snapshot as one JSON line
    /// on stderr — the default sink for CLI sweeps.
    pub fn to_stderr(meter: Arc<ProgressMeter>, interval: Duration) -> Self {
        Heartbeat::start(meter, interval, |snap| eprintln!("{}", snap.to_json()))
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_obs::Json;
    use std::sync::Mutex;

    #[test]
    fn snapshots_tally_and_encode() {
        let meter = ProgressMeter::new(10, 4);
        for _ in 0..3 {
            meter.graph_done();
        }
        meter.graph_quarantined();
        let snap = meter.snapshot();
        assert_eq!((snap.done, snap.total, snap.replayed), (3, 10, 4));
        assert_eq!(snap.quarantined, 1);
        let j = Json::parse(&snap.to_json()).expect("valid JSON");
        assert_eq!(j.get("schema").unwrap().as_str(), Some(PROGRESS_SCHEMA));
        assert_eq!(j.get("done").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("total").unwrap().as_u64(), Some(10));
        assert!(j.get("graphs_per_sec").unwrap().as_f64().is_some());
        // 7 graphs left and some have landed: an ETA is projected.
        assert!(j.get("eta_ms").unwrap().as_u64().is_some());
    }

    #[test]
    fn eta_is_null_before_first_graph_and_after_completion() {
        let meter = ProgressMeter::new(2, 0);
        assert_eq!(meter.snapshot().eta_ms, None);
        meter.graph_done();
        meter.graph_done();
        assert_eq!(meter.snapshot().eta_ms, None);
    }

    #[test]
    fn eta_converges_when_graphs_quarantine() {
        // 5 graphs: 3 executed, 2 quarantined — the sweep is over.
        let meter = ProgressMeter::new(5, 0);
        for _ in 0..3 {
            meter.graph_done();
        }
        meter.graph_quarantined();
        meter.graph_quarantined();
        let snap = meter.snapshot();
        assert_eq!((snap.done, snap.quarantined), (3, 2));
        assert_eq!(
            snap.eta_ms, None,
            "quarantined graphs never execute, so nothing remains"
        );

        // Partially quarantined sweep: only the 1 truly remaining
        // graph should be projected, not the quarantined ones.
        let meter = ProgressMeter::new(4, 0);
        meter.graph_done();
        meter.graph_quarantined();
        std::thread::sleep(Duration::from_millis(5));
        let snap = meter.snapshot();
        let eta = snap.eta_ms.expect("one graph remains");
        // remaining == 1 == done, so ETA ≈ elapsed; the pre-fix code
        // used remaining == 3 and projected at least 3× elapsed.
        assert!(
            eta <= snap.elapsed_ms * 2,
            "eta {eta}ms should project one remaining graph, not three (elapsed {}ms)",
            snap.elapsed_ms
        );
    }

    #[test]
    fn heartbeat_emits_on_interval_and_once_at_shutdown() {
        let meter = Arc::new(ProgressMeter::new(5, 0));
        let seen: Arc<Mutex<Vec<ProgressSnapshot>>> = Arc::default();
        {
            let sink = Arc::clone(&seen);
            let beat = Heartbeat::start(Arc::clone(&meter), Duration::from_millis(30), move |s| {
                sink.lock().unwrap().push(s);
            });
            meter.graph_done();
            std::thread::sleep(Duration::from_millis(100));
            drop(beat);
        }
        let seen = seen.lock().unwrap();
        // At least two interval beats plus the final one at drop.
        assert!(seen.len() >= 3, "got {} heartbeats", seen.len());
        assert!(seen.iter().all(|s| s.total == 5 && s.done >= 1));
    }
}
