//! The paper's performance measures (§4):
//!
//! * `Speedup = SerialTime / ParallelTime`
//! * `Efficiency = Speedup / NumberOfProcessors`
//! * `NormalizedRelativeParallelTime(X) = PT(X) / BestPT − 1`

use crate::machine::Machine;
use crate::schedule::Schedule;
use dagsched_dag::{Dag, Weight};

/// The per-graph measures the paper records for one heuristic's
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measures {
    /// The schedule's makespan.
    pub parallel_time: Weight,
    /// `serial / parallel` (`f64::INFINITY` when parallel time is 0 on
    /// a non-empty serial time; 1.0 for the empty graph).
    pub speedup: f64,
    /// `speedup / processors used` (0 when no processors are used).
    pub efficiency: f64,
    /// Processors used.
    pub procs: usize,
}

/// Computes the measures of `s` against `g`'s serial time, with the
/// paper's unbounded-machine efficiency convention: the denominator is
/// the number of processors the schedule *used*.
pub fn measures(g: &Dag, s: &Schedule) -> Measures {
    measures_with_limit(g, s, None)
}

/// As [`measures`], but efficiency honours the machine's bound: on a
/// bounded machine the denominator is the machine's processor limit
/// (idle provisioned processors count against the schedule — the true
/// efficiency a bounded-processor study wants), while an unbounded
/// machine keeps the processors-used proxy.
pub fn measures_on<M: Machine + ?Sized>(g: &Dag, s: &Schedule, machine: &M) -> Measures {
    measures_with_limit(g, s, machine.max_procs())
}

fn measures_with_limit(g: &Dag, s: &Schedule, limit: Option<usize>) -> Measures {
    let serial = g.serial_time();
    let pt = s.makespan();
    let speedup = speedup(serial, pt);
    let procs = s.num_procs();
    let denom = limit.unwrap_or(procs);
    let efficiency = if denom == 0 {
        0.0
    } else {
        speedup / denom as f64
    };
    Measures {
        parallel_time: pt,
        speedup,
        efficiency,
        procs,
    }
}

/// `serial / parallel` with the edge conventions described on
/// [`Measures::speedup`].
pub fn speedup(serial: Weight, parallel: Weight) -> f64 {
    match (serial, parallel) {
        (0, 0) => 1.0,
        (_, 0) => f64::INFINITY,
        (s, p) => s as f64 / p as f64,
    }
}

/// The paper's normalized relative parallel time of one heuristic
/// against the best parallel time among all compared heuristics on
/// the same graph. The best heuristic scores 0.
pub fn normalized_relative_pt(parallel_time: Weight, best: Weight) -> f64 {
    if best == 0 {
        if parallel_time == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        parallel_time as f64 / best as f64 - 1.0
    }
}

/// Relative parallel times for a whole row of heuristic results on
/// one graph (best = the minimum of the inputs).
pub fn normalized_relative_pts(parallel_times: &[Weight]) -> Vec<f64> {
    let Some(&best) = parallel_times.iter().min() else {
        return Vec::new();
    };
    parallel_times
        .iter()
        .map(|&pt| normalized_relative_pt(pt, best))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::machine::Clique;
    use dagsched_dag::DagBuilder;

    #[test]
    fn speedup_conventions() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(100, 200), 0.5);
        assert_eq!(speedup(0, 0), 1.0);
        assert!(speedup(5, 0).is_infinite());
    }

    #[test]
    fn nrpt_zero_for_best() {
        let r = normalized_relative_pts(&[100, 150, 100, 300]);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 0.5).abs() < 1e-12);
        assert_eq!(r[2], 0.0);
        assert!((r[3] - 2.0).abs() < 1e-12);
        assert!(normalized_relative_pts(&[]).is_empty());
    }

    #[test]
    fn nrpt_zero_best_edge_cases() {
        assert_eq!(normalized_relative_pt(0, 0), 0.0);
        assert!(normalized_relative_pt(10, 0).is_infinite());
    }

    #[test]
    fn measures_of_serial_schedule() {
        let mut b = DagBuilder::new();
        let a = b.add_node(30);
        let c = b.add_node(70);
        b.add_edge(a, c, 10).unwrap();
        let g = b.build().unwrap();
        let s = Clustering::serial(2).materialize(&g, &Clique).unwrap();
        let m = measures(&g, &s);
        assert_eq!(m.parallel_time, 100);
        assert_eq!(m.speedup, 1.0);
        assert_eq!(m.efficiency, 1.0);
        assert_eq!(m.procs, 1);
    }

    #[test]
    fn efficiency_divides_by_processors_used() {
        // Sparse input ids {0, 5} densify to two processors: the
        // efficiency denominator is the count of processors *used*,
        // never the highest raw id.
        use crate::machine::ProcId;
        use crate::schedule::Schedule;
        let mut b = DagBuilder::new();
        b.add_node(50);
        b.add_node(50);
        let g = b.build().unwrap();
        let s = Schedule::new(&g, vec![(ProcId(0), 0), (ProcId(5), 0)]);
        let m = measures(&g, &s);
        assert_eq!(m.procs, 2);
        assert_eq!(m.speedup, 2.0);
        assert_eq!(m.efficiency, 1.0);
    }

    #[test]
    fn single_processor_schedule_has_efficiency_equal_speedup() {
        // On one processor speedup = efficiency exactly — the serial
        // fallback convention (speedup = efficiency = 1.0) is a
        // special case of this, not a hardcoded constant.
        let mut b = DagBuilder::new();
        let a = b.add_node(30);
        let c = b.add_node(70);
        b.add_edge(a, c, 999).unwrap();
        let g = b.build().unwrap();
        let s = Clustering::serial(2).materialize(&g, &Clique).unwrap();
        let m = measures(&g, &s);
        assert_eq!(m.procs, 1);
        assert_eq!(m.speedup, 1.0);
        assert_eq!(m.efficiency, m.speedup);
    }

    #[test]
    fn bounded_machine_efficiency_divides_by_the_limit() {
        // Two tasks on two processors of a 4-processor machine: the
        // two idle provisioned processors count against efficiency.
        use crate::machine::BoundedClique;
        let mut b = DagBuilder::new();
        b.add_node(50);
        b.add_node(50);
        let g = b.build().unwrap();
        let m4 = BoundedClique::new(4);
        let s = Clustering::singletons(2).materialize(&g, &m4).unwrap();
        let m = measures_on(&g, &s, &m4);
        assert_eq!(m.procs, 2);
        assert_eq!(m.speedup, 2.0);
        assert_eq!(m.efficiency, 0.5, "speedup 2 over the 4-proc limit");
    }

    #[test]
    fn unbounded_machine_efficiency_keeps_the_procs_used_proxy() {
        let mut b = DagBuilder::new();
        b.add_node(50);
        b.add_node(50);
        let g = b.build().unwrap();
        let s = Clustering::singletons(2).materialize(&g, &Clique).unwrap();
        let via_machine = measures_on(&g, &s, &Clique);
        let via_default = measures(&g, &s);
        assert_eq!(via_machine, via_default);
        assert_eq!(via_machine.efficiency, 1.0);
    }

    #[test]
    fn measures_of_parallel_schedule() {
        // Two independent tasks split across two processors.
        let mut b = DagBuilder::new();
        b.add_node(50);
        b.add_node(50);
        let g = b.build().unwrap();
        let s = Clustering::singletons(2).materialize(&g, &Clique).unwrap();
        let m = measures(&g, &s);
        assert_eq!(m.parallel_time, 50);
        assert_eq!(m.speedup, 2.0);
        assert_eq!(m.efficiency, 1.0);
        assert_eq!(m.procs, 2);
    }

    #[test]
    fn retarded_schedule_has_speedup_below_one() {
        // Heavy communication makes the parallel schedule slower than
        // serial — the situation Table 2 counts.
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(10);
        b.add_edge(a, c, 1000).unwrap();
        let g = b.build().unwrap();
        let s = Clustering::singletons(2).materialize(&g, &Clique).unwrap();
        let m = measures(&g, &s);
        assert!(m.speedup < 1.0);
    }
}
