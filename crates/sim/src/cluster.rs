//! Task clusterings and their materialization into schedules.
//!
//! Clustering heuristics (DSC, CLANS, linear clustering) decide a
//! *partition* of the tasks; turning a partition into a schedule is a
//! shared, mechanical step: each cluster becomes one processor and
//! tasks execute in a b-level-priority topological order, starting as
//! early as data and processor availability allow.

use crate::evaluate::{timed_schedule_by_priority, EvalError};
use crate::machine::{Machine, ProcId};
use crate::schedule::Schedule;
use dagsched_dag::{Dag, NodeId};

/// A partition of the tasks of a [`Dag`] into clusters.
///
/// Clusters are created explicitly ([`Clustering::create_cluster`])
/// and tasks are assigned one by one — mirroring how edge-zeroing
/// algorithms build their answer. A fully assigned clustering can be
/// [materialized](Clustering::materialize) into a [`Schedule`].
///
/// ```
/// use dagsched_sim::{Clustering, Clique};
/// use dagsched_dag::DagBuilder;
///
/// let mut b = DagBuilder::new();
/// let a = b.add_node(10);
/// let c = b.add_node(20);
/// b.add_edge(a, c, 100).unwrap();
/// let g = b.build().unwrap();
///
/// // Both tasks together: the heavy edge is zeroed.
/// let s = Clustering::serial(2).materialize(&g, &Clique).unwrap();
/// assert_eq!(s.makespan(), 30);
/// // Apart: the edge weight is paid.
/// let s = Clustering::singletons(2).materialize(&g, &Clique).unwrap();
/// assert_eq!(s.makespan(), 130);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    cluster_of: Vec<Option<u32>>,
    num_clusters: u32,
}

impl Clustering {
    /// A clustering of `n` tasks with no clusters and nothing assigned.
    pub fn new(n: usize) -> Self {
        Self {
            cluster_of: vec![None; n],
            num_clusters: 0,
        }
    }

    /// Every task in its own cluster (the fully parallel clustering —
    /// DSC's starting point).
    pub fn singletons(n: usize) -> Self {
        Self {
            cluster_of: (0..n as u32).map(Some).collect(),
            num_clusters: n as u32,
        }
    }

    /// All tasks in one cluster (the serial clustering).
    pub fn serial(n: usize) -> Self {
        Self {
            cluster_of: vec![Some(0); n],
            num_clusters: if n == 0 { 0 } else { 1 },
        }
    }

    /// Builds from an explicit per-task cluster id vector (ids need
    /// not be dense).
    pub fn from_assignment(ids: &[u32]) -> Self {
        let mut dense: std::collections::HashMap<u32, u32> = Default::default();
        let mut cluster_of = Vec::with_capacity(ids.len());
        for &c in ids {
            let next = dense.len() as u32;
            cluster_of.push(Some(*dense.entry(c).or_insert(next)));
        }
        Self {
            cluster_of,
            num_clusters: dense.len() as u32,
        }
    }

    /// Creates a fresh empty cluster and returns its id.
    pub fn create_cluster(&mut self) -> u32 {
        let id = self.num_clusters;
        self.num_clusters += 1;
        id
    }

    /// Assigns `v` to cluster `c` (re-assignment allowed until
    /// materialization).
    pub fn assign(&mut self, v: NodeId, c: u32) {
        assert!(c < self.num_clusters, "cluster {c} was never created");
        self.cluster_of[v.index()] = Some(c);
    }

    /// Cluster of `v`, if assigned.
    #[inline]
    pub fn cluster_of(&self, v: NodeId) -> Option<u32> {
        self.cluster_of[v.index()]
    }

    /// True when every task has a cluster.
    pub fn is_complete(&self) -> bool {
        self.cluster_of.iter().all(Option::is_some)
    }

    /// Number of *distinct, non-empty* clusters.
    pub fn num_used_clusters(&self) -> usize {
        let mut used = std::collections::HashSet::new();
        for c in self.cluster_of.iter().flatten() {
            used.insert(*c);
        }
        used.len()
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.cluster_of.len()
    }

    /// True if `u` and `v` share a cluster (false if either is
    /// unassigned).
    pub fn same_cluster(&self, u: NodeId, v: NodeId) -> bool {
        match (self.cluster_of[u.index()], self.cluster_of[v.index()]) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Folds the clustering down to at most `bound` clusters by
    /// repeatedly merging the two least-loaded (by total task weight)
    /// clusters — the standard post-pass that adapts an
    /// unbounded-processor clustering to a bounded machine. Requires a
    /// complete clustering.
    pub fn fold_to(&self, g: &Dag, bound: usize) -> Clustering {
        assert!(bound >= 1, "cannot fold to zero clusters");
        assert_eq!(self.cluster_of.len(), g.num_nodes());
        // Gather per-cluster task lists and loads.
        let mut groups: std::collections::BTreeMap<u32, (u64, Vec<NodeId>)> = Default::default();
        for (i, c) in self.cluster_of.iter().enumerate() {
            let c = c.expect("fold_to requires a complete clustering");
            let v = NodeId(i as u32);
            let entry = groups.entry(c).or_insert((0, Vec::new()));
            entry.0 += g.node_weight(v);
            entry.1.push(v);
        }
        let mut merged: Vec<(u64, Vec<NodeId>)> = groups.into_values().collect();
        while merged.len() > bound {
            merged.sort_by_key(|(l, _)| *l);
            let (l0, t0) = merged.remove(0);
            let (l1, mut t1) = merged.remove(0);
            let mut tasks = t0;
            tasks.append(&mut t1);
            merged.push((l0 + l1, tasks));
        }
        let mut out = Clustering::new(g.num_nodes());
        for (_, tasks) in merged {
            let c = out.create_cluster();
            for t in tasks {
                out.assign(t, c);
            }
        }
        out
    }

    /// Materializes the clustering into a schedule on `machine`: one
    /// processor per cluster, tasks ordered by descending
    /// communication b-level (ties toward smaller index), earliest
    /// feasible start times.
    ///
    /// # Errors
    /// [`EvalError::BadInput`] if some task is unassigned or the
    /// machine cannot hold the clusters.
    pub fn materialize<M: Machine + ?Sized>(
        &self,
        g: &Dag,
        machine: &M,
    ) -> Result<Schedule, EvalError> {
        if self.cluster_of.len() != g.num_nodes() {
            return Err(EvalError::BadInput(format!(
                "clustering covers {} of {} tasks",
                self.cluster_of.len(),
                g.num_nodes()
            )));
        }
        let mut assignment = Vec::with_capacity(g.num_nodes());
        // Densify cluster ids so empty clusters don't count as
        // processors.
        let mut dense: std::collections::HashMap<u32, u32> = Default::default();
        for (i, c) in self.cluster_of.iter().enumerate() {
            let Some(c) = c else {
                return Err(EvalError::BadInput(format!("task n{i} is unassigned")));
            };
            let next = dense.len() as u32;
            assignment.push(ProcId(*dense.entry(*c).or_insert(next)));
        }
        // Priorities priced under the machine's level cost: borrows
        // the plain cached b-levels on uniform machines.
        let levels = dagsched_dag::analysis::PricedLevels::new(g, machine.level_cost());
        timed_schedule_by_priority(g, machine, &assignment, levels.blevels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Clique;
    use dagsched_dag::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn fork_join() -> Dag {
        // 0 -> {1, 2} -> 3; weights 10 each; comm 100 everywhere.
        let mut b = DagBuilder::new();
        for _ in 0..4 {
            b.add_node(10);
        }
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(n(s), n(d), 100).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn serial_clustering_matches_serial_time() {
        let g = fork_join();
        let s = Clustering::serial(4).materialize(&g, &Clique).unwrap();
        assert_eq!(s.makespan(), g.serial_time());
        assert_eq!(s.num_procs(), 1);
    }

    #[test]
    fn singleton_clustering_matches_critical_path_with_comm() {
        let g = fork_join();
        let s = Clustering::singletons(4).materialize(&g, &Clique).unwrap();
        assert_eq!(s.makespan(), dagsched_dag::levels::critical_path_len(&g));
        assert_eq!(s.num_procs(), 4);
    }

    #[test]
    fn incremental_building() {
        let g = fork_join();
        let mut c = Clustering::new(4);
        assert!(!c.is_complete());
        let a = c.create_cluster();
        let b = c.create_cluster();
        c.assign(n(0), a);
        c.assign(n(1), a);
        c.assign(n(2), b);
        c.assign(n(3), a);
        assert!(c.is_complete());
        assert!(c.same_cluster(n(0), n(1)));
        assert!(!c.same_cluster(n(1), n(2)));
        assert_eq!(c.num_used_clusters(), 2);
        let s = c.materialize(&g, &Clique).unwrap();
        // Path 0,1,3 local; 2 pays comm both ways:
        // start(2)=10+100=110, finish=120, arrive at 3: 220;
        // local chain would allow 3 at 30 but must wait for 2.
        assert_eq!(s.makespan(), 230);
    }

    #[test]
    fn unassigned_task_is_an_error() {
        let g = fork_join();
        let mut c = Clustering::new(4);
        let a = c.create_cluster();
        for i in 0..3 {
            c.assign(n(i), a);
        }
        assert!(matches!(
            c.materialize(&g, &Clique),
            Err(EvalError::BadInput(_))
        ));
    }

    #[test]
    fn from_assignment_densifies() {
        let c = Clustering::from_assignment(&[7, 7, 42, 7]);
        assert_eq!(c.num_used_clusters(), 2);
        assert!(c.same_cluster(n(0), n(3)));
        assert!(!c.same_cluster(n(0), n(2)));
    }

    #[test]
    fn empty_clusters_do_not_become_processors() {
        let g = fork_join();
        let mut c = Clustering::new(4);
        let _empty = c.create_cluster();
        let used = c.create_cluster();
        let _empty2 = c.create_cluster();
        for i in 0..4 {
            c.assign(n(i), used);
        }
        let s = c.materialize(&g, &Clique).unwrap();
        assert_eq!(s.num_procs(), 1);
    }

    #[test]
    #[should_panic(expected = "never created")]
    fn assigning_to_unknown_cluster_panics() {
        let mut c = Clustering::new(2);
        c.assign(n(0), 3);
    }

    #[test]
    fn fold_to_merges_least_loaded_first() {
        let g = fork_join();
        // Four singleton clusters with loads 10 each.
        let c = Clustering::singletons(4);
        let folded = c.fold_to(&g, 2);
        assert_eq!(folded.num_used_clusters(), 2);
        assert!(folded.is_complete());
        // Folding to 1 is serialization.
        let serial = c.fold_to(&g, 1);
        assert_eq!(serial.num_used_clusters(), 1);
        let s = serial.materialize(&g, &Clique).unwrap();
        assert_eq!(s.makespan(), g.serial_time());
        // A bound above the cluster count is a no-op on counts.
        assert_eq!(c.fold_to(&g, 10).num_used_clusters(), 4);
    }

    #[test]
    fn fold_to_respects_load_balance() {
        // Clusters of load 100, 1, 1: folding to 2 must merge the two
        // light ones, keeping the heavy one alone.
        let mut b = DagBuilder::new();
        let heavy = b.add_node(100);
        let l1 = b.add_node(1);
        let l2 = b.add_node(1);
        let g = b.build().unwrap();
        let c = Clustering::from_assignment(&[0, 1, 2]);
        let folded = c.fold_to(&g, 2);
        assert!(!folded.same_cluster(heavy, l1));
        assert!(!folded.same_cluster(heavy, l2));
        assert!(folded.same_cluster(l1, l2));
    }
}
