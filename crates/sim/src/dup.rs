//! Schedules **with task duplication** — the model extension behind
//! the paper's references [2, 12, 16], excluded from its five-way
//! comparison by assumption 3 ("duplication adds additional
//! complexity") and provided here as the natural follow-up.
//!
//! A [`DupSchedule`] may run several *copies* of one task on different
//! processors; a consumer is satisfied by whichever copy of each
//! predecessor delivers first. Everything else matches the base model:
//! free same-processor communication, no processor overlap,
//! makespan objective. Speedup still divides the (unduplicated) serial
//! time by the makespan — duplication burns processor-time to buy
//! schedule-time, which shows up in the efficiency metric.

use crate::machine::{Machine, ProcId};
use crate::schedule::Placement;
use dagsched_dag::{Dag, NodeId, Weight};
use std::fmt;

/// A schedule in which each task has one *or more* placements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DupSchedule {
    copies: Vec<Vec<Placement>>,
    num_procs: usize,
    makespan: Weight,
}

/// A violated constraint of a duplication schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DupViolation {
    /// A task has no copy at all.
    Unplaced(NodeId),
    /// Two copies overlap on one processor.
    Overlap {
        /// The processor where the overlap happens.
        proc: ProcId,
    },
    /// A copy starts before every copy of some predecessor can deliver.
    Precedence {
        /// The predecessor task.
        pred: NodeId,
        /// The violating task.
        task: NodeId,
        /// Index of the violating copy.
        copy: usize,
    },
    /// The machine cannot hold that many processors.
    TooManyProcs {
        /// Processors used.
        used: usize,
        /// Machine bound.
        bound: usize,
    },
}

impl fmt::Display for DupViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DupViolation::Unplaced(v) => write!(f, "task {v} has no copy"),
            DupViolation::Overlap { proc } => write!(f, "copies overlap on {proc}"),
            DupViolation::Precedence { pred, task, copy } => {
                write!(
                    f,
                    "copy {copy} of {task} starts before any copy of {pred} delivers"
                )
            }
            DupViolation::TooManyProcs { used, bound } => {
                write!(f, "{used} processors exceed the bound {bound}")
            }
        }
    }
}

impl DupSchedule {
    /// Builds from raw per-task copy lists `(proc, start)`; finish
    /// times come from the task weights. Processor ids are densified
    /// order-preservingly.
    pub fn new(g: &Dag, raw: Vec<Vec<(ProcId, Weight)>>) -> DupSchedule {
        assert_eq!(raw.len(), g.num_nodes(), "one copy list per task");
        let mut ids: Vec<u32> = raw.iter().flatten().map(|(p, _)| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        let dense = |p: u32| ids.binary_search(&p).expect("collected") as u32;
        let mut makespan = 0;
        let copies: Vec<Vec<Placement>> = raw
            .into_iter()
            .enumerate()
            .map(|(v, list)| {
                let w = g.node_weight(NodeId(v as u32));
                list.into_iter()
                    .map(|(p, start)| {
                        let finish = start + w;
                        makespan = makespan.max(finish);
                        Placement {
                            proc: ProcId(dense(p.0)),
                            start,
                            finish,
                        }
                    })
                    .collect()
            })
            .collect();
        DupSchedule {
            copies,
            num_procs: ids.len(),
            makespan,
        }
    }

    /// All copies of `v`.
    pub fn copies_of(&self, v: NodeId) -> &[Placement] {
        &self.copies[v.index()]
    }

    /// Number of processors used.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Latest finish over all copies.
    pub fn makespan(&self) -> Weight {
        self.makespan
    }

    /// Total copies across tasks (≥ the task count; the excess is the
    /// duplication volume).
    pub fn total_copies(&self) -> usize {
        self.copies.iter().map(Vec::len).sum()
    }

    /// Earliest time any copy of `v` can deliver to processor `p`.
    pub fn earliest_delivery(
        &self,
        machine: &dyn Machine,
        v: NodeId,
        edge_weight: Weight,
        p: ProcId,
    ) -> Option<Weight> {
        self.copies[v.index()]
            .iter()
            .map(|c| c.finish + machine.comm_cost(c.proc, p, edge_weight))
            .min()
    }

    /// Validates every constraint; empty = valid.
    pub fn check(&self, g: &Dag, machine: &dyn Machine) -> Vec<DupViolation> {
        let mut out = Vec::new();
        if let Some(bound) = machine.max_procs() {
            if self.num_procs > bound {
                out.push(DupViolation::TooManyProcs {
                    used: self.num_procs,
                    bound,
                });
            }
        }
        // Overlap per processor.
        let mut per_proc: Vec<Vec<(Weight, Weight)>> = vec![Vec::new(); self.num_procs];
        for (v, list) in self.copies.iter().enumerate() {
            if list.is_empty() {
                out.push(DupViolation::Unplaced(NodeId(v as u32)));
            }
            for c in list {
                per_proc[c.proc.index()].push((c.start, c.finish));
            }
        }
        for (p, intervals) in per_proc.iter_mut().enumerate() {
            intervals.sort_unstable();
            if intervals.windows(2).any(|w| w[0].1 > w[1].0) {
                out.push(DupViolation::Overlap {
                    proc: ProcId(p as u32),
                });
            }
        }
        // Precedence: every copy needs every predecessor delivered.
        for v in g.nodes() {
            for (ci, c) in self.copies[v.index()].iter().enumerate() {
                for (pred, w) in g.preds(v) {
                    let ok = self
                        .earliest_delivery(machine, pred, w, c.proc)
                        .is_some_and(|t| t <= c.start);
                    if !ok {
                        out.push(DupViolation::Precedence {
                            pred,
                            task: v,
                            copy: ci,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{BoundedClique, Clique};
    use dagsched_dag::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    /// src(5) feeding two tasks (10 each) over comm-100 edges.
    fn fan_out() -> Dag {
        let mut b = DagBuilder::new();
        let s = b.add_node(5);
        let a = b.add_node(10);
        let c = b.add_node(10);
        b.add_edge(s, a, 100).unwrap();
        b.add_edge(s, c, 100).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn duplication_beats_the_single_copy_optimum() {
        let g = fan_out();
        // Without duplication either the children serialize (25) or
        // one pays comm (105). With the source duplicated, both
        // children start at 5: makespan 15.
        let s = DupSchedule::new(
            &g,
            vec![
                vec![(p(0), 0), (p(1), 0)], // both procs run the source
                vec![(p(0), 5)],
                vec![(p(1), 5)],
            ],
        );
        assert!(s.check(&g, &Clique).is_empty());
        assert_eq!(s.makespan(), 15);
        assert_eq!(s.total_copies(), 4);
        assert_eq!(s.num_procs(), 2);
    }

    #[test]
    fn detects_missing_copy() {
        let g = fan_out();
        let s = DupSchedule::new(&g, vec![vec![(p(0), 0)], vec![(p(0), 5)], vec![]]);
        let v = s.check(&g, &Clique);
        assert!(v.contains(&DupViolation::Unplaced(n(2))));
    }

    #[test]
    fn detects_overlapping_copies() {
        let g = fan_out();
        let s = DupSchedule::new(&g, vec![vec![(p(0), 0)], vec![(p(0), 3)], vec![(p(0), 5)]]);
        let v = s.check(&g, &Clique);
        assert!(v.iter().any(|x| matches!(x, DupViolation::Overlap { .. })));
    }

    #[test]
    fn precedence_satisfied_by_the_nearest_copy() {
        let g = fan_out();
        // Child on p1 at start 5 is only legal because p1 has its own
        // copy of the source; the p0 copy alone would deliver at 105.
        let s = DupSchedule::new(
            &g,
            vec![vec![(p(0), 0), (p(1), 0)], vec![(p(0), 5)], vec![(p(1), 5)]],
        );
        assert!(s.check(&g, &Clique).is_empty());
        // Remove the p1 copy: now the p1 child is premature.
        let bad = DupSchedule::new(&g, vec![vec![(p(0), 0)], vec![(p(0), 5)], vec![(p(1), 5)]]);
        let v = bad.check(&g, &Clique);
        assert!(v
            .iter()
            .any(|x| matches!(x, DupViolation::Precedence { task, .. } if *task == n(2))));
    }

    #[test]
    fn earliest_delivery_picks_the_best_copy() {
        let g = fan_out();
        let s = DupSchedule::new(
            &g,
            vec![
                vec![(p(0), 0), (p(1), 20)],
                vec![(p(0), 5)],
                vec![(p(1), 120)],
            ],
        );
        // To p0: local copy finishes at 5.
        assert_eq!(s.earliest_delivery(&Clique, n(0), 100, p(0)), Some(5));
        // To p1: local (late) copy finishes at 25 beats 5 + 100.
        assert_eq!(s.earliest_delivery(&Clique, n(0), 100, p(1)), Some(25));
    }

    #[test]
    fn processor_bound_checked() {
        let g = fan_out();
        let s = DupSchedule::new(
            &g,
            vec![vec![(p(0), 0), (p(1), 0)], vec![(p(0), 5)], vec![(p(1), 5)]],
        );
        let v = s.check(&g, &BoundedClique::new(1));
        assert!(v.contains(&DupViolation::TooManyProcs { used: 2, bound: 1 }));
    }
}
