//! A discrete-event execution simulator.
//!
//! Given a schedule's *decisions* (processor assignment and per-
//! processor task order), the simulator actually executes the program:
//! processors pick up their next task as soon as its input messages
//! have arrived, messages travel for `comm_cost` time units, and
//! computation overlaps communication. It serves two purposes:
//!
//! 1. **cross-check** — with the nominal task weights, the simulated
//!    makespan must equal the analytic one from [`crate::evaluate`]
//!    (tested here and in the property suite);
//! 2. **robustness experiments** — actual task runtimes can be
//!    perturbed to ask how brittle each heuristic's schedule is when
//!    estimates are off (an extension the paper's §5 calls for when it
//!    asks for DAGs "generated from real serial programs").

use crate::machine::{Machine, ProcId};
use crate::schedule::Schedule;
use dagsched_dag::{Dag, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of simulating one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Observed start time per task.
    pub start: Vec<Weight>,
    /// Observed finish time per task.
    pub finish: Vec<Weight>,
    /// Observed makespan.
    pub makespan: Weight,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A predecessor message for `task` has arrived.
    Message { task: NodeId },
    /// The processor finished its running task.
    Finish { proc: ProcId },
}

/// Simulates the execution of `schedule`'s decisions on `machine`.
///
/// `actual_weights`, when given, replaces the nominal task weights
/// (same length as the graph; the *assignment and order* still come
/// from the schedule, as they would in a real run where the schedule
/// was fixed offline).
///
/// ```
/// use dagsched_sim::{event, Clustering, Clique};
/// let g = dagsched_gen::families::fork_join(3, 10, 5);
/// let s = Clustering::serial(g.num_nodes()).materialize(&g, &Clique).unwrap();
/// // With nominal weights the simulator agrees with the analytic times…
/// assert_eq!(event::simulate(&g, &Clique, &s, None).makespan, s.makespan());
/// // …and with doubled runtimes the frozen schedule takes twice as long.
/// let doubled: Vec<u64> = g.node_weights().iter().map(|w| w * 2).collect();
/// assert_eq!(event::simulate(&g, &Clique, &s, Some(&doubled)).makespan, 2 * s.makespan());
/// ```
pub fn simulate(
    g: &Dag,
    machine: &dyn Machine,
    schedule: &Schedule,
    actual_weights: Option<&[Weight]>,
) -> SimReport {
    let n = g.num_nodes();
    assert_eq!(schedule.num_tasks(), n, "schedule must cover the graph");
    if let Some(w) = actual_weights {
        assert_eq!(w.len(), n, "one actual weight per task");
    }
    let weight = |v: NodeId| actual_weights.map_or_else(|| g.node_weight(v), |w| w[v.index()]);

    let num_procs = schedule.num_procs();
    let mut next_idx = vec![0usize; num_procs];
    let mut busy = vec![false; num_procs];
    let mut running: Vec<Option<NodeId>> = vec![None; num_procs];
    let mut arrived = vec![0u32; n];
    let need: Vec<u32> = (0..n)
        .map(|v| g.in_degree(NodeId(v as u32)) as u32)
        .collect();
    let mut start = vec![0 as Weight; n];
    let mut finish = vec![0 as Weight; n];
    let mut done = vec![false; n];

    let mut queue: BinaryHeap<Reverse<(Weight, Event)>> = BinaryHeap::new();

    // Dispatch helper inlined as a closure is awkward with borrows;
    // use a small state machine in the loop instead.
    let mut completed = 0usize;

    // Seed: at time 0 every processor tries to start its first task.
    let mut dispatch_now: Vec<ProcId> = (0..num_procs as u32).map(ProcId).collect();
    let mut now: Weight = 0;

    loop {
        // Dispatch every processor that may be able to start a task at
        // the current time.
        while let Some(p) = dispatch_now.pop() {
            if busy[p.index()] {
                continue;
            }
            let Some(&t) = schedule.tasks_on(p).get(next_idx[p.index()]) else {
                continue;
            };
            if arrived[t.index()] < need[t.index()] {
                continue;
            }
            busy[p.index()] = true;
            running[p.index()] = Some(t);
            next_idx[p.index()] += 1;
            start[t.index()] = now;
            let fin = now + weight(t);
            queue.push(Reverse((fin, Event::Finish { proc: p })));
        }

        let Some(Reverse((time, ev))) = queue.pop() else {
            break;
        };
        debug_assert!(time >= now, "time must not run backwards");
        now = time;
        match ev {
            Event::Message { task } => {
                arrived[task.index()] += 1;
                dispatch_now.push(schedule.proc_of(task));
            }
            Event::Finish { proc } => {
                let t = running[proc.index()].take().expect("a task was running");
                busy[proc.index()] = false;
                finish[t.index()] = now;
                done[t.index()] = true;
                completed += 1;
                for (s, w) in g.succs(t) {
                    let arrive = now + machine.comm_cost(proc, schedule.proc_of(s), w);
                    queue.push(Reverse((arrive, Event::Message { task: s })));
                }
                dispatch_now.push(proc);
            }
        }
    }

    assert_eq!(
        completed, n,
        "simulation stalled: the schedule's orders deadlock against the DAG"
    );
    let makespan = finish.iter().copied().max().unwrap_or(0);
    SimReport {
        start,
        finish,
        makespan,
    }
}

/// Simulates the schedule under **send-port contention**, relaxing
/// the paper's assumption 4 (which lets a task multicast all its
/// messages simultaneously): here each processor owns a single send
/// port, outgoing messages queue on it in (finish time, successor
/// priority) order, and each occupies the port for its full
/// communication latency. Local (same-processor) hand-offs stay free.
///
/// The *decisions* (assignment + per-processor order) still come from
/// `schedule`; only the realized times change, so this measures how
/// much each heuristic's schedule depends on the free-multicast
/// idealization.
pub fn simulate_with_send_contention(
    g: &Dag,
    machine: &dyn Machine,
    schedule: &Schedule,
    actual_weights: Option<&[Weight]>,
) -> SimReport {
    let n = g.num_nodes();
    assert_eq!(schedule.num_tasks(), n, "schedule must cover the graph");
    if let Some(w) = actual_weights {
        assert_eq!(w.len(), n, "one actual weight per task");
    }
    let weight = |v: NodeId| actual_weights.map_or_else(|| g.node_weight(v), |w| w[v.index()]);

    let num_procs = schedule.num_procs();
    let mut next_idx = vec![0usize; num_procs];
    let mut busy = vec![false; num_procs];
    let mut running: Vec<Option<NodeId>> = vec![None; num_procs];
    let mut port_free = vec![0 as Weight; num_procs];
    let mut arrived = vec![0u32; n];
    let need: Vec<u32> = (0..n)
        .map(|v| g.in_degree(NodeId(v as u32)) as u32)
        .collect();
    let mut start = vec![0 as Weight; n];
    let mut finish = vec![0 as Weight; n];
    let mut completed = 0usize;

    let mut queue: BinaryHeap<Reverse<(Weight, Event)>> = BinaryHeap::new();
    let mut dispatch_now: Vec<ProcId> = (0..num_procs as u32).map(ProcId).collect();
    let mut now: Weight = 0;

    loop {
        while let Some(p) = dispatch_now.pop() {
            if busy[p.index()] {
                continue;
            }
            let Some(&t) = schedule.tasks_on(p).get(next_idx[p.index()]) else {
                continue;
            };
            if arrived[t.index()] < need[t.index()] {
                continue;
            }
            busy[p.index()] = true;
            running[p.index()] = Some(t);
            next_idx[p.index()] += 1;
            start[t.index()] = now;
            queue.push(Reverse((now + weight(t), Event::Finish { proc: p })));
        }

        let Some(Reverse((time, ev))) = queue.pop() else {
            break;
        };
        now = time;
        match ev {
            Event::Message { task } => {
                arrived[task.index()] += 1;
                dispatch_now.push(schedule.proc_of(task));
            }
            Event::Finish { proc } => {
                let t = running[proc.index()].take().expect("a task was running");
                busy[proc.index()] = false;
                finish[t.index()] = now;
                completed += 1;
                // Serialize outgoing remote messages on the send port,
                // most urgent successor (earliest scheduled start)
                // first; local deliveries bypass the port.
                let mut sends: Vec<(Weight, NodeId, Weight)> = Vec::new();
                for (s, w) in g.succs(t) {
                    let dest = schedule.proc_of(s);
                    let latency = machine.comm_cost(proc, dest, w);
                    if latency == 0 {
                        queue.push(Reverse((now, Event::Message { task: s })));
                    } else {
                        sends.push((schedule.start_of(s), s, latency));
                    }
                }
                sends.sort_unstable();
                let mut port = port_free[proc.index()].max(now);
                for (_, s, latency) in sends {
                    port += latency;
                    queue.push(Reverse((port, Event::Message { task: s })));
                }
                port_free[proc.index()] = port;
                dispatch_now.push(proc);
            }
        }
    }

    assert_eq!(
        completed, n,
        "simulation stalled: orders deadlock against the DAG"
    );
    let makespan = finish.iter().copied().max().unwrap_or(0);
    SimReport {
        start,
        finish,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::machine::Clique;
    use dagsched_dag::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        for w in [10u64, 20, 30, 40, 50] {
            b.add_node(w);
        }
        for (s, d, c) in [(0u32, 1, 4u64), (0, 2, 3), (2, 3, 5), (1, 4, 4), (3, 4, 6)] {
            b.add_edge(n(s), n(d), c).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_analytic_times_serial() {
        let g = sample();
        let s = Clustering::serial(5).materialize(&g, &Clique).unwrap();
        let r = simulate(&g, &Clique, &s, None);
        assert_eq!(r.makespan, s.makespan());
        for v in g.nodes() {
            assert_eq!(r.start[v.index()], s.start_of(v));
            assert_eq!(r.finish[v.index()], s.finish_of(v));
        }
    }

    #[test]
    fn matches_analytic_times_parallel() {
        let g = sample();
        for clustering in [
            Clustering::singletons(5),
            Clustering::from_assignment(&[0, 1, 0, 0, 0]),
            Clustering::from_assignment(&[0, 1, 2, 2, 1]),
        ] {
            let s = clustering.materialize(&g, &Clique).unwrap();
            let r = simulate(&g, &Clique, &s, None);
            assert_eq!(r.makespan, s.makespan());
            for v in g.nodes() {
                assert_eq!(r.start[v.index()], s.start_of(v), "start of {v}");
            }
        }
    }

    #[test]
    fn perturbed_weights_shift_the_makespan() {
        let g = sample();
        let s = Clustering::serial(5).materialize(&g, &Clique).unwrap();
        // Everything takes twice as long.
        let doubled: Vec<u64> = g.node_weights().iter().map(|w| w * 2).collect();
        let r = simulate(&g, &Clique, &s, Some(&doubled));
        assert_eq!(r.makespan, 2 * g.serial_time());
        // A zero-cost run finishes immediately.
        let zeros = vec![0u64; 5];
        let r = simulate(&g, &Clique, &s, Some(&zeros));
        assert_eq!(r.makespan, 0);
    }

    #[test]
    fn perturbation_respects_fixed_decisions() {
        // Slowing down an off-critical-path task can stall a
        // cross-processor successor — the simulator must show that.
        let g = sample();
        let s = Clustering::from_assignment(&[0, 1, 0, 0, 0])
            .materialize(&g, &Clique)
            .unwrap();
        let mut w: Vec<u64> = g.node_weights().to_vec();
        w[1] = 1000; // node 1 feeds node 4 across processors
        let r = simulate(&g, &Clique, &s, Some(&w));
        // node 4 cannot start before node 1 finishes + comm 4.
        assert!(r.start[4] >= r.finish[1] + 4);
        assert!(r.makespan > s.makespan());
    }

    #[test]
    fn contention_matches_ideal_without_multicasts() {
        // A chain has one remote send at a time: contention changes
        // nothing.
        let g = {
            let mut b = DagBuilder::new();
            let v: Vec<_> = (0..4).map(|_| b.add_node(10)).collect();
            for w in v.windows(2) {
                b.add_edge(w[0], w[1], 7).unwrap();
            }
            b.build().unwrap()
        };
        let s = Clustering::singletons(4).materialize(&g, &Clique).unwrap();
        let ideal = simulate(&g, &Clique, &s, None);
        let contended = simulate_with_send_contention(&g, &Clique, &s, None);
        assert_eq!(ideal.makespan, contended.makespan);
    }

    #[test]
    fn contention_slows_multicasts() {
        // One source multicasting to 3 remote children: under
        // assumption 4 all messages travel in parallel (arrive at
        // 10 + 50); with a single send port they serialize (arrive at
        // 60, 110, 160).
        let mut b = DagBuilder::new();
        let src = b.add_node(10);
        let kids: Vec<_> = (0..3).map(|_| b.add_node(5)).collect();
        for &k in &kids {
            b.add_edge(src, k, 50).unwrap();
        }
        let g = b.build().unwrap();
        let s = Clustering::singletons(4).materialize(&g, &Clique).unwrap();
        let ideal = simulate(&g, &Clique, &s, None);
        assert_eq!(ideal.makespan, 65);
        let contended = simulate_with_send_contention(&g, &Clique, &s, None);
        assert_eq!(contended.makespan, 10 + 3 * 50 + 5);
        // Local hand-offs stay free: all on one processor is
        // contention-immune.
        let serial = Clustering::serial(4).materialize(&g, &Clique).unwrap();
        let c = simulate_with_send_contention(&g, &Clique, &serial, None);
        assert_eq!(c.makespan, serial.makespan());
    }

    #[test]
    fn contention_never_beats_the_ideal_model() {
        let g = sample();
        for clustering in [
            Clustering::singletons(5),
            Clustering::from_assignment(&[0, 1, 0, 0, 0]),
            Clustering::from_assignment(&[0, 1, 2, 2, 1]),
        ] {
            let s = clustering.materialize(&g, &Clique).unwrap();
            let ideal = simulate(&g, &Clique, &s, None);
            let contended = simulate_with_send_contention(&g, &Clique, &s, None);
            assert!(contended.makespan >= ideal.makespan);
        }
    }

    #[test]
    fn empty_schedule_simulates() {
        let g = DagBuilder::new().build().unwrap();
        let s = Schedule::new(&g, vec![]);
        let r = simulate(&g, &Clique, &s, None);
        assert_eq!(r.makespan, 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlocked_orders_panic() {
        // Hand-build a schedule whose per-processor order contradicts
        // the DAG: successor first on the same processor.
        let mut b = DagBuilder::new();
        let a = b.add_node(5);
        let c = b.add_node(5);
        b.add_edge(a, c, 1).unwrap();
        let g = b.build().unwrap();
        // Same processor, successor placed earlier.
        let s = Schedule::new(&g, vec![(ProcId(0), 10), (ProcId(0), 0)]);
        simulate(&g, &Clique, &s, None);
    }
}
