//! # dagsched-sim — machine model, schedules, validation and metrics
//!
//! Everything needed to *evaluate* a scheduling heuristic's output
//! under the execution model of Khan, McCreary & Jones (§2):
//!
//! 1. same-processor communication is free; cross-processor
//!    communication costs the edge weight (uniform [`machine::Clique`];
//!    hop-cost topologies for MH's general form are also provided);
//! 2. an arbitrary number of homogeneous processors;
//! 3. no task duplication;
//! 4. communication overlaps computation; multicasts do not serialize
//!    on the sender;
//! 5. the objective is the schedule makespan (*parallel time*).
//!
//! Modules:
//!
//! * [`machine`] — communication cost models;
//! * [`schedule`] — the [`schedule::Schedule`] type;
//! * [`dup`] — schedules with task duplication (the model extension
//!   behind the paper's references \[2, 12, 16\]);
//! * [`analysis`] — where-did-the-time-go schedule introspection;
//! * [`evaluate`] — computes task start times from an assignment and
//!   per-processor execution orders (the shared back end of every
//!   clustering heuristic);
//! * [`cluster`] — task clusterings and their materialization onto
//!   processors;
//! * [`validate`] — independent checking of precedence, communication
//!   and processor-overlap constraints;
//! * [`event`] — a discrete-event simulator that executes a schedule
//!   (with optional runtime perturbation) and cross-checks the
//!   analytic makespan;
//! * [`metrics`] — speedup / efficiency / normalized relative
//!   parallel time;
//! * [`gantt`] — plain-text and SVG Gantt charts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cluster;
pub mod dup;
pub mod evaluate;
pub mod event;
pub mod gantt;
pub mod machine;
pub mod metrics;
pub mod schedule;
pub mod validate;

pub use cluster::Clustering;
pub use machine::{BoundedClique, Clique, Hypercube, Machine, Mesh2D, ProcId, Ring};
pub use schedule::Schedule;
