//! Timing engine: turns *decisions* (an assignment of tasks to
//! processors plus per-processor execution orders) into a concrete
//! [`Schedule`] with earliest-possible start times under the
//! communication model.
//!
//! Every clustering heuristic (CLANS, DSC, linear clustering) and the
//! comm-oblivious HU reuse this back end: they decide *where* and in
//! *what order*, the engine derives *when*.

use crate::machine::{Machine, ProcId};
use crate::schedule::Schedule;
use dagsched_dag::{Dag, NodeId, Weight};
use std::fmt;

/// Errors from the timing engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The per-processor orders and the DAG precedences contradict
    /// each other (e.g. a processor is told to run a task before one
    /// of its predecessors that sits later on the same processor).
    Deadlock {
        /// A task that could never become ready.
        task: NodeId,
    },
    /// The inputs are malformed (lengths, duplicate tasks, tasks
    /// ordered on the wrong processor, processor count exceeding the
    /// machine's bound).
    BadInput(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Deadlock { task } => {
                write!(f, "execution order deadlocks: task {task} can never start")
            }
            EvalError::BadInput(msg) => write!(f, "bad scheduling input: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Computes the earliest-start schedule for a fixed `assignment`
/// (per-task processor) and fixed per-processor execution `orders`.
///
/// A task starts at the maximum of (a) the finish of the previous task
/// on its processor and (b) the *data-ready time*
/// `max over preds (finish(pred) + comm_cost)` — communication
/// overlaps computation and multicasts do not serialize (assumption 4
/// of the paper).
/// Generic over the machine so monomorphized callers avoid dynamic
/// dispatch; `&dyn Machine` still works through the `?Sized` bound.
pub fn timed_schedule<M: Machine + ?Sized>(
    g: &Dag,
    machine: &M,
    assignment: &[ProcId],
    orders: &[Vec<NodeId>],
) -> Result<Schedule, EvalError> {
    let n = g.num_nodes();
    if assignment.len() != n {
        return Err(EvalError::BadInput(format!(
            "assignment covers {} of {} tasks",
            assignment.len(),
            n
        )));
    }
    if let Some(maxp) = machine.max_procs() {
        if orders.len() > maxp {
            return Err(EvalError::BadInput(format!(
                "{} processors exceed the machine bound of {maxp}",
                orders.len()
            )));
        }
    }
    // Each task appears exactly once, on the processor it is assigned to.
    let mut seen = vec![false; n];
    for (p, tasks) in orders.iter().enumerate() {
        for &t in tasks {
            if t.index() >= n {
                return Err(EvalError::BadInput(format!("unknown task {t}")));
            }
            if seen[t.index()] {
                return Err(EvalError::BadInput(format!("task {t} ordered twice")));
            }
            seen[t.index()] = true;
            if assignment[t.index()].index() != p {
                return Err(EvalError::BadInput(format!(
                    "task {t} ordered on processor {p} but assigned to {}",
                    assignment[t.index()]
                )));
            }
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(EvalError::BadInput(format!(
            "task n{missing} missing from the execution orders"
        )));
    }

    let mut finish: Vec<Option<Weight>> = vec![None; n];
    let mut start: Vec<Weight> = vec![0; n];
    // Processors become available only after the machine's startup
    // cost (0 under the paper's model).
    let mut proc_avail: Vec<Weight> = vec![machine.startup_cost(); orders.len()];
    let mut next_idx: Vec<usize> = vec![0; orders.len()];
    let mut pending_preds: Vec<u32> = (0..n)
        .map(|v| g.in_degree(NodeId(v as u32)) as u32)
        .collect();

    let mut remaining = n;
    loop {
        let mut progressed = false;
        for p in 0..orders.len() {
            // A processor may run several consecutive ready tasks per
            // sweep.
            while let Some(&t) = orders[p].get(next_idx[p]) {
                if pending_preds[t.index()] > 0 {
                    break;
                }
                let data_ready = g
                    .preds(t)
                    .map(|(pr, w)| {
                        finish[pr.index()].expect("pred finished")
                            + machine.comm_cost(assignment[pr.index()], ProcId(p as u32), w)
                    })
                    .max()
                    .unwrap_or(0);
                let st = data_ready.max(proc_avail[p]);
                start[t.index()] = st;
                let fin = st + g.node_weight(t);
                finish[t.index()] = Some(fin);
                proc_avail[p] = fin;
                next_idx[p] += 1;
                remaining -= 1;
                progressed = true;
                for (s, _) in g.succs(t) {
                    pending_preds[s.index()] -= 1;
                }
            }
        }
        if remaining == 0 {
            break;
        }
        if !progressed {
            let stuck = (0..orders.len())
                .find_map(|p| orders[p].get(next_idx[p]).copied())
                .expect("some processor is stuck");
            return Err(EvalError::Deadlock { task: stuck });
        }
    }

    let raw: Vec<(ProcId, Weight)> = (0..n).map(|v| (assignment[v], start[v])).collect();
    Ok(Schedule::new(g, raw))
}

/// Convenience wrapper: derives deadlock-free per-processor orders
/// from a single global priority (higher runs earlier among ready
/// tasks, via a priority topological order) and calls
/// [`timed_schedule`].
pub fn timed_schedule_by_priority<M: Machine + ?Sized>(
    g: &Dag,
    machine: &M,
    assignment: &[ProcId],
    priority: &[Weight],
) -> Result<Schedule, EvalError> {
    let global = dagsched_dag::topo::priority_topo_order(g, priority);
    let num_procs = assignment.iter().map(|p| p.index() + 1).max().unwrap_or(0);
    let mut orders: Vec<Vec<NodeId>> = vec![Vec::new(); num_procs];
    for &v in &global {
        orders[assignment[v.index()].index()].push(v);
    }
    timed_schedule(g, machine, assignment, &orders)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{BoundedClique, Clique};
    use dagsched_dag::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    /// 0 -(5)-> 1, 0 -(2)-> 2; weights 10, 20, 30.
    fn fork() -> Dag {
        let mut b = DagBuilder::new();
        for w in [10u64, 20, 30] {
            b.add_node(w);
        }
        b.add_edge(n(0), n(1), 5).unwrap();
        b.add_edge(n(0), n(2), 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn same_processor_is_comm_free() {
        let g = fork();
        let s =
            timed_schedule(&g, &Clique, &[p(0), p(0), p(0)], &[vec![n(0), n(1), n(2)]]).unwrap();
        assert_eq!(s.start_of(n(1)), 10);
        assert_eq!(s.start_of(n(2)), 30);
        assert_eq!(s.makespan(), 60);
    }

    #[test]
    fn cross_processor_pays_edge_weight() {
        let g = fork();
        let s = timed_schedule(
            &g,
            &Clique,
            &[p(0), p(0), p(1)],
            &[vec![n(0), n(1)], vec![n(2)]],
        )
        .unwrap();
        assert_eq!(s.start_of(n(1)), 10); // local
        assert_eq!(s.start_of(n(2)), 12); // 10 + comm 2
        assert_eq!(s.makespan(), 42);
    }

    #[test]
    fn processor_serializes_its_tasks() {
        let g = fork();
        // Run 2 before 1 on the same processor as 0.
        let s =
            timed_schedule(&g, &Clique, &[p(0), p(0), p(0)], &[vec![n(0), n(2), n(1)]]).unwrap();
        assert_eq!(s.start_of(n(2)), 10);
        assert_eq!(s.start_of(n(1)), 40);
        assert_eq!(s.makespan(), 60);
    }

    #[test]
    fn data_ready_and_proc_avail_interact() {
        // Two chains converging on one processor: 0->2 (comm 100),
        // 1 local. start(2) = max(arrival, proc free).
        let mut b = DagBuilder::new();
        for w in [10u64, 50, 5] {
            b.add_node(w);
        }
        b.add_edge(n(0), n(2), 100).unwrap();
        let g = b.build().unwrap();
        let s = timed_schedule(
            &g,
            &Clique,
            &[p(0), p(1), p(1)],
            &[vec![n(0)], vec![n(1), n(2)]],
        )
        .unwrap();
        // arrival of 0's data at P1: 10 + 100 = 110 > finish(1) = 50.
        assert_eq!(s.start_of(n(2)), 110);
    }

    #[test]
    fn deadlock_is_reported() {
        // Processor order contradicts precedence: run 1 before 0 on
        // the same processor.
        let g = fork();
        let e = timed_schedule(&g, &Clique, &[p(0), p(0), p(0)], &[vec![n(1), n(0), n(2)]])
            .unwrap_err();
        assert_eq!(e, EvalError::Deadlock { task: n(1) });
    }

    #[test]
    fn cross_processor_wait_is_not_deadlock() {
        // P0: [0], P1: [1, 2] where 2 depends on 0 — P1 waits, fine.
        let g = fork();
        let s = timed_schedule(
            &g,
            &Clique,
            &[p(0), p(1), p(1)],
            &[vec![n(0)], vec![n(2), n(1)]],
        )
        .unwrap();
        assert_eq!(s.start_of(n(2)), 12);
        assert_eq!(s.start_of(n(1)), 42);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let g = fork();
        // Task ordered twice.
        assert!(matches!(
            timed_schedule(&g, &Clique, &[p(0), p(0), p(0)], &[vec![n(0), n(1), n(1)]]),
            Err(EvalError::BadInput(_))
        ));
        // Task missing.
        assert!(matches!(
            timed_schedule(&g, &Clique, &[p(0), p(0), p(0)], &[vec![n(0), n(1)]]),
            Err(EvalError::BadInput(_))
        ));
        // Ordered on the wrong processor.
        assert!(matches!(
            timed_schedule(
                &g,
                &Clique,
                &[p(0), p(0), p(1)],
                &[vec![n(0), n(1), n(2)], vec![]]
            ),
            Err(EvalError::BadInput(_))
        ));
        // Assignment length mismatch.
        assert!(matches!(
            timed_schedule(&g, &Clique, &[p(0)], &[vec![n(0), n(1), n(2)]]),
            Err(EvalError::BadInput(_))
        ));
        // Too many processors for a bounded machine.
        assert!(matches!(
            timed_schedule(
                &g,
                &BoundedClique::new(1),
                &[p(0), p(1), p(0)],
                &[vec![n(0), n(2)], vec![n(1)]]
            ),
            Err(EvalError::BadInput(_))
        ));
    }

    #[test]
    fn priority_wrapper_matches_manual_orders() {
        let g = fork();
        let assignment = [p(0), p(1), p(0)];
        // Priorities: 2 before 1 (both ready after 0).
        let s = timed_schedule_by_priority(&g, &Clique, &assignment, &[9, 1, 5]).unwrap();
        let manual =
            timed_schedule(&g, &Clique, &assignment, &[vec![n(0), n(2)], vec![n(1)]]).unwrap();
        assert_eq!(s, manual);
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let g = DagBuilder::new().build().unwrap();
        let s = timed_schedule(&g, &Clique, &[], &[]).unwrap();
        assert_eq!(s.makespan(), 0);
    }
}
