//! Communication cost models.
//!
//! The paper's model (assumption 1 of §2) is the fully connected
//! [`Clique`]: any two distinct processors communicate at exactly the
//! edge weight. MH's original formulation also *maps* tasks onto
//! concrete interconnection topologies; the hop-cost models here
//! ([`Ring`], [`Mesh2D`], [`Hypercube`]) let the reproduction exercise
//! that machinery in ablations while the paper experiments stay on the
//! clique.

use dagsched_dag::model::LevelCost;
use dagsched_dag::Weight;

/// A processor index. Processors are homogeneous and densely numbered
/// from zero within a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The processor index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A communication cost model over homogeneous processors.
///
/// # Contract
/// `comm_cost(p, p, w) == 0` for every processor `p` (same-processor
/// communication is free, assumption 1 of the paper), and
/// `comm_cost(_, _, 0) == 0`.
///
/// `Send + Sync` is a supertrait bound so machines can be handed to
/// watchdog worker threads; every model in this module is a small
/// `Copy` struct, so the bound costs nothing.
pub trait Machine: Send + Sync {
    /// Cost of moving a message of edge-weight `w` from processor
    /// `from` to processor `to`.
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight;

    /// Upper bound on usable processors; `None` means unbounded (the
    /// paper's "arbitrary number of homogeneous processors").
    fn max_procs(&self) -> Option<usize> {
        None
    }

    /// Time before which no processor can start its first task
    /// (boot/offload latency). The paper's model — and every machine
    /// in this module — has none; link-aware models may override.
    fn startup_cost(&self) -> Weight {
        0
    }

    /// The machine-global edge pricing the level computations should
    /// use for priorities under this machine (see
    /// [`dagsched_dag::model::LevelCost`]). Uniform for every machine
    /// in this module; non-uniform models override with their
    /// representative affine pricing.
    fn level_cost(&self) -> LevelCost {
        LevelCost::Uniform
    }

    /// Short human-readable name.
    fn name(&self) -> &'static str;
}

/// The paper's model: fully connected, uniform — cross-processor cost
/// is exactly the edge weight; unbounded processor pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct Clique;

impl Machine for Clique {
    #[inline]
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to {
            0
        } else {
            w
        }
    }

    fn name(&self) -> &'static str {
        "clique"
    }
}

/// A clique with a bounded processor pool — the classic "P identical
/// machines" setting, used by the bounded-processor extension
/// schedulers.
#[derive(Debug, Clone, Copy)]
pub struct BoundedClique {
    procs: usize,
}

impl BoundedClique {
    /// A clique of exactly `procs` processors (`procs ≥ 1`).
    pub fn new(procs: usize) -> Self {
        assert!(procs >= 1, "a machine needs at least one processor");
        Self { procs }
    }
}

impl Machine for BoundedClique {
    #[inline]
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to {
            0
        } else {
            w
        }
    }

    fn max_procs(&self) -> Option<usize> {
        Some(self.procs)
    }

    fn name(&self) -> &'static str {
        "bounded-clique"
    }
}

/// A bidirectional ring of `size` processors: cost is the edge weight
/// times the hop distance.
#[derive(Debug, Clone, Copy)]
pub struct Ring {
    size: usize,
}

impl Ring {
    /// A ring of `size ≥ 1` processors.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1);
        Self { size }
    }

    fn hops(&self, a: usize, b: usize) -> u64 {
        let d = a.abs_diff(b) % self.size;
        d.min(self.size - d) as u64
    }
}

impl Machine for Ring {
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to {
            0
        } else {
            w * self.hops(from.index(), to.index()).max(1)
        }
    }

    fn max_procs(&self) -> Option<usize> {
        Some(self.size)
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

/// A `rows × cols` 2-D mesh: cost is the edge weight times the
/// Manhattan hop distance.
#[derive(Debug, Clone, Copy)]
pub struct Mesh2D {
    rows: usize,
    cols: usize,
}

impl Mesh2D {
    /// A mesh with `rows × cols ≥ 1` processors.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        Self { rows, cols }
    }

    fn coords(&self, p: usize) -> (usize, usize) {
        (p / self.cols, p % self.cols)
    }
}

impl Machine for Mesh2D {
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to {
            return 0;
        }
        let (r1, c1) = self.coords(from.index());
        let (r2, c2) = self.coords(to.index());
        let hops = (r1.abs_diff(r2) + c1.abs_diff(c2)) as u64;
        w * hops.max(1)
    }

    fn max_procs(&self) -> Option<usize> {
        Some(self.rows * self.cols)
    }

    fn name(&self) -> &'static str {
        "mesh2d"
    }
}

/// A hypercube of dimension `dims` (`2^dims` processors): cost is the
/// edge weight times the Hamming distance of the processor labels.
#[derive(Debug, Clone, Copy)]
pub struct Hypercube {
    dims: u32,
}

impl Hypercube {
    /// A hypercube with `2^dims` processors (`dims ≤ 20` to stay sane).
    pub fn new(dims: u32) -> Self {
        assert!(dims <= 20);
        Self { dims }
    }
}

impl Machine for Hypercube {
    fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
        if from == to {
            return 0;
        }
        let hops = (from.0 ^ to.0).count_ones() as u64;
        w * hops.max(1)
    }

    fn max_procs(&self) -> Option<usize> {
        Some(1usize << self.dims)
    }

    fn name(&self) -> &'static str {
        "hypercube"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn clique_costs() {
        let m = Clique;
        assert_eq!(m.comm_cost(p(0), p(0), 9), 0);
        assert_eq!(m.comm_cost(p(0), p(7), 9), 9);
        assert_eq!(m.comm_cost(p(3), p(1), 9), 9);
        assert_eq!(m.max_procs(), None);
    }

    #[test]
    fn bounded_clique() {
        let m = BoundedClique::new(4);
        assert_eq!(m.max_procs(), Some(4));
        assert_eq!(m.comm_cost(p(1), p(2), 5), 5);
        assert_eq!(m.comm_cost(p(2), p(2), 5), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn bounded_clique_rejects_zero() {
        BoundedClique::new(0);
    }

    #[test]
    fn ring_hop_distance_wraps() {
        let m = Ring::new(6);
        assert_eq!(m.comm_cost(p(0), p(1), 2), 2); // 1 hop
        assert_eq!(m.comm_cost(p(0), p(3), 2), 6); // 3 hops
        assert_eq!(m.comm_cost(p(0), p(5), 2), 2); // wraps: 1 hop
        assert_eq!(m.comm_cost(p(4), p(4), 2), 0);
        assert_eq!(m.max_procs(), Some(6));
    }

    #[test]
    fn mesh_manhattan_distance() {
        let m = Mesh2D::new(3, 4); // procs 0..11
        assert_eq!(m.comm_cost(p(0), p(1), 3), 3); // adjacent cols
        assert_eq!(m.comm_cost(p(0), p(4), 3), 3); // adjacent rows
        assert_eq!(m.comm_cost(p(0), p(11), 3), 3 * 5); // (0,0)->(2,3)
        assert_eq!(m.comm_cost(p(5), p(5), 3), 0);
        assert_eq!(m.max_procs(), Some(12));
    }

    #[test]
    fn hypercube_hamming_distance() {
        let m = Hypercube::new(3);
        assert_eq!(m.max_procs(), Some(8));
        assert_eq!(m.comm_cost(p(0), p(7), 2), 6); // 3 bits differ
        assert_eq!(m.comm_cost(p(5), p(4), 2), 2); // 1 bit
        assert_eq!(m.comm_cost(p(6), p(6), 2), 0);
    }

    #[test]
    fn default_startup_and_level_cost_are_the_paper_model() {
        let machines: Vec<Box<dyn Machine>> = vec![
            Box::new(Clique),
            Box::new(BoundedClique::new(3)),
            Box::new(Ring::new(5)),
        ];
        for m in &machines {
            assert_eq!(m.startup_cost(), 0, "{}", m.name());
            assert!(m.level_cost().is_uniform(), "{}", m.name());
        }
    }

    #[test]
    fn zero_weight_messages_are_free_everywhere() {
        let machines: Vec<Box<dyn Machine>> = vec![
            Box::new(Clique),
            Box::new(BoundedClique::new(3)),
            Box::new(Ring::new(5)),
            Box::new(Mesh2D::new(2, 2)),
            Box::new(Hypercube::new(2)),
        ];
        for m in &machines {
            assert_eq!(m.comm_cost(p(0), p(1), 0), 0, "{}", m.name());
        }
    }
}
