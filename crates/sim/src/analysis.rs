//! Schedule introspection: where did the time go?
//!
//! [`analyze`] decomposes a schedule into the quantities that explain
//! the paper's tables — how much communication was zeroed by
//! co-location, how much is actually paid, and how busy the
//! processors are. The `robustness` example and the `dagsched` CLI
//! surface these numbers.

use crate::machine::Machine;
use crate::schedule::Schedule;
use dagsched_dag::{Dag, Weight};

/// Aggregate facts about one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The makespan.
    pub makespan: Weight,
    /// Processors used.
    pub procs: usize,
    /// Total busy time (sum of task weights — invariant across
    /// schedules of one graph).
    pub busy: Weight,
    /// Total idle processor-time inside the schedule window
    /// (`makespan × procs − busy`).
    pub idle: Weight,
    /// Edges whose endpoints share a processor (zeroed communication).
    pub local_edges: usize,
    /// Edges that cross processors.
    pub cross_edges: usize,
    /// Communication volume actually paid (sum of `comm_cost` over
    /// cross edges).
    pub comm_paid: Weight,
    /// Communication volume zeroed by co-location (sum of edge
    /// weights of local edges).
    pub comm_zeroed: Weight,
    /// Mean processor utilization (`busy / (makespan × procs)`; 0 for
    /// empty schedules).
    pub utilization: f64,
    /// Per-processor busy time.
    pub busy_per_proc: Vec<Weight>,
    /// Total slack across tasks: `start(v) − earliest possible
    /// arrival(v)` summed — time tasks sat ready but waiting for their
    /// processor.
    pub total_wait: Weight,
}

/// Computes the [`Analysis`] of `s`.
pub fn analyze(g: &Dag, machine: &dyn Machine, s: &Schedule) -> Analysis {
    let procs = s.num_procs();
    let makespan = s.makespan();
    let busy: Weight = g.node_weights().iter().sum();
    let mut busy_per_proc = vec![0; procs];
    for v in g.nodes() {
        busy_per_proc[s.proc_of(v).index()] += g.node_weight(v);
    }
    let (mut local_edges, mut cross_edges) = (0usize, 0usize);
    let (mut comm_paid, mut comm_zeroed) = (0 as Weight, 0 as Weight);
    for e in g.edges() {
        let (ps, pd) = (s.proc_of(e.src), s.proc_of(e.dst));
        if ps == pd {
            local_edges += 1;
            comm_zeroed += e.weight;
        } else {
            cross_edges += 1;
            comm_paid += machine.comm_cost(ps, pd, e.weight);
        }
    }
    let mut total_wait = 0;
    for v in g.nodes() {
        let arrival = g
            .preds(v)
            .map(|(p, w)| s.finish_of(p) + machine.comm_cost(s.proc_of(p), s.proc_of(v), w))
            .max()
            .unwrap_or(0);
        total_wait += s.start_of(v).saturating_sub(arrival);
    }
    let utilization = if makespan == 0 || procs == 0 {
        0.0
    } else {
        busy as f64 / (makespan as f64 * procs as f64)
    };
    Analysis {
        makespan,
        procs,
        busy,
        idle: (makespan * procs as Weight).saturating_sub(busy),
        local_edges,
        cross_edges,
        comm_paid,
        comm_zeroed,
        utilization,
        busy_per_proc,
        total_wait,
    }
}

impl std::fmt::Display for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "makespan {} on {} proc(s); busy {}, idle {} (utilization {:.1}%)",
            self.makespan,
            self.procs,
            self.busy,
            self.idle,
            self.utilization * 100.0
        )?;
        write!(
            f,
            "edges: {} local (comm {} zeroed), {} cross (comm {} paid); total wait {}",
            self.local_edges, self.comm_zeroed, self.cross_edges, self.comm_paid, self.total_wait
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::machine::Clique;
    use dagsched_dag::DagBuilder;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(20);
        let d = b.add_node(30);
        b.add_edge(a, c, 5).unwrap();
        b.add_edge(a, d, 7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn serial_schedule_zeroes_everything() {
        let g = sample();
        let s = Clustering::serial(3).materialize(&g, &Clique).unwrap();
        let a = analyze(&g, &Clique, &s);
        assert_eq!(a.makespan, 60);
        assert_eq!(a.procs, 1);
        assert_eq!(a.local_edges, 2);
        assert_eq!(a.cross_edges, 0);
        assert_eq!(a.comm_zeroed, 12);
        assert_eq!(a.comm_paid, 0);
        assert_eq!(a.idle, 0);
        assert!((a.utilization - 1.0).abs() < 1e-12);
        assert_eq!(a.busy_per_proc, vec![60]);
    }

    #[test]
    fn parallel_schedule_pays_comm_and_idles() {
        let g = sample();
        let s = Clustering::from_assignment(&[0, 0, 1])
            .materialize(&g, &Clique)
            .unwrap();
        let a = analyze(&g, &Clique, &s);
        // Node 2 starts at 10 + 7 = 17 on p1, ends 47.
        assert_eq!(a.makespan, 47);
        assert_eq!(a.cross_edges, 1);
        assert_eq!(a.comm_paid, 7);
        assert_eq!(a.comm_zeroed, 5);
        assert_eq!(a.busy, 60);
        assert_eq!(a.idle, 47 * 2 - 60);
        assert_eq!(a.busy_per_proc, vec![30, 30]);
        // No task waited beyond its data arrival here.
        assert_eq!(a.total_wait, 0);
    }

    #[test]
    fn wait_time_counts_processor_contention() {
        // Two independent tasks forced onto one processor: the second
        // waits for the processor, not for data.
        let mut b = DagBuilder::new();
        b.add_node(10);
        b.add_node(10);
        let g = b.build().unwrap();
        let s = Clustering::serial(2).materialize(&g, &Clique).unwrap();
        let a = analyze(&g, &Clique, &s);
        assert_eq!(a.total_wait, 10);
    }

    #[test]
    fn display_renders() {
        let g = sample();
        let s = Clustering::serial(3).materialize(&g, &Clique).unwrap();
        let text = analyze(&g, &Clique, &s).to_string();
        assert!(text.contains("makespan 60"));
        assert!(text.contains("zeroed"));
    }

    #[test]
    fn empty_schedule() {
        let g = DagBuilder::new().build().unwrap();
        let s = crate::schedule::Schedule::new(&g, vec![]);
        let a = analyze(&g, &Clique, &s);
        assert_eq!(a.utilization, 0.0);
        assert_eq!(a.idle, 0);
    }
}
