//! Independent schedule validation.
//!
//! A schedule is *valid* under the paper's model when
//!
//! 1. no processor runs two tasks at once, and
//! 2. every task starts no earlier than `finish(pred) + comm` for
//!    each of its predecessors (comm as priced by the machine).
//!
//! This module re-derives both conditions from scratch (it shares no
//! code with the timing engine) so that tests can use it as an oracle
//! against every scheduler and against [`crate::evaluate`] itself.

use crate::machine::Machine;
use crate::schedule::Schedule;
use dagsched_dag::{Dag, NodeId, Weight};
use std::fmt;

/// A violated scheduling constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two tasks overlap in time on one processor.
    Overlap {
        /// First task (earlier start).
        a: NodeId,
        /// Second task, starting before `a` finishes.
        b: NodeId,
    },
    /// A task starts before a predecessor's data can arrive.
    Precedence {
        /// The predecessor task.
        pred: NodeId,
        /// The violating task.
        task: NodeId,
        /// Earliest legal start (`finish(pred) + comm`).
        earliest: Weight,
        /// Actual start.
        actual: Weight,
    },
    /// The machine cannot hold that many processors.
    TooManyProcs {
        /// Processors used by the schedule.
        used: usize,
        /// The machine's bound.
        bound: usize,
    },
    /// The schedule covers the wrong number of tasks.
    WrongTaskCount {
        /// Tasks in the schedule.
        got: usize,
        /// Tasks in the graph.
        expected: usize,
    },
    /// A task starts before the machine's startup cost has elapsed.
    BeforeStartup {
        /// The violating task.
        task: NodeId,
        /// The machine's startup cost.
        startup: Weight,
        /// Actual start.
        actual: Weight,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Overlap { a, b } => write!(f, "tasks {a} and {b} overlap on a processor"),
            Violation::Precedence {
                pred,
                task,
                earliest,
                actual,
            } => write!(
                f,
                "task {task} starts at {actual} but data from {pred} arrives at {earliest}"
            ),
            Violation::TooManyProcs { used, bound } => {
                write!(f, "schedule uses {used} processors, machine allows {bound}")
            }
            Violation::WrongTaskCount { got, expected } => {
                write!(f, "schedule places {got} tasks, graph has {expected}")
            }
            Violation::BeforeStartup {
                task,
                startup,
                actual,
            } => write!(
                f,
                "task {task} starts at {actual} before machine startup at {startup}"
            ),
        }
    }
}

/// Checks `s` against `g` under `machine`; returns every violation
/// (empty = valid).
///
/// Generic over the machine so monomorphized callers avoid dynamic
/// dispatch; `&dyn Machine` still works through the `?Sized` bound.
pub fn check<M: Machine + ?Sized>(g: &Dag, machine: &M, s: &Schedule) -> Vec<Violation> {
    let mut out = Vec::new();
    if s.num_tasks() != g.num_nodes() {
        out.push(Violation::WrongTaskCount {
            got: s.num_tasks(),
            expected: g.num_nodes(),
        });
        return out;
    }
    if let Some(bound) = machine.max_procs() {
        if s.num_procs() > bound {
            out.push(Violation::TooManyProcs {
                used: s.num_procs(),
                bound,
            });
        }
    }
    // Overlap: per-processor task lists are sorted by start time.
    for p in 0..s.num_procs() {
        let tasks = s.tasks_on(crate::machine::ProcId(p as u32));
        for w in tasks.windows(2) {
            let (a, b) = (w[0], w[1]);
            if s.finish_of(a) > s.start_of(b) {
                out.push(Violation::Overlap { a, b });
            }
        }
    }
    // Startup: no processor computes before the machine is up.
    let startup = machine.startup_cost();
    if startup > 0 {
        for (v, pl) in s.iter() {
            if pl.start < startup {
                out.push(Violation::BeforeStartup {
                    task: v,
                    startup,
                    actual: pl.start,
                });
            }
        }
    }
    // Precedence + communication.
    for e in g.edges() {
        let arrive =
            s.finish_of(e.src) + machine.comm_cost(s.proc_of(e.src), s.proc_of(e.dst), e.weight);
        if s.start_of(e.dst) < arrive {
            out.push(Violation::Precedence {
                pred: e.src,
                task: e.dst,
                earliest: arrive,
                actual: s.start_of(e.dst),
            });
        }
    }
    out
}

/// `true` iff [`check`] finds nothing.
pub fn is_valid<M: Machine + ?Sized>(g: &Dag, machine: &M, s: &Schedule) -> bool {
    check(g, machine, s).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{BoundedClique, Clique, ProcId};
    use dagsched_dag::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn chain2() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(10);
        b.add_edge(a, c, 7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_local_schedule() {
        let g = chain2();
        let s = Schedule::new(&g, vec![(p(0), 0), (p(0), 10)]);
        assert!(is_valid(&g, &Clique, &s));
    }

    #[test]
    fn valid_cross_processor_schedule() {
        let g = chain2();
        let s = Schedule::new(&g, vec![(p(0), 0), (p(1), 17)]);
        assert!(is_valid(&g, &Clique, &s));
    }

    #[test]
    fn detects_missing_comm_delay() {
        let g = chain2();
        // Starts at 10 on another processor: data arrives at 17.
        let s = Schedule::new(&g, vec![(p(0), 0), (p(1), 10)]);
        let v = check(&g, &Clique, &s);
        assert_eq!(
            v,
            vec![Violation::Precedence {
                pred: n(0),
                task: n(1),
                earliest: 17,
                actual: 10
            }]
        );
    }

    #[test]
    fn detects_overlap() {
        let mut b = DagBuilder::new();
        b.add_node(10);
        b.add_node(10);
        let g = b.build().unwrap();
        let s = Schedule::new(&g, vec![(p(0), 0), (p(0), 5)]);
        let v = check(&g, &Clique, &s);
        assert_eq!(v, vec![Violation::Overlap { a: n(0), b: n(1) }]);
    }

    #[test]
    fn back_to_back_is_not_overlap() {
        let mut b = DagBuilder::new();
        b.add_node(10);
        b.add_node(10);
        let g = b.build().unwrap();
        let s = Schedule::new(&g, vec![(p(0), 0), (p(0), 10)]);
        assert!(is_valid(&g, &Clique, &s));
    }

    #[test]
    fn detects_proc_bound() {
        let mut b = DagBuilder::new();
        b.add_node(1);
        b.add_node(1);
        let g = b.build().unwrap();
        let s = Schedule::new(&g, vec![(p(0), 0), (p(1), 0)]);
        let v = check(&g, &BoundedClique::new(1), &s);
        assert_eq!(v, vec![Violation::TooManyProcs { used: 2, bound: 1 }]);
    }

    #[test]
    fn precedence_violation_even_on_same_processor() {
        let g = chain2();
        // Successor before predecessor finishes, same processor — this
        // is both an overlap and a precedence violation.
        let s = Schedule::new(&g, vec![(p(0), 0), (p(0), 5)]);
        let v = check(&g, &Clique, &s);
        assert!(v.contains(&Violation::Overlap { a: n(0), b: n(1) }));
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::Precedence {
                earliest: 10,
                actual: 5,
                ..
            }
        )));
    }

    #[test]
    fn detects_wrong_task_count_and_stops_there() {
        let g = chain2();
        // A schedule built for a different (single-node) graph.
        let mut b = DagBuilder::new();
        b.add_node(10);
        let other = b.build().unwrap();
        let s = Schedule::new(&other, vec![(p(0), 0)]);
        let v = check(&g, &Clique, &s);
        // The count mismatch is terminal: no derived violations after.
        assert_eq!(
            v,
            vec![Violation::WrongTaskCount {
                got: 1,
                expected: 2
            }]
        );
    }

    #[test]
    fn violation_display_is_stable() {
        // These strings appear verbatim in incident reports; fixing
        // them here keeps robustness output deterministic.
        assert_eq!(
            Violation::Overlap { a: n(0), b: n(1) }.to_string(),
            "tasks n0 and n1 overlap on a processor"
        );
        assert_eq!(
            Violation::Precedence {
                pred: n(2),
                task: n(5),
                earliest: 17,
                actual: 10
            }
            .to_string(),
            "task n5 starts at 10 but data from n2 arrives at 17"
        );
        assert_eq!(
            Violation::TooManyProcs { used: 4, bound: 2 }.to_string(),
            "schedule uses 4 processors, machine allows 2"
        );
        assert_eq!(
            Violation::WrongTaskCount {
                got: 3,
                expected: 7
            }
            .to_string(),
            "schedule places 3 tasks, graph has 7"
        );
        assert_eq!(
            Violation::BeforeStartup {
                task: n(1),
                startup: 5,
                actual: 2
            }
            .to_string(),
            "task n1 starts at 2 before machine startup at 5"
        );
    }

    #[test]
    fn detects_start_before_machine_startup() {
        struct SlowBoot;
        impl Machine for SlowBoot {
            fn comm_cost(&self, from: ProcId, to: ProcId, w: Weight) -> Weight {
                if from == to {
                    0
                } else {
                    w
                }
            }
            fn startup_cost(&self) -> Weight {
                5
            }
            fn name(&self) -> &'static str {
                "slow-boot"
            }
        }
        let g = chain2();
        let s = Schedule::new(&g, vec![(p(0), 0), (p(0), 10)]);
        let v = check(&g, &SlowBoot, &s);
        assert_eq!(
            v,
            vec![Violation::BeforeStartup {
                task: n(0),
                startup: 5,
                actual: 0
            }]
        );
        let ok = Schedule::new(&g, vec![(p(0), 5), (p(0), 15)]);
        assert!(is_valid(&g, &SlowBoot, &ok));
    }

    #[test]
    fn evaluate_output_always_validates() {
        // The oracle agrees with the timing engine on a non-trivial case.
        let mut b = DagBuilder::new();
        for w in [3u64, 5, 7, 11, 13] {
            b.add_node(w);
        }
        for (s, d, c) in [(0u32, 1, 2u64), (0, 2, 9), (1, 3, 4), (2, 3, 1), (3, 4, 6)] {
            b.add_edge(n(s), n(d), c).unwrap();
        }
        let g = b.build().unwrap();
        let assignment = [p(0), p(0), p(1), p(0), p(1)];
        let s = crate::evaluate::timed_schedule_by_priority(
            &g,
            &Clique,
            &assignment,
            &dagsched_dag::levels::blevels_with_comm(&g),
        )
        .unwrap();
        assert!(is_valid(&g, &Clique, &s));
    }
}
