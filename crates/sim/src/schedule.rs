//! The [`Schedule`] type: a complete answer from a scheduling
//! heuristic — for every task a processor, a start time and a finish
//! time.

use crate::machine::ProcId;
use dagsched_dag::{Dag, NodeId, Weight};

/// Where and when one task runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Assigned processor.
    pub proc: ProcId,
    /// Start time.
    pub start: Weight,
    /// Finish time (`start + task weight`).
    pub finish: Weight,
}

/// A full schedule of a [`Dag`]: per-task placements plus per-processor
/// task lists sorted by start time.
///
/// Construction normalizes processor ids to a dense `0..P` range in
/// order of first appearance, so `num_procs()` is always the number of
/// *used* processors (the denominator of the paper's efficiency
/// metric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    placements: Vec<Placement>,
    proc_tasks: Vec<Vec<NodeId>>,
    makespan: Weight,
}

impl Schedule {
    /// Builds a schedule from raw per-task `(proc, start)` pairs,
    /// computing finish times from the task weights of `g`.
    ///
    /// # Panics
    /// If `placements.len() != g.num_nodes()`. Timing/overlap validity
    /// is *not* checked here — run [`crate::validate::check`] for that.
    pub fn new(g: &Dag, raw: Vec<(ProcId, Weight)>) -> Schedule {
        assert_eq!(raw.len(), g.num_nodes(), "one placement per task");
        // Order-preserving dense renumbering: sorted unique ids map to
        // 0..P. Inputs that are already dense keep their ids, so
        // topology-dependent communication costs stay meaningful.
        let mut ids: Vec<u32> = raw.iter().map(|(p, _)| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        let dense = |p: u32| ids.binary_search(&p).expect("id collected above") as u32;
        let mut placements = Vec::with_capacity(raw.len());
        for (v, (proc, start)) in raw.into_iter().enumerate() {
            let p = dense(proc.0);
            let w = g.node_weight(NodeId(v as u32));
            placements.push(Placement {
                proc: ProcId(p),
                start,
                finish: start + w,
            });
        }
        let num_procs = ids.len();
        let mut proc_tasks: Vec<Vec<NodeId>> = vec![Vec::new(); num_procs];
        for (v, pl) in placements.iter().enumerate() {
            proc_tasks[pl.proc.index()].push(NodeId(v as u32));
        }
        for tasks in &mut proc_tasks {
            tasks.sort_by_key(|&t| (placements[t.index()].start, t.0));
        }
        let makespan = placements.iter().map(|p| p.finish).max().unwrap_or(0);
        Schedule {
            placements,
            proc_tasks,
            makespan,
        }
    }

    /// The placement of task `v`.
    #[inline]
    pub fn placement(&self, v: NodeId) -> Placement {
        self.placements[v.index()]
    }

    /// Processor assigned to `v`.
    #[inline]
    pub fn proc_of(&self, v: NodeId) -> ProcId {
        self.placements[v.index()].proc
    }

    /// Start time of `v`.
    #[inline]
    pub fn start_of(&self, v: NodeId) -> Weight {
        self.placements[v.index()].start
    }

    /// Finish time of `v`.
    #[inline]
    pub fn finish_of(&self, v: NodeId) -> Weight {
        self.placements[v.index()].finish
    }

    /// Number of tasks scheduled.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.placements.len()
    }

    /// Number of processors actually used.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.proc_tasks.len()
    }

    /// Tasks of processor `p`, sorted by start time.
    #[inline]
    pub fn tasks_on(&self, p: ProcId) -> &[NodeId] {
        &self.proc_tasks[p.index()]
    }

    /// The parallel time (latest finish; 0 for an empty schedule).
    #[inline]
    pub fn makespan(&self) -> Weight {
        self.makespan
    }

    /// Iterates `(task, placement)` pairs in task-index order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Placement)> + '_ {
        self.placements
            .iter()
            .enumerate()
            .map(|(v, &p)| (NodeId(v as u32), p))
    }

    /// Total busy time across processors divided by
    /// `makespan × num_procs` — the fraction of processor-time doing
    /// useful work (1.0 for a perfectly packed schedule; 0 for empty).
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.proc_tasks.is_empty() {
            return 0.0;
        }
        let busy: Weight = self.placements.iter().map(|p| p.finish - p.start).sum();
        busy as f64 / (self.makespan as f64 * self.proc_tasks.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_dag::DagBuilder;

    fn two_task_dag() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(20);
        b.add_edge(a, c, 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn placements_and_makespan() {
        let g = two_task_dag();
        let s = Schedule::new(&g, vec![(ProcId(0), 0), (ProcId(1), 15)]);
        assert_eq!(s.num_tasks(), 2);
        assert_eq!(s.num_procs(), 2);
        assert_eq!(s.start_of(NodeId(1)), 15);
        assert_eq!(s.finish_of(NodeId(1)), 35);
        assert_eq!(s.makespan(), 35);
        assert_eq!(s.tasks_on(ProcId(0)), &[NodeId(0)]);
        assert_eq!(s.tasks_on(ProcId(1)), &[NodeId(1)]);
    }

    #[test]
    fn sparse_proc_ids_are_densified() {
        let g = two_task_dag();
        let s = Schedule::new(&g, vec![(ProcId(17), 0), (ProcId(99), 15)]);
        assert_eq!(s.num_procs(), 2);
        assert_eq!(s.proc_of(NodeId(0)), ProcId(0));
        assert_eq!(s.proc_of(NodeId(1)), ProcId(1));
    }

    #[test]
    fn same_proc_tasks_sorted_by_start() {
        let g = two_task_dag();
        let s = Schedule::new(&g, vec![(ProcId(3), 20), (ProcId(3), 0)]);
        assert_eq!(s.num_procs(), 1);
        assert_eq!(s.tasks_on(ProcId(0)), &[NodeId(1), NodeId(0)]);
        assert_eq!(s.makespan(), 30);
    }

    #[test]
    fn utilization() {
        let g = two_task_dag();
        // Serial on one processor: 30 busy over 30 elapsed.
        let s = Schedule::new(&g, vec![(ProcId(0), 0), (ProcId(0), 10)]);
        assert!((s.utilization() - 1.0).abs() < 1e-12);
        // Two processors with idle time.
        let s = Schedule::new(&g, vec![(ProcId(0), 0), (ProcId(1), 15)]);
        assert!((s.utilization() - 30.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule() {
        let g = DagBuilder::new().build().unwrap();
        let s = Schedule::new(&g, vec![]);
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.num_procs(), 0);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one placement per task")]
    fn wrong_length_panics() {
        let g = two_task_dag();
        Schedule::new(&g, vec![(ProcId(0), 0)]);
    }
}
