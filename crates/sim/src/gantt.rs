//! Plain-text Gantt charts for eyeballing schedules in examples and
//! reports.

use crate::machine::ProcId;
use crate::schedule::Schedule;
use std::fmt::Write as _;

/// Renders `s` as an ASCII Gantt chart, one row per processor, at most
/// `width` character cells across (time is scaled down to fit).
///
/// ```text
/// P0 |000---11111|
/// P1 |---2222----|
///     0        42
/// ```
///
/// Task ids are printed modulo 10 inside their time span; `-` is idle
/// time.
pub fn render(s: &Schedule, width: usize) -> String {
    let width = width.max(10);
    let span = s.makespan().max(1);
    let cell = |t: u64| ((t as u128 * width as u128) / span as u128) as usize;
    let mut out = String::new();
    for p in 0..s.num_procs() {
        let mut row = vec!['-'; width];
        for &t in s.tasks_on(ProcId(p as u32)) {
            let a = cell(s.start_of(t)).min(width - 1);
            let b = cell(s.finish_of(t)).clamp(a + 1, width);
            let ch = char::from_digit(t.0 % 10, 10).unwrap();
            for c in &mut row[a..b] {
                *c = ch;
            }
        }
        writeln!(out, "P{p:<3}|{}|", row.iter().collect::<String>()).unwrap();
    }
    writeln!(out, "    0{:>w$}", s.makespan(), w = width).unwrap();
    out
}

/// Renders `s` as a standalone SVG document (one horizontal lane per
/// processor, one rectangle per task labelled with its index). Pure
/// string generation — no graphics dependency.
pub fn render_svg(s: &Schedule) -> String {
    const LANE_H: u64 = 28;
    const PAD: u64 = 4;
    const LABEL_W: u64 = 44;
    const CHART_W: f64 = 860.0;
    let procs = s.num_procs().max(1) as u64;
    let span = s.makespan().max(1) as f64;
    let width = LABEL_W as f64 + CHART_W + 8.0;
    let height = procs * LANE_H + 2 * PAD + 18;
    let x = |t: u64| LABEL_W as f64 + (t as f64 / span) * CHART_W;

    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">\n"
    ));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    for p in 0..s.num_procs() {
        let y = PAD + p as u64 * LANE_H;
        out.push_str(&format!(
            "<text x=\"2\" y=\"{}\" fill=\"black\">P{}</text>\n",
            y + LANE_H / 2 + 4,
            p
        ));
        for &t in s.tasks_on(crate::machine::ProcId(p as u32)) {
            let x0 = x(s.start_of(t));
            let x1 = x(s.finish_of(t)).max(x0 + 1.5);
            let hue = (t.0 as u64 * 47) % 360;
            out.push_str(&format!(
                "<rect x=\"{x0:.1}\" y=\"{}\" width=\"{:.1}\" height=\"{}\" \
                 fill=\"hsl({hue},60%,70%)\" stroke=\"black\" stroke-width=\"0.5\"/>\n",
                y + 2,
                x1 - x0,
                LANE_H - 4
            ));
            if x1 - x0 > 14.0 {
                out.push_str(&format!(
                    "<text x=\"{:.1}\" y=\"{}\" fill=\"black\">{}</text>\n",
                    x0 + 2.0,
                    y + LANE_H / 2 + 4,
                    t.0
                ));
            }
        }
    }
    out.push_str(&format!(
        "<text x=\"{LABEL_W}\" y=\"{}\" fill=\"black\">0</text>\n",
        height - 4
    ));
    out.push_str(&format!(
        "<text x=\"{:.0}\" y=\"{}\" text-anchor=\"end\" fill=\"black\">{}</text>\n",
        width - 8.0,
        height - 4,
        s.makespan()
    ));
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;
    use crate::machine::Clique;
    use dagsched_dag::{DagBuilder, NodeId};

    #[test]
    fn renders_rows_per_processor() {
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(10);
        b.add_edge(a, c, 5).unwrap();
        let g = b.build().unwrap();
        let s = Clustering::from_assignment(&[0, 1])
            .materialize(&g, &Clique)
            .unwrap();
        let chart = render(&s, 40);
        assert_eq!(chart.lines().count(), 3); // 2 procs + axis
        assert!(chart.contains("P0"));
        assert!(chart.contains("P1"));
        assert!(chart.contains('0'));
        assert!(chart.contains('1'));
        assert!(chart.contains(&s.makespan().to_string()));
    }

    #[test]
    fn svg_contains_every_task_lane_and_bounds() {
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(10);
        b.add_edge(a, c, 5).unwrap();
        let g = b.build().unwrap();
        let s = Clustering::from_assignment(&[0, 1])
            .materialize(&g, &Clique)
            .unwrap();
        let svg = render_svg(&s);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + 2); // background + 2 tasks
        assert!(svg.contains(">P0<") && svg.contains(">P1<"));
        assert!(svg.contains(&format!(">{}</text>", s.makespan())));
    }

    #[test]
    fn svg_of_empty_schedule_is_well_formed() {
        let g = DagBuilder::new().build().unwrap();
        let s = crate::schedule::Schedule::new(&g, vec![]);
        let svg = render_svg(&s);
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn zero_length_tasks_still_visible() {
        let mut b = DagBuilder::new();
        b.add_node(0);
        let g = b.build().unwrap();
        let s = Clustering::serial(1).materialize(&g, &Clique).unwrap();
        let chart = render(&s, 20);
        assert!(chart.contains('0'));
        let _ = NodeId(0);
    }
}
