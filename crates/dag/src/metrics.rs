//! Graph classification metrics of the paper (§3) plus general
//! statistics.
//!
//! * [`granularity`] — §3.1's definition: the average over non-sink
//!   nodes of `node weight / max outgoing edge weight`;
//! * [`anchor_out_degree`] — §3.2: the mode of the node out-degrees;
//! * [`node_weight_range`] — §3.3: `[w_min, w_max]`.

use crate::graph::{Dag, Weight};

/// Granularity per the paper's §3.1:
///
/// ```text
///            1
/// G = ———————————  Σ over non-sink nodes i of  w_i / max_j w_e(i,j)
///        N − S
/// ```
///
/// Sink nodes (which cause no communication) are excluded from the
/// average. A node whose maximum outgoing edge weight is zero would
/// divide by zero; such nodes use a divisor of 1 (free communication —
/// the node is as coarse as its own weight). A graph with no non-sink
/// nodes (i.e. no edges at all) is perfectly coarse and reports
/// `f64::INFINITY`.
pub fn granularity(g: &Dag) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in g.nodes() {
        let max_out = g.succs(v).map(|(_, c)| c).max();
        if let Some(c) = max_out {
            let denom = c.max(1) as f64;
            sum += g.node_weight(v) as f64 / denom;
            count += 1;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        sum / count as f64
    }
}

/// Anchor out-degree per §3.2: the mode of the out-degrees over all
/// nodes. The paper's generator counts every node; sink nodes
/// contribute out-degree 0, so generators targeting an anchor `A`
/// typically report the mode over *non-sink* nodes — both are exposed.
///
/// Ties break toward the smaller degree (deterministic).
pub fn anchor_out_degree(g: &Dag) -> usize {
    mode_of_degrees(g, false)
}

/// As [`anchor_out_degree`] but ignoring sink nodes (out-degree 0),
/// matching how a generator that only controls branching of internal
/// nodes is classified.
pub fn anchor_out_degree_nonsink(g: &Dag) -> usize {
    mode_of_degrees(g, true)
}

fn mode_of_degrees(g: &Dag, skip_sinks: bool) -> usize {
    let mut counts: Vec<usize> = Vec::new();
    for v in g.nodes() {
        let d = g.out_degree(v);
        if skip_sinks && d == 0 {
            continue;
        }
        if d >= counts.len() {
            counts.resize(d + 1, 0);
        }
        counts[d] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(d, _)| d)
        .unwrap_or(0)
}

/// The *communication-to-computation ratio*: mean edge weight divided
/// by mean node weight. The inverse view of granularity used by much
/// of the post-1994 literature (CCR > 1 ≈ the paper's fine-grained
/// regime). 0.0 for edgeless graphs; `f64::INFINITY` when all node
/// weights are zero but edges exist.
pub fn ccr(g: &Dag) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    let mean_edge = g.total_comm() as f64 / g.num_edges() as f64;
    if g.num_nodes() == 0 || g.serial_time() == 0 {
        return f64::INFINITY;
    }
    let mean_node = g.serial_time() as f64 / g.num_nodes() as f64;
    mean_edge / mean_node
}

/// The `[w_min, w_max]` node weight interval of §3.3. `None` for the
/// empty graph.
pub fn node_weight_range(g: &Dag) -> Option<(Weight, Weight)> {
    let mut it = g.node_weights().iter().copied();
    let first = it.next()?;
    let mut lo = first;
    let mut hi = first;
    for w in it {
        lo = lo.min(w);
        hi = hi.max(w);
    }
    Some((lo, hi))
}

/// Simple aggregate statistics of a graph, for reports and debugging.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub nodes: usize,
    /// Number of precedence edges.
    pub edges: usize,
    /// Number of source nodes.
    pub sources: usize,
    /// Number of sink nodes.
    pub sinks: usize,
    /// Sum of node weights.
    pub serial_time: Weight,
    /// Sum of edge weights.
    pub total_comm: Weight,
    /// §3.1 granularity.
    pub granularity: f64,
    /// §3.2 anchor out-degree.
    pub anchor_out_degree: usize,
    /// §3.3 node weight range.
    pub node_weight_range: Option<(Weight, Weight)>,
    /// Mean out-degree (edges / nodes).
    pub mean_out_degree: f64,
}

impl GraphStats {
    /// Gathers all statistics for `g`.
    pub fn of(g: &Dag) -> Self {
        GraphStats {
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            sources: g.sources().len(),
            sinks: g.sinks().len(),
            serial_time: g.serial_time(),
            total_comm: g.total_comm(),
            granularity: granularity(g),
            anchor_out_degree: anchor_out_degree(g),
            node_weight_range: node_weight_range(g),
            mean_out_degree: if g.num_nodes() == 0 {
                0.0
            } else {
                g.num_edges() as f64 / g.num_nodes() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DagBuilder, NodeId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn granularity_simple_ratio() {
        // One non-sink node of weight 10 with max outgoing edge 5.
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(99); // sink, excluded
        b.add_edge(a, c, 5).unwrap();
        let g = b.build().unwrap();
        assert!((granularity(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn granularity_uses_max_outgoing_edge() {
        let mut b = DagBuilder::new();
        let a = b.add_node(12);
        let s1 = b.add_node(1);
        let s2 = b.add_node(1);
        b.add_edge(a, s1, 3).unwrap();
        b.add_edge(a, s2, 6).unwrap(); // the max
        let g = b.build().unwrap();
        assert!((granularity(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn granularity_averages_over_non_sinks() {
        let mut b = DagBuilder::new();
        let a = b.add_node(10); // ratio 10/5 = 2
        let c = b.add_node(3); // ratio 3/6 = 0.5
        let s = b.add_node(100);
        b.add_edge(a, c, 5).unwrap();
        b.add_edge(c, s, 6).unwrap();
        let g = b.build().unwrap();
        assert!((granularity(&g) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn granularity_zero_edge_weight_counts_as_one() {
        let mut b = DagBuilder::new();
        let a = b.add_node(4);
        let s = b.add_node(1);
        b.add_edge(a, s, 0).unwrap();
        let g = b.build().unwrap();
        assert!((granularity(&g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn granularity_edgeless_graph_is_infinite() {
        let mut b = DagBuilder::new();
        b.add_node(1);
        b.add_node(2);
        let g = b.build().unwrap();
        assert!(granularity(&g).is_infinite());
    }

    #[test]
    fn anchor_is_the_mode() {
        // Degrees: node0 -> 3 succs, nodes 1,2 -> 2 succs each, rest sinks.
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..8).map(|_| b.add_node(1)).collect();
        for d in [1, 2, 3] {
            b.add_edge(v[0], v[d], 1).unwrap();
        }
        b.add_edge(v[1], v[4], 1).unwrap();
        b.add_edge(v[1], v[5], 1).unwrap();
        b.add_edge(v[2], v[6], 1).unwrap();
        b.add_edge(v[2], v[7], 1).unwrap();
        let g = b.build().unwrap();
        // 5 sinks (deg 0), two deg-2 nodes, one deg-3 node.
        assert_eq!(anchor_out_degree(&g), 0);
        assert_eq!(anchor_out_degree_nonsink(&g), 2);
    }

    #[test]
    fn anchor_tie_breaks_low() {
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..5).map(|_| b.add_node(1)).collect();
        // one deg-1 node, one deg-2 node, sinks elsewhere
        b.add_edge(v[0], v[1], 1).unwrap();
        b.add_edge(v[2], v[3], 1).unwrap();
        b.add_edge(v[2], v[4], 1).unwrap();
        let g = b.build().unwrap();
        // non-sink degrees: {1: one node, 2: one node} -> tie -> 1
        assert_eq!(anchor_out_degree_nonsink(&g), 1);
    }

    #[test]
    fn ccr_is_the_inverse_granularity_view() {
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(30);
        b.add_edge(a, c, 40).unwrap();
        let g = b.build().unwrap();
        // mean edge 40, mean node 20 → CCR 2 (fine-grained).
        assert!((ccr(&g) - 2.0).abs() < 1e-12);
        // Edgeless graphs have no communication.
        let mut b = DagBuilder::new();
        b.add_node(5);
        assert_eq!(ccr(&b.build().unwrap()), 0.0);
        // Zero-weight nodes with real edges → infinite CCR.
        let mut b = DagBuilder::new();
        let a = b.add_node(0);
        let c = b.add_node(0);
        b.add_edge(a, c, 9).unwrap();
        assert!(ccr(&b.build().unwrap()).is_infinite());
    }

    #[test]
    fn weight_range() {
        let mut b = DagBuilder::new();
        for w in [25u64, 90, 40] {
            b.add_node(w);
        }
        let g = b.build().unwrap();
        assert_eq!(node_weight_range(&g), Some((25, 90)));
        let empty = DagBuilder::new().build().unwrap();
        assert_eq!(node_weight_range(&empty), None);
    }

    #[test]
    fn stats_gathers_everything() {
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(20);
        b.add_edge(a, c, 5).unwrap();
        let g = b.build().unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.edges, 1);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.serial_time, 30);
        assert_eq!(s.total_comm, 5);
        assert_eq!(s.node_weight_range, Some((10, 20)));
        assert!((s.mean_out_degree - 0.5).abs() < 1e-12);
        let _ = n(0); // silence helper when unused in some cfgs
    }
}
