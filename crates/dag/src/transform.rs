//! Structural graph transforms used by generators and schedulers.

use crate::graph::{Dag, DagBuilder, NodeId, Weight};

/// The graph with every edge reversed (weights preserved).
pub fn transpose(g: &Dag) -> Dag {
    let mut b = DagBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for &w in g.node_weights() {
        b.add_node(w);
    }
    for e in g.edges() {
        b.add_edge(e.dst, e.src, e.weight)
            .expect("transposed edges are unique");
    }
    b.build().expect("transpose of a DAG is a DAG")
}

/// The subgraph induced by `keep` (any iterable of node ids).
///
/// Returns the new graph plus the mapping `old -> new` (dense; nodes
/// not kept map to `None`). Edges between kept nodes survive with
/// their weights.
pub fn induced_subgraph(
    g: &Dag,
    keep: impl IntoIterator<Item = NodeId>,
) -> (Dag, Vec<Option<NodeId>>) {
    let mut map: Vec<Option<NodeId>> = vec![None; g.num_nodes()];
    let mut b = DagBuilder::new();
    for v in keep {
        if map[v.index()].is_none() {
            map[v.index()] = Some(b.add_node(g.node_weight(v)));
        }
    }
    for e in g.edges() {
        if let (Some(s), Some(d)) = (map[e.src.index()], map[e.dst.index()]) {
            b.add_edge(s, d, e.weight)
                .expect("induced edges are unique");
        }
    }
    (b.build().expect("induced subgraph of a DAG is a DAG"), map)
}

/// Result of [`with_virtual_terminals`].
pub struct Augmented {
    /// The augmented graph.
    pub graph: Dag,
    /// Id of the added zero-weight super-source (edges of weight 0 to
    /// every original source), if one was added.
    pub source: Option<NodeId>,
    /// Id of the added zero-weight super-sink, if one was added.
    pub sink: Option<NodeId>,
}

/// Adds a zero-weight virtual source and/or sink so the graph has a
/// unique entry and exit, as MH's algorithm requires ("Insert a single
/// exit node. Edges to this node are given a weight of 0."). Original
/// node ids are unchanged; virtual nodes take the next indices.
///
/// If the graph already has a unique source (resp. sink), none is
/// added for that side. The empty graph is returned unchanged.
pub fn with_virtual_terminals(g: &Dag) -> Augmented {
    let sources = g.sources();
    let sinks = g.sinks();
    let need_src = sources.len() > 1;
    let need_sink = sinks.len() > 1;
    if g.num_nodes() == 0 || (!need_src && !need_sink) {
        return Augmented {
            graph: g.clone(),
            source: None,
            sink: None,
        };
    }
    let mut b = g.to_builder();
    let src = need_src.then(|| {
        let s = b.add_node(0);
        for v in &sources {
            b.add_edge(s, *v, 0).expect("fresh source edges are unique");
        }
        s
    });
    let sink = need_sink.then(|| {
        let t = b.add_node(0);
        for v in &sinks {
            b.add_edge(*v, t, 0).expect("fresh sink edges are unique");
        }
        t
    });
    Augmented {
        graph: b.build().expect("augmentation preserves acyclicity"),
        source: src,
        sink,
    }
}

/// The transitive reduction of `g`: removes every edge `(u, v)` that
/// is implied by a longer path `u → … → v`. Weights of surviving edges
/// are preserved. Reachability is exactly preserved (checked by the
/// property suite); note that under the scheduling model a reduced
/// graph is *not* equivalent in general — a removed edge also removes
/// its communication cost — so this is a structural tool (generator
/// cleanup, visualization), not a scheduling transform.
pub fn transitive_reduction(g: &Dag) -> Dag {
    let closure = g.closure();
    let mut b = DagBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for &w in g.node_weights() {
        b.add_node(w);
    }
    for e in g.edges() {
        // (u, v) is redundant iff some successor w ≠ v of u reaches v.
        let redundant = g
            .succs(e.src)
            .any(|(w, _)| w != e.dst && closure.reaches(w, e.dst));
        if !redundant {
            b.add_edge(e.src, e.dst, e.weight)
                .expect("subset of unique edges");
        }
    }
    b.build().expect("removing edges preserves acyclicity")
}

/// Scales every edge weight by the rational `num/den` with
/// round-to-nearest (used by the generator's granularity targeting).
/// Weights never round below `min_weight`.
pub fn scale_edge_weights(g: &Dag, num: u64, den: u64, min_weight: Weight) -> Dag {
    assert!(den > 0, "scale denominator must be positive");
    let mut b = g.to_builder();
    b.map_edge_weights(|w| {
        (((w as u128 * num as u128) + den as u128 / 2) / den as u128).max(min_weight as u128)
            as Weight
    });
    b.build().expect("scaling weights cannot create cycles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn wide() -> Dag {
        // two sources {0,1} -> 2 -> two sinks {3,4}
        let mut b = DagBuilder::new();
        for w in [1u64, 2, 3, 4, 5] {
            b.add_node(w);
        }
        for (s, d, c) in [(0, 2, 10u64), (1, 2, 11), (2, 3, 12), (2, 4, 13)] {
            b.add_edge(n(s), n(d), c).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn transpose_flips_edges() {
        let g = wide();
        let t = transpose(&g);
        assert_eq!(t.num_nodes(), g.num_nodes());
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.sources().len(), g.sinks().len());
        assert!(t.succs(n(2)).any(|(d, c)| d == n(0) && c == 10));
        // Double transpose is the identity.
        assert_eq!(transpose(&t), g);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = wide();
        let (sub, map) = induced_subgraph(&g, [n(0), n(2), n(3)]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2); // 0->2 and 2->3 survive
        assert_eq!(map[1], None);
        assert_eq!(map[4], None);
        let s0 = map[0].unwrap();
        let s2 = map[2].unwrap();
        assert!(sub.succs(s0).any(|(d, c)| d == s2 && c == 10));
        assert_eq!(sub.node_weight(s2), 3);
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let g = wide();
        let (sub, _) = induced_subgraph(&g, [n(0), n(0), n(0)]);
        assert_eq!(sub.num_nodes(), 1);
    }

    #[test]
    fn virtual_terminals_added_when_needed() {
        let g = wide();
        let aug = with_virtual_terminals(&g);
        let (src, sink) = (aug.source.unwrap(), aug.sink.unwrap());
        assert_eq!(aug.graph.num_nodes(), 7);
        assert_eq!(aug.graph.node_weight(src), 0);
        assert_eq!(aug.graph.node_weight(sink), 0);
        assert_eq!(aug.graph.sources(), vec![src]);
        assert_eq!(aug.graph.sinks(), vec![sink]);
        // All virtual edges are zero-cost.
        for (_, c) in aug.graph.succs(src) {
            assert_eq!(c, 0);
        }
        for e in aug.graph.in_edges(sink) {
            assert_eq!(aug.graph.edge(*e).weight, 0);
        }
    }

    #[test]
    fn virtual_terminals_noop_on_single_entry_exit() {
        let mut b = DagBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(1);
        b.add_edge(a, c, 1).unwrap();
        let g = b.build().unwrap();
        let aug = with_virtual_terminals(&g);
        assert!(aug.source.is_none() && aug.sink.is_none());
        assert_eq!(aug.graph, g);
    }

    #[test]
    fn transitive_reduction_removes_shortcuts() {
        // Chain 0→1→2 plus shortcut 0→2.
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_node(1)).collect();
        b.add_edge(v[0], v[1], 5).unwrap();
        b.add_edge(v[1], v[2], 6).unwrap();
        b.add_edge(v[0], v[2], 7).unwrap();
        let g = b.build().unwrap();
        let r = transitive_reduction(&g);
        assert_eq!(r.num_edges(), 2);
        assert!(!r.succs(n(0)).any(|(d, _)| d == n(2)));
        // Surviving weights preserved.
        assert!(r.succs(n(0)).any(|(d, w)| d == n(1) && w == 5));
        // Idempotent.
        assert_eq!(transitive_reduction(&r), r);
    }

    #[test]
    fn transitive_reduction_keeps_diamonds() {
        // Both diamond arms are essential.
        let g = wide();
        assert_eq!(transitive_reduction(&g), g);
    }

    #[test]
    fn scale_edges_rounds_and_clamps() {
        let g = wide();
        let half = scale_edge_weights(&g, 1, 2, 1);
        // 10->5, 11->6 (round half up), 12->6, 13->7 (round half up: 6.5 -> 7)
        let ws: Vec<u64> = half.edges().iter().map(|e| e.weight).collect();
        assert_eq!(ws, vec![5, 6, 6, 7]);
        let tiny = scale_edge_weights(&g, 1, 1000, 1);
        assert!(tiny.edges().iter().all(|e| e.weight == 1));
        let big = scale_edge_weights(&g, 10, 1, 1);
        assert_eq!(big.total_comm(), g.total_comm() * 10);
    }
}
