//! Core graph storage: [`Dag`] and [`DagBuilder`].
//!
//! A [`Dag`] is immutable once built. Construction happens through
//! [`DagBuilder`], which checks for self-loops and duplicate edges as
//! they are added and for cycles at [`DagBuilder::build`] time. The
//! built graph stores both forward (successor) and reverse
//! (predecessor) adjacency in CSR form, so every scheduler traversal
//! is a contiguous slice walk.

use crate::error::{DagError, Result};
use std::fmt;

/// Task processing times and communication costs, in abstract time
/// units (the paper's weights are small integers; `u64` keeps every
/// path-length computation exact).
pub type Weight = u64;

/// Index of a node (task) in a [`Dag`]. Stored as `u32` to keep hot
/// per-node tables compact (see the type-size guidance of the Rust
/// perf book); converts to/from `usize` at use sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of an edge (precedence constraint) in a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One directed edge with its communication weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Tail (the task that produces the data).
    pub src: NodeId,
    /// Head (the task that consumes the data).
    pub dst: NodeId,
    /// Communication cost when `src` and `dst` run on different
    /// processors; zero cost on the same processor.
    pub weight: Weight,
}

/// Mutable graph under construction.
///
/// `add_node` returns densely numbered [`NodeId`]s starting at 0.
/// `add_edge` rejects self-loops and duplicate `(src, dst)` pairs
/// immediately; cycles are detected by `build`.
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    node_weights: Vec<Weight>,
    edges: Vec<Edge>,
    /// Sorted on demand for duplicate detection; kept as a flat set of
    /// `(src, dst)` packed pairs.
    edge_keys: std::collections::HashSet<(u32, u32)>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            node_weights: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            edge_keys: std::collections::HashSet::with_capacity(edges),
        }
    }

    /// Adds a task with processing time `weight`; returns its id.
    pub fn add_node(&mut self, weight: Weight) -> NodeId {
        let id = NodeId(self.node_weights.len() as u32);
        self.node_weights.push(weight);
        id
    }

    /// Adds `count` tasks all with processing time `weight`; returns their ids.
    pub fn add_nodes(&mut self, count: usize, weight: Weight) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node(weight)).collect()
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a precedence edge `src -> dst` with communication cost
    /// `weight`.
    ///
    /// # Errors
    /// [`DagError::NodeOutOfRange`] if either endpoint was never added,
    /// [`DagError::SelfLoop`] if `src == dst`,
    /// [`DagError::DuplicateEdge`] if the pair already exists.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: Weight) -> Result<EdgeId> {
        let len = self.node_weights.len();
        for v in [src, dst] {
            if v.index() >= len {
                return Err(DagError::NodeOutOfRange {
                    index: v.index(),
                    len,
                });
            }
        }
        if src == dst {
            return Err(DagError::SelfLoop(src.index()));
        }
        if !self.edge_keys.insert((src.0, dst.0)) {
            return Err(DagError::DuplicateEdge {
                src: src.index(),
                dst: dst.index(),
            });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, weight });
        Ok(id)
    }

    /// True if the `(src, dst)` edge already exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.edge_keys.contains(&(src.0, dst.0))
    }

    /// Removes the `(src, dst)` edge if present; returns whether one
    /// was removed. O(m) — intended for generator adjustment passes,
    /// not hot loops.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        if !self.edge_keys.remove(&(src.0, dst.0)) {
            return false;
        }
        let pos = self
            .edges
            .iter()
            .position(|e| e.src == src && e.dst == dst)
            .expect("edge_keys and edges agree");
        self.edges.swap_remove(pos);
        true
    }

    /// Overwrites the processing time of `node`.
    pub fn set_node_weight(&mut self, node: NodeId, weight: Weight) {
        self.node_weights[node.index()] = weight;
    }

    /// Reads the current processing time of `node`.
    pub fn node_weight(&self, node: NodeId) -> Weight {
        self.node_weights[node.index()]
    }

    /// Applies `f` to every edge weight (used by the generator's
    /// granularity-targeting pass).
    pub fn map_edge_weights(&mut self, mut f: impl FnMut(Weight) -> Weight) {
        for e in &mut self.edges {
            e.weight = f(e.weight);
        }
    }

    /// Iterates over the edges added so far.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Validates acyclicity and freezes the graph into CSR form.
    ///
    /// # Errors
    /// [`DagError::Cycle`] naming one node on a directed cycle.
    pub fn build(self) -> Result<Dag> {
        let n = self.node_weights.len();
        let m = self.edges.len();

        // Count degrees.
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        for e in &self.edges {
            out_deg[e.src.index()] += 1;
            in_deg[e.dst.index()] += 1;
        }

        // CSR offsets (exclusive prefix sums).
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut pred_off = Vec::with_capacity(n + 1);
        let (mut s, mut p) = (0u32, 0u32);
        for v in 0..n {
            succ_off.push(s);
            pred_off.push(p);
            s += out_deg[v];
            p += in_deg[v];
        }
        succ_off.push(s);
        pred_off.push(p);

        // Fill adjacency with edge ids.
        let mut succ_adj = vec![EdgeId(0); m];
        let mut pred_adj = vec![EdgeId(0); m];
        let mut succ_fill = succ_off.clone();
        let mut pred_fill = pred_off.clone();
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            let so = &mut succ_fill[e.src.index()];
            succ_adj[*so as usize] = id;
            *so += 1;
            let po = &mut pred_fill[e.dst.index()];
            pred_adj[*po as usize] = id;
            *po += 1;
        }

        let dag = Dag {
            node_weights: self.node_weights,
            edges: self.edges,
            succ_off,
            pred_off,
            succ_adj,
            pred_adj,
            topo: Vec::new(),
            analysis: Default::default(),
        };

        // Kahn's algorithm both validates acyclicity and produces the
        // canonical topological order cached on the graph.
        let order = dag.kahn_order()?;
        let mut dag = dag;
        dag.topo = order;
        Ok(dag)
    }
}

/// Immutable weighted DAG in CSR form.
///
/// Nodes are `0..num_nodes()`, edges `0..num_edges()`. A canonical
/// topological order is computed at build time and exposed through
/// [`Dag::topo_order`]. Path labellings (b-levels, ALAP times, the
/// transitive closure, …) are memoized per graph in a
/// [`DagAnalysis`](crate::analysis::DagAnalysis) bundle — see the
/// accessor methods defined in [`analysis`](crate::analysis). The
/// cache never participates in `Clone` (clones start cold) or
/// equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    node_weights: Vec<Weight>,
    edges: Vec<Edge>,
    succ_off: Vec<u32>,
    pred_off: Vec<u32>,
    succ_adj: Vec<EdgeId>,
    pred_adj: Vec<EdgeId>,
    topo: Vec<NodeId>,
    pub(crate) analysis: crate::analysis::DagAnalysis,
}

impl Dag {
    /// Number of tasks.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of precedence edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all edge ids in index order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Processing time of `node`.
    #[inline]
    pub fn node_weight(&self, node: NodeId) -> Weight {
        self.node_weights[node.index()]
    }

    /// All node weights, indexed by node id.
    #[inline]
    pub fn node_weights(&self) -> &[Weight] {
        &self.node_weights
    }

    /// The edge record for `edge`.
    #[inline]
    pub fn edge(&self, edge: EdgeId) -> Edge {
        self.edges[edge.index()]
    }

    /// All edges, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge ids leaving `node`.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        let (a, b) = (self.succ_off[node.index()], self.succ_off[node.index() + 1]);
        &self.succ_adj[a as usize..b as usize]
    }

    /// Edge ids entering `node`.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        let (a, b) = (self.pred_off[node.index()], self.pred_off[node.index() + 1]);
        &self.pred_adj[a as usize..b as usize]
    }

    /// Successor `(node, edge weight)` pairs of `node`.
    pub fn succs(&self, node: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.out_edges(node).iter().map(|&e| {
            let ed = self.edge(e);
            (ed.dst, ed.weight)
        })
    }

    /// Predecessor `(node, edge weight)` pairs of `node`.
    pub fn preds(&self, node: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.in_edges(node).iter().map(|&e| {
            let ed = self.edge(e);
            (ed.src, ed.weight)
        })
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges(node).len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges(node).len()
    }

    /// Nodes with no predecessors.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// The cached canonical topological order (smallest-index-first
    /// Kahn order).
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Sum of all node weights — the time a single processor needs,
    /// the paper's *serial time*.
    pub fn serial_time(&self) -> Weight {
        self.node_weights.iter().sum()
    }

    /// Sum of all edge weights.
    pub fn total_comm(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Rebuilds a mutable builder with identical contents.
    pub fn to_builder(&self) -> DagBuilder {
        let mut b = DagBuilder::with_capacity(self.num_nodes(), self.num_edges());
        for &w in &self.node_weights {
            b.add_node(w);
        }
        for e in &self.edges {
            b.add_edge(e.src, e.dst, e.weight)
                .expect("edges of a valid Dag re-add cleanly");
        }
        b
    }

    /// Kahn topological sort; error names a node on a cycle.
    pub(crate) fn kahn_order(&self) -> Result<Vec<NodeId>> {
        let n = self.num_nodes();
        let mut in_deg: Vec<u32> = (0..n)
            .map(|v| self.in_degree(NodeId(v as u32)) as u32)
            .collect();
        let mut stack: Vec<NodeId> = Vec::with_capacity(n);
        // Seed with sources in reverse index order so pops yield
        // ascending indices — a deterministic canonical order.
        for v in (0..n as u32).rev() {
            if in_deg[v as usize] == 0 {
                stack.push(NodeId(v));
            }
        }
        let mut order = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            order.push(v);
            for (s, _) in self.succs(v) {
                in_deg[s.index()] -= 1;
                if in_deg[s.index()] == 0 {
                    stack.push(s);
                }
            }
        }
        if order.len() != n {
            let witness = (0..n).find(|&v| in_deg[v] > 0).unwrap_or(0);
            return Err(DagError::Cycle(witness));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> {1,2} -> 3
        let mut b = DagBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node(10 * (i + 1) as Weight)).collect();
        b.add_edge(n[0], n[1], 1).unwrap();
        b.add_edge(n[0], n[2], 2).unwrap();
        b.add_edge(n[1], n[3], 3).unwrap();
        b.add_edge(n[2], n[3], 4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.serial_time(), 100);
        assert_eq!(g.total_comm(), 10);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
    }

    #[test]
    fn adjacency_is_consistent_both_directions() {
        let g = diamond();
        for e in g.edge_ids() {
            let ed = g.edge(e);
            assert!(g.out_edges(ed.src).contains(&e));
            assert!(g.in_edges(ed.dst).contains(&e));
        }
        let succ_total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let pred_total: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        assert_eq!(succ_total, g.num_edges());
        assert_eq!(pred_total, g.num_edges());
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_nodes()];
            for (i, &v) in g.topo_order().iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for e in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn canonical_topo_order_is_deterministic() {
        let g1 = diamond();
        let g2 = diamond();
        assert_eq!(g1.topo_order(), g2.topo_order());
        assert_eq!(g1.topo_order()[0], NodeId(0));
        assert_eq!(*g1.topo_order().last().unwrap(), NodeId(3));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::new();
        let v = b.add_node(1);
        assert_eq!(b.add_edge(v, v, 1), Err(DagError::SelfLoop(0)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1);
        let v = b.add_node(1);
        b.add_edge(u, v, 1).unwrap();
        assert_eq!(
            b.add_edge(u, v, 9),
            Err(DagError::DuplicateEdge { src: 0, dst: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range_node() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1);
        let bogus = NodeId(5);
        assert!(matches!(
            b.add_edge(u, bogus, 1),
            Err(DagError::NodeOutOfRange { index: 5, len: 1 })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DagBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(1)).collect();
        b.add_edge(n[0], n[1], 1).unwrap();
        b.add_edge(n[1], n[2], 1).unwrap();
        b.add_edge(n[2], n[0], 1).unwrap();
        assert!(matches!(b.build(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn empty_graph_builds() {
        let g = DagBuilder::new().build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.serial_time(), 0);
        assert!(g.topo_order().is_empty());
    }

    #[test]
    fn single_node_graph() {
        let mut b = DagBuilder::new();
        b.add_node(42);
        let g = b.build().unwrap();
        assert_eq!(g.serial_time(), 42);
        assert_eq!(g.sources(), g.sinks());
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut b = DagBuilder::new();
        let u = b.add_node(1);
        let v = b.add_node(1);
        b.add_edge(u, v, 5).unwrap();
        assert!(b.has_edge(u, v));
        assert!(b.remove_edge(u, v));
        assert!(!b.has_edge(u, v));
        assert!(!b.remove_edge(u, v));
        // Can re-add after removal.
        b.add_edge(u, v, 7).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge(EdgeId(0)).weight, 7);
    }

    #[test]
    fn to_builder_roundtrip() {
        let g = diamond();
        let g2 = g.to_builder().build().unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn map_edge_weights_scales() {
        let mut b = diamond().to_builder();
        b.map_edge_weights(|w| w * 10);
        let g = b.build().unwrap();
        assert_eq!(g.total_comm(), 100);
    }

    #[test]
    fn disconnected_components_are_fine() {
        let mut b = DagBuilder::new();
        b.add_node(1);
        b.add_node(2);
        let g = b.build().unwrap();
        assert_eq!(g.sources().len(), 2);
        assert_eq!(g.sinks().len(), 2);
    }
}
