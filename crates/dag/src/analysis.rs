//! The per-graph analysis cache: lazily materialized, immutable path
//! labellings computed at most once per [`Dag`] and shared by every
//! consumer holding a reference to the graph.
//!
//! The paper's testbed runs five heuristics over the same corpus of
//! graphs; without a cache each of them recomputes b-levels, t-levels,
//! ALAP times and the transitive closure from scratch (and the harness
//! fallback chain recomputes them again on every re-run). The
//! [`DagAnalysis`] bundle memoizes each labelling behind a
//! [`OnceLock`], so the accessor methods on [`Dag`]
//! ([`Dag::blevels_with_comm`], [`Dag::alap_times`], [`Dag::closure`],
//! …) compute on first use and return a shared borrow afterwards.
//!
//! The free functions in [`levels`](crate::levels) remain the uncached
//! reference implementations; every cached accessor delegates to them,
//! so the two can be compared differentially.
//!
//! Cache semantics:
//!
//! * **Immutability** — a [`Dag`] never changes after
//!   [`DagBuilder::build`](crate::DagBuilder::build), so a computed
//!   labelling is valid for the graph's whole lifetime.
//! * **Clone is cold** — cloning a [`Dag`] yields an empty cache (the
//!   labellings are recomputed on demand). This keeps clones cheap
//!   and gives tests and benches a way to produce an uncached twin.
//! * **Equality ignores the cache** — two structurally equal graphs
//!   compare equal regardless of which labellings are materialized.
//! * **Thread safety** — [`OnceLock`] makes concurrent first accesses
//!   race-free; all labellings are deterministic functions of the
//!   graph, so whichever thread wins computes the same value.
//!
//! When the workspace-wide `obs` feature is enabled, the first
//! computation of each labelling bumps a `dag.analysis.*` counter on
//! the active collector scope — the telemetry suite uses these to
//! assert that a corpus sweep computes each labelling at most once
//! per graph.

use crate::closure::Closure;
use crate::graph::{Dag, NodeId, Weight};
use crate::levels;
use crate::model::LevelCost;
use dagsched_obs as obs;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Lazily materialized per-graph labellings (see the module docs).
///
/// Owned by every [`Dag`]; not constructible directly — the cached
/// values are reached through the accessor methods on [`Dag`].
#[derive(Default)]
pub struct DagAnalysis {
    blevels_comm: OnceLock<Vec<Weight>>,
    blevels_comp: OnceLock<Vec<Weight>>,
    tlevels_comm: OnceLock<Vec<Weight>>,
    tlevels_comp: OnceLock<Vec<Weight>>,
    alap: OnceLock<Vec<Weight>>,
    slacks: OnceLock<Vec<Weight>>,
    critical_path: OnceLock<Vec<NodeId>>,
    closure: OnceLock<Closure>,
    /// Per-[`LevelCost`] labelling bundles, keyed by the pricing so
    /// levels computed under one machine model can never be served to
    /// another (the soundness condition of the model refactor). A
    /// linear scan suffices: a process uses a handful of models.
    model_levels: Mutex<Vec<(LevelCost, Arc<ModelLevels>)>>,
}

/// The level bundle for one [`LevelCost`]: b-levels, t-levels and ALAP
/// times all priced under the same edge cost, computed together and
/// shared via [`Dag::model_levels`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelLevels {
    /// Bottom levels under the model's edge pricing.
    pub blevels: Vec<Weight>,
    /// Top levels under the model's edge pricing.
    pub tlevels: Vec<Weight>,
    /// ALAP start times: `cp − blevel` with `cp` the priced critical
    /// path length.
    pub alap: Vec<Weight>,
}

impl ModelLevels {
    /// The priced critical path length (`max` b-level; 0 when empty).
    pub fn critical_path_len(&self) -> Weight {
        self.blevels.iter().copied().max().unwrap_or(0)
    }
}

impl DagAnalysis {
    /// Names of the labellings currently materialized.
    fn warm(&self) -> Vec<&'static str> {
        let mut w = Vec::new();
        let mut push = |set: bool, name| {
            if set {
                w.push(name);
            }
        };
        push(self.blevels_comm.get().is_some(), "blevels_comm");
        push(self.blevels_comp.get().is_some(), "blevels_comp");
        push(self.tlevels_comm.get().is_some(), "tlevels_comm");
        push(self.tlevels_comp.get().is_some(), "tlevels_comp");
        push(self.alap.get().is_some(), "alap");
        push(self.slacks.get().is_some(), "slacks");
        push(self.critical_path.get().is_some(), "critical_path");
        push(self.closure.get().is_some(), "closure");
        let models = self
            .model_levels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len();
        push(models > 0, "model_levels");
        w
    }
}

/// A clone starts cold: the target graph recomputes labellings on
/// demand. This is what makes `Dag: Clone` cheap and deterministic
/// (and gives tests an uncached twin of a warmed graph).
impl Clone for DagAnalysis {
    fn clone(&self) -> Self {
        DagAnalysis::default()
    }
}

/// The cache is derived state: two caches over equal graphs are
/// semantically identical whatever subset happens to be materialized,
/// so equality is unconditional and `Dag`'s derived `PartialEq`
/// compares only the structural fields.
impl PartialEq for DagAnalysis {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for DagAnalysis {}

impl fmt::Debug for DagAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DagAnalysis")
            .field("warm", &self.warm())
            .finish()
    }
}

/// Levels as seen under one [`LevelCost`]: the view heuristics use to
/// read priorities without caring whether the model is uniform.
///
/// [`LevelCost::Uniform`] *borrows* the plain memoized accessors —
/// exactly the pre-model code path, same values, same `dag.analysis.*`
/// counters — while any other pricing holds an [`Arc`] into the keyed
/// [`Dag::model_levels`] cache. This is what keeps the paper-model
/// hot path bit-identical through the machine-model refactor.
pub struct PricedLevels<'g> {
    g: &'g Dag,
    owned: Option<Arc<ModelLevels>>,
}

impl<'g> PricedLevels<'g> {
    /// The level view of `g` priced under `cost`.
    pub fn new(g: &'g Dag, cost: LevelCost) -> Self {
        let owned = (!cost.is_uniform()).then(|| g.model_levels(cost));
        PricedLevels { g, owned }
    }

    /// Priced bottom levels (the Gerasoulis/Yang priority).
    #[inline]
    pub fn blevels(&self) -> &[Weight] {
        match &self.owned {
            None => self.g.blevels_with_comm(),
            Some(ml) => &ml.blevels,
        }
    }

    /// Priced top levels.
    #[inline]
    pub fn tlevels(&self) -> &[Weight] {
        match &self.owned {
            None => self.g.tlevels_with_comm(),
            Some(ml) => &ml.tlevels,
        }
    }

    /// Priced ALAP start times (MCP's `T_L` binding).
    #[inline]
    pub fn alap(&self) -> &[Weight] {
        match &self.owned {
            None => self.g.alap_times(),
            Some(ml) => &ml.alap,
        }
    }

    /// The priced critical path length.
    pub fn critical_path_len(&self) -> Weight {
        self.blevels().iter().copied().max().unwrap_or(0)
    }
}

/// Cached analysis accessors. Each computes on first call (bumping a
/// `dag.analysis.*` obs counter) and returns a shared borrow of the
/// memoized value afterwards.
impl Dag {
    fn analysis(&self) -> &DagAnalysis {
        &self.analysis
    }

    /// Cached [`levels::blevels_with_comm`]: the Gerasoulis/Yang
    /// levels used by DSC, MH and the clustering evaluator.
    pub fn blevels_with_comm(&self) -> &[Weight] {
        self.analysis().blevels_comm.get_or_init(|| {
            obs::counter_add("dag.analysis.blevels_comm", 1);
            levels::blevels_with_comm(self)
        })
    }

    /// Cached [`levels::blevels_computation`]: the classic Hu levels.
    pub fn blevels_computation(&self) -> &[Weight] {
        self.analysis().blevels_comp.get_or_init(|| {
            obs::counter_add("dag.analysis.blevels_comp", 1);
            levels::blevels_computation(self)
        })
    }

    /// Cached [`levels::tlevels_with_comm`].
    pub fn tlevels_with_comm(&self) -> &[Weight] {
        self.analysis().tlevels_comm.get_or_init(|| {
            obs::counter_add("dag.analysis.tlevels_comm", 1);
            levels::tlevels_with_comm(self)
        })
    }

    /// Cached [`levels::tlevels_computation`].
    pub fn tlevels_computation(&self) -> &[Weight] {
        self.analysis().tlevels_comp.get_or_init(|| {
            obs::counter_add("dag.analysis.tlevels_comp", 1);
            levels::tlevels_computation(self)
        })
    }

    /// Cached [`levels::alap_times`] (MCP's `T_L` binding). Derived
    /// from [`Dag::blevels_with_comm`], warming it as a side effect.
    pub fn alap_times(&self) -> &[Weight] {
        self.analysis().alap.get_or_init(|| {
            obs::counter_add("dag.analysis.alap", 1);
            let bl = self.blevels_with_comm();
            let cp = bl.iter().copied().max().unwrap_or(0);
            bl.iter().map(|&b| cp - b).collect()
        })
    }

    /// Cached [`levels::slacks`] (node criticality: slack 0 ⇔ the node
    /// lies on the critical path).
    pub fn slacks(&self) -> &[Weight] {
        self.analysis().slacks.get_or_init(|| {
            obs::counter_add("dag.analysis.slacks", 1);
            levels::slacks(self)
        })
    }

    /// Cached [`levels::critical_path`]: one maximal source-to-sink
    /// path, deterministic tie-breaks.
    pub fn critical_path(&self) -> &[NodeId] {
        self.analysis().critical_path.get_or_init(|| {
            obs::counter_add("dag.analysis.critical_path", 1);
            levels::critical_path(self)
        })
    }

    /// The critical path length including communication, off the
    /// cached b-levels (cf. [`levels::critical_path_len`]).
    pub fn critical_path_len(&self) -> Weight {
        self.blevels_with_comm().iter().copied().max().unwrap_or(0)
    }

    /// The computation-only critical path length, off the cached
    /// levels (cf. [`levels::critical_path_len_computation`]).
    pub fn critical_path_len_computation(&self) -> Weight {
        self.blevels_computation()
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Cached transitive [`Closure`] (ancestor/descendant
    /// reachability), used by MCP's dispatch order and the clan
    /// decomposition.
    pub fn closure(&self) -> &Closure {
        self.analysis().closure.get_or_init(|| {
            obs::counter_add("dag.analysis.closure", 1);
            Closure::new(self)
        })
    }

    /// The level bundle (b-levels, t-levels, ALAP) priced under
    /// `cost`, computed at most once per `(graph, cost)` pair and
    /// shared via [`Arc`]. [`LevelCost::Uniform`] copies out of the
    /// plain memoized accessors, so the uniform bundle agrees
    /// bit-for-bit with [`Dag::blevels_with_comm`] & friends; every
    /// other pricing gets its own cache entry, keeping the PR-3 cache
    /// sound across machine models.
    pub fn model_levels(&self, cost: LevelCost) -> Arc<ModelLevels> {
        {
            let cache = self
                .analysis()
                .model_levels
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some((_, ml)) = cache.iter().find(|(k, _)| *k == cost) {
                return Arc::clone(ml);
            }
        }
        // Compute outside the lock: the uniform path re-enters the
        // OnceLock accessors, and a long computation must not block
        // readers of other models. A lost race keeps the first entry
        // (all values are deterministic, so they are equal anyway).
        obs::counter_add("dag.analysis.model_levels", 1);
        let ml = Arc::new(if cost.is_uniform() {
            ModelLevels {
                blevels: self.blevels_with_comm().to_vec(),
                tlevels: self.tlevels_with_comm().to_vec(),
                alap: self.alap_times().to_vec(),
            }
        } else {
            ModelLevels {
                blevels: levels::blevels_with_model(self, cost),
                tlevels: levels::tlevels_with_model(self, cost),
                alap: levels::alap_with_model(self, cost),
            }
        });
        let mut cache = self
            .analysis()
            .model_levels
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some((_, existing)) = cache.iter().find(|(k, _)| *k == cost) {
            return Arc::clone(existing);
        }
        cache.push((cost, Arc::clone(&ml)));
        ml
    }

    /// Materializes every labelling of the bundle. Runners call this
    /// once per graph *outside* any per-run collector scope so that
    /// per-run telemetry stays free of per-graph analysis counters
    /// (which would otherwise be attributed to whichever heuristic
    /// happened to run first).
    pub fn warm_analysis(&self) {
        self.blevels_with_comm();
        self.blevels_computation();
        self.tlevels_with_comm();
        self.tlevels_computation();
        self.alap_times();
        self.slacks();
        self.critical_path();
        self.closure();
    }

    /// Names of the labellings currently materialized (diagnostic).
    pub fn warm_labellings(&self) -> Vec<&'static str> {
        self.analysis().warm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// The appendix worked example (same as `levels::tests::fig16`).
    fn fig16() -> Dag {
        let mut b = DagBuilder::new();
        for w in [10u64, 20, 30, 40, 50] {
            b.add_node(w);
        }
        for (s, d, c) in [(0, 1, 5u64), (0, 2, 5), (2, 3, 10), (1, 4, 4), (3, 4, 5)] {
            b.add_edge(n(s), n(d), c).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn cached_accessors_match_the_uncached_reference() {
        let g = fig16();
        assert_eq!(g.blevels_with_comm(), &levels::blevels_with_comm(&g)[..]);
        assert_eq!(
            g.blevels_computation(),
            &levels::blevels_computation(&g)[..]
        );
        assert_eq!(g.tlevels_with_comm(), &levels::tlevels_with_comm(&g)[..]);
        assert_eq!(
            g.tlevels_computation(),
            &levels::tlevels_computation(&g)[..]
        );
        assert_eq!(g.alap_times(), &levels::alap_times(&g)[..]);
        assert_eq!(g.slacks(), &levels::slacks(&g)[..]);
        assert_eq!(g.critical_path(), &levels::critical_path(&g)[..]);
        assert_eq!(g.critical_path_len(), levels::critical_path_len(&g));
        assert_eq!(
            g.critical_path_len_computation(),
            levels::critical_path_len_computation(&g)
        );
    }

    #[test]
    fn repeated_calls_return_the_same_memoized_slice() {
        let g = fig16();
        let a = g.blevels_with_comm().as_ptr();
        let b = g.blevels_with_comm().as_ptr();
        assert_eq!(a, b, "second call must not recompute");
        assert_eq!(g.blevels_with_comm(), &[150, 74, 135, 95, 50]);
    }

    #[test]
    fn closure_is_cached_and_correct() {
        let g = fig16();
        let c = g.closure();
        assert!(c.reaches(n(0), n(4)));
        assert!(!c.reaches(n(4), n(0)));
        assert!(std::ptr::eq(c, g.closure()));
    }

    #[test]
    fn clones_start_cold_and_compare_equal() {
        let g = fig16();
        g.warm_analysis();
        assert_eq!(g.warm_labellings().len(), 8);
        let twin = g.clone();
        assert!(twin.warm_labellings().is_empty(), "clone must be cold");
        assert_eq!(g, twin, "equality ignores cache state");
        // The cold twin recomputes to identical values.
        assert_eq!(g.blevels_with_comm(), twin.blevels_with_comm());
        assert_eq!(g.alap_times(), twin.alap_times());
    }

    #[test]
    fn warm_analysis_materializes_everything() {
        let g = fig16();
        assert!(g.warm_labellings().is_empty());
        g.warm_analysis();
        assert_eq!(
            g.warm_labellings(),
            vec![
                "blevels_comm",
                "blevels_comp",
                "tlevels_comm",
                "tlevels_comp",
                "alap",
                "slacks",
                "critical_path",
                "closure",
            ]
        );
        // Debug output surfaces the warm set for diagnostics.
        assert!(format!("{g:?}").contains("blevels_comm"));
    }

    #[test]
    fn model_levels_cache_is_keyed_by_pricing() {
        let g = fig16();
        let uniform = g.model_levels(LevelCost::Uniform);
        assert_eq!(uniform.blevels, g.blevels_with_comm());
        assert_eq!(uniform.tlevels, g.tlevels_with_comm());
        assert_eq!(uniform.alap, g.alap_times());
        assert_eq!(uniform.critical_path_len(), g.critical_path_len());
        // Same key → same allocation; different key → different values.
        assert!(Arc::ptr_eq(&uniform, &g.model_levels(LevelCost::Uniform)));
        let scaled = LevelCost::Scaled {
            mul: 2,
            div: 1,
            add: 0,
        };
        let doubled = g.model_levels(scaled);
        assert!(!Arc::ptr_eq(&uniform, &doubled));
        assert_eq!(doubled.blevels, levels::blevels_with_model(&g, scaled));
        assert_ne!(doubled.blevels, uniform.blevels);
        // Both entries stay resident side by side.
        assert!(Arc::ptr_eq(&doubled, &g.model_levels(scaled)));
        assert!(g.warm_labellings().contains(&"model_levels"));
    }

    #[test]
    fn priced_levels_borrow_uniform_and_share_nonuniform() {
        let g = fig16();
        let view = PricedLevels::new(&g, LevelCost::Uniform);
        assert!(std::ptr::eq(view.blevels(), g.blevels_with_comm()));
        assert!(std::ptr::eq(view.alap(), g.alap_times()));
        let scaled = LevelCost::Scaled {
            mul: 3,
            div: 2,
            add: 7,
        };
        let view = PricedLevels::new(&g, scaled);
        assert_eq!(view.blevels(), &levels::blevels_with_model(&g, scaled)[..]);
        assert_eq!(view.tlevels(), &levels::tlevels_with_model(&g, scaled)[..]);
        assert_eq!(view.alap(), &levels::alap_with_model(&g, scaled)[..]);
        // The non-uniform pricing never leaks into the plain cache.
        assert_ne!(view.blevels(), g.blevels_with_comm());
    }

    #[test]
    fn model_cache_clones_cold() {
        let g = fig16();
        g.model_levels(LevelCost::Uniform);
        let twin = g.clone();
        assert!(!twin.warm_labellings().contains(&"model_levels"));
        assert_eq!(g, twin);
    }

    #[test]
    fn empty_graph_analysis() {
        let g = DagBuilder::new().build().unwrap();
        assert!(g.blevels_with_comm().is_empty());
        assert!(g.critical_path().is_empty());
        assert_eq!(g.critical_path_len(), 0);
        g.warm_analysis();
    }

    #[test]
    fn shared_across_threads() {
        let g = std::sync::Arc::new(fig16());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = std::sync::Arc::clone(&g);
                std::thread::spawn(move || g.blevels_with_comm().to_vec())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![150, 74, 135, 95, 50]);
        }
    }
}
