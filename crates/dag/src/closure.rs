//! Transitive closure and the three-valued ancestor/descendant
//! relation between nodes.
//!
//! The clan decomposition (and several schedulers' sanity checks) need
//! constant-time answers to "is `u` an ancestor of `v`?". The closure
//! is computed once per graph in `O(n·m/64)` word operations by
//! sweeping the reverse topological order and OR-ing descendant rows.

use crate::bitset::BitMatrix;
use crate::graph::{Dag, NodeId};

/// How two distinct nodes of a DAG relate in the transitive closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// The first node reaches the second (`u` is a proper ancestor of `v`).
    Ancestor,
    /// The second node reaches the first (`u` is a proper descendant of `v`).
    Descendant,
    /// Neither reaches the other.
    Unrelated,
}

/// Precomputed reachability of a [`Dag`].
#[derive(Debug, Clone)]
pub struct Closure {
    /// `desc[u]` row: true at `v` iff `u` properly reaches `v`.
    desc: BitMatrix,
    /// `anc[u]` row: true at `v` iff `v` properly reaches `u`.
    anc: BitMatrix,
}

impl Closure {
    /// Computes the closure of `g`.
    pub fn new(g: &Dag) -> Self {
        let n = g.num_nodes();
        let mut desc = BitMatrix::new(n);
        // Reverse topological sweep: when we process u, every
        // successor's descendant row is complete.
        for &u in g.topo_order().iter().rev() {
            for (s, _) in g.succs(u) {
                desc.set(u.index(), s.index());
                desc.or_row_into(s.index(), u.index());
            }
        }
        let mut anc = BitMatrix::new(n);
        for u in 0..n {
            for v in desc.row_iter(u) {
                anc.set(v, u);
            }
        }
        Closure { desc, anc }
    }

    /// True iff `u` properly reaches `v` (a path of ≥ 1 edge exists).
    #[inline]
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.desc.get(u.index(), v.index())
    }

    /// The three-valued relation between two *distinct* nodes.
    ///
    /// # Panics
    /// In debug builds if `u == v` (a node is neither its own ancestor
    /// nor descendant in a DAG — callers must not ask).
    #[inline]
    pub fn relation(&self, u: NodeId, v: NodeId) -> Relation {
        debug_assert_ne!(u, v, "relation is defined for distinct nodes");
        if self.reaches(u, v) {
            Relation::Ancestor
        } else if self.reaches(v, u) {
            Relation::Descendant
        } else {
            Relation::Unrelated
        }
    }

    /// Iterates the proper descendants of `u` in ascending index order.
    pub fn descendants(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.desc.row_iter(u.index()).map(|i| NodeId(i as u32))
    }

    /// Iterates the proper ancestors of `u` in ascending index order.
    pub fn ancestors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.anc.row_iter(u.index()).map(|i| NodeId(i as u32))
    }

    /// Number of proper descendants of `u`.
    pub fn num_descendants(&self, u: NodeId) -> usize {
        self.desc.row_count(u.index())
    }

    /// Number of proper ancestors of `u`.
    pub fn num_ancestors(&self, u: NodeId) -> usize {
        self.anc.row_count(u.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn sample() -> Dag {
        // 0 -> 1 -> 3
        // 0 -> 2 -> 3 -> 4,  5 isolated
        let mut b = DagBuilder::new();
        for _ in 0..6 {
            b.add_node(1);
        }
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
            b.add_edge(n(s), n(d), 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn reachability_matches_paths() {
        let c = Closure::new(&sample());
        assert!(c.reaches(n(0), n(4)));
        assert!(c.reaches(n(0), n(1)));
        assert!(c.reaches(n(2), n(4)));
        assert!(!c.reaches(n(1), n(2)));
        assert!(!c.reaches(n(4), n(0)));
        assert!(!c.reaches(n(0), n(5)));
        assert!(!c.reaches(n(0), n(0))); // proper reachability
    }

    #[test]
    fn relation_values() {
        let c = Closure::new(&sample());
        assert_eq!(c.relation(n(0), n(4)), Relation::Ancestor);
        assert_eq!(c.relation(n(4), n(0)), Relation::Descendant);
        assert_eq!(c.relation(n(1), n(2)), Relation::Unrelated);
        assert_eq!(c.relation(n(5), n(3)), Relation::Unrelated);
    }

    #[test]
    fn ancestors_and_descendants_are_duals() {
        let g = sample();
        let c = Closure::new(&g);
        for u in g.nodes() {
            for v in c.descendants(u) {
                assert!(c.ancestors(v).any(|a| a == u));
            }
        }
        assert_eq!(c.num_descendants(n(0)), 4);
        assert_eq!(c.num_ancestors(n(4)), 4);
        assert_eq!(c.num_ancestors(n(5)), 0);
        assert_eq!(c.num_descendants(n(5)), 0);
    }

    #[test]
    fn diamond_transitivity() {
        // Regression guard: closure must include multi-hop paths that
        // exist only through intermediate merges.
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..7).map(|_| b.add_node(1)).collect();
        // binary in-tree onto 6
        for (s, d) in [(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)] {
            b.add_edge(v[s], v[d], 1).unwrap();
        }
        let c = Closure::new(&b.build().unwrap());
        for leaf in 0..4u32 {
            assert!(c.reaches(n(leaf), n(6)));
        }
        assert_eq!(c.num_ancestors(n(6)), 6);
    }
}
