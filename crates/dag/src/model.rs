//! How level computations price a cross-processor edge: the
//! [`LevelCost`] knob that makes b-levels/t-levels/ALAP generic over
//! the machine's communication model.
//!
//! Path labellings are *machine-global*: a b-level does not know which
//! processor pair a message will cross, so a machine model reduces to
//! a single edge-pricing function for level purposes. The paper's §2
//! model prices a cross-processor edge at exactly its weight
//! ([`LevelCost::Uniform`]); link-aware models supply a representative
//! affine pricing ([`LevelCost::Scaled`]) — typically their mean
//! latency and per-unit cost — so priorities stay consistent with the
//! placement costs without the labelling needing per-pair detail.
//!
//! All arithmetic saturates: the torture corpus deliberately includes
//! near-`u64::MAX` weights, and a priority that pins at the ceiling is
//! preferable to a panic.

use crate::graph::Weight;

/// Edge pricing used by the level computations (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum LevelCost {
    /// The paper's §2 model: a cross-processor edge costs its weight.
    #[default]
    Uniform,
    /// Affine pricing `add + w·mul/div` — the machine-global
    /// approximation of a non-uniform model (e.g. mean link latency
    /// `add` and mean per-unit transfer cost `mul/div`).
    Scaled {
        /// Numerator of the per-unit transfer cost.
        mul: Weight,
        /// Denominator of the per-unit transfer cost (≥ 1; a zero is
        /// treated as 1 rather than dividing by zero).
        div: Weight,
        /// Flat per-message latency.
        add: Weight,
    },
}

impl LevelCost {
    /// Prices a cross-processor edge of weight `w`.
    #[inline]
    pub fn cross_cost(&self, w: Weight) -> Weight {
        match *self {
            LevelCost::Uniform => w,
            LevelCost::Scaled { mul, div, add } => {
                let div = div.max(1);
                add.saturating_add(w.saturating_mul(mul) / div)
            }
        }
    }

    /// Whether this is the paper's uniform pricing (the fast path:
    /// uniform levels share the plain [`Dag`](crate::Dag) accessors'
    /// memoized values).
    #[inline]
    pub fn is_uniform(&self) -> bool {
        matches!(self, LevelCost::Uniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_prices_at_weight() {
        assert_eq!(LevelCost::Uniform.cross_cost(0), 0);
        assert_eq!(LevelCost::Uniform.cross_cost(42), 42);
        assert!(LevelCost::Uniform.is_uniform());
    }

    #[test]
    fn scaled_is_affine() {
        let c = LevelCost::Scaled {
            mul: 3,
            div: 2,
            add: 10,
        };
        assert_eq!(c.cross_cost(0), 10);
        assert_eq!(c.cross_cost(4), 10 + 6);
        assert!(!c.is_uniform());
    }

    #[test]
    fn scaled_zero_divisor_and_overflow_saturate() {
        let c = LevelCost::Scaled {
            mul: 2,
            div: 0,
            add: 0,
        };
        assert_eq!(c.cross_cost(5), 10, "div 0 acts as 1");
        let big = LevelCost::Scaled {
            mul: Weight::MAX,
            div: 1,
            add: Weight::MAX,
        };
        assert_eq!(big.cross_cost(Weight::MAX), Weight::MAX);
    }

    #[test]
    fn free_communication_is_expressible() {
        let free = LevelCost::Scaled {
            mul: 0,
            div: 1,
            add: 0,
        };
        assert_eq!(free.cross_cost(1000), 0);
    }
}
