//! A minimal plain-text PDG format for fixtures, examples and ad-hoc
//! experiments.
//!
//! ```text
//! # comment
//! nodes 5
//! node 0 10        # node <index> <weight>
//! node 1 20
//! ...
//! edge 0 1 4       # edge <src> <dst> <comm-weight>
//! ```
//!
//! `nodes N` pre-declares the count; `node i w` lines may appear in
//! any order but every index in `0..N` must be assigned exactly once.

use crate::error::{DagError, Result};
use crate::graph::{Dag, DagBuilder, NodeId, Weight};
use std::fmt::Write as _;

/// Serializes `g` in the text format (round-trips through [`parse`]).
pub fn write(g: &Dag) -> String {
    let mut out = String::new();
    writeln!(out, "nodes {}", g.num_nodes()).unwrap();
    for v in g.nodes() {
        writeln!(out, "node {} {}", v.0, g.node_weight(v)).unwrap();
    }
    for e in g.edges() {
        writeln!(out, "edge {} {} {}", e.src.0, e.dst.0, e.weight).unwrap();
    }
    out
}

/// Parses the text format into a [`Dag`].
///
/// # Errors
/// [`DagError::Parse`] with a line number for malformed input, plus
/// the usual build-time errors (duplicate edges, cycles).
pub fn parse(text: &str) -> Result<Dag> {
    let mut n: Option<usize> = None;
    let mut weights: Vec<Option<Weight>> = Vec::new();
    let mut edges: Vec<(usize, usize, Weight)> = Vec::new();

    let err = |line: usize, msg: &str| DagError::Parse {
        line,
        msg: msg.to_string(),
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("nodes") => {
                if n.is_some() {
                    return Err(err(lineno, "duplicate `nodes` declaration"));
                }
                let count: usize = tok
                    .next()
                    .ok_or_else(|| err(lineno, "`nodes` needs a count"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid node count"))?;
                n = Some(count);
                weights = vec![None; count];
            }
            Some("node") => {
                let n = n.ok_or_else(|| err(lineno, "`node` before `nodes`"))?;
                let i: usize = tok
                    .next()
                    .ok_or_else(|| err(lineno, "`node` needs an index"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid node index"))?;
                let w: Weight = tok
                    .next()
                    .ok_or_else(|| err(lineno, "`node` needs a weight"))?
                    .parse()
                    .map_err(|_| err(lineno, "invalid node weight"))?;
                if i >= n {
                    return Err(err(lineno, "node index out of declared range"));
                }
                if weights[i].replace(w).is_some() {
                    return Err(err(lineno, "node declared twice"));
                }
            }
            Some("edge") => {
                let mut next_num = |what: &str| -> Result<u64> {
                    tok.next()
                        .ok_or_else(|| err(lineno, &format!("`edge` needs {what}")))?
                        .parse()
                        .map_err(|_| err(lineno, &format!("invalid {what}")))
                };
                let s = next_num("a source")? as usize;
                let d = next_num("a destination")? as usize;
                let w = next_num("a weight")?;
                edges.push((s, d, w));
            }
            Some(other) => {
                return Err(err(lineno, &format!("unknown directive `{other}`")));
            }
            None => unreachable!("empty lines were skipped"),
        }
    }

    let n = n.ok_or_else(|| err(text.lines().count().max(1), "missing `nodes` declaration"))?;
    let mut b = DagBuilder::with_capacity(n, edges.len());
    for (i, w) in weights.iter().enumerate() {
        let w = w.ok_or_else(|| DagError::Parse {
            line: 0,
            msg: format!("node {i} was never declared"),
        })?;
        b.add_node(w);
    }
    for (s, d, w) in edges {
        let check = |i: usize| -> Result<NodeId> {
            if i >= n {
                Err(DagError::NodeOutOfRange { index: i, len: n })
            } else {
                Ok(NodeId(i as u32))
            }
        };
        b.add_edge(check(s)?, check(d)?, w)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Figure 16 of the paper
nodes 5
node 0 10
node 1 20
node 2 30
node 3 40
node 4 50
edge 0 1 4
edge 0 2 3
edge 2 3 5
edge 1 4 4
edge 3 4 6
";

    #[test]
    fn parse_sample() {
        let g = parse(SAMPLE).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.serial_time(), 150);
        assert_eq!(g.node_weight(NodeId(3)), 40);
    }

    #[test]
    fn roundtrip() {
        let g = parse(SAMPLE).unwrap();
        let g2 = parse(&write(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse("\n# hi\nnodes 1\n  node 0 7  # weight seven\n\n").unwrap();
        assert_eq!(g.serial_time(), 7);
    }

    #[test]
    fn error_cases() {
        // All the ways input can be malformed, each naming its line.
        let cases: &[(&str, &str)] = &[
            ("node 0 1", "before `nodes`"),
            ("nodes 1\nnodes 1", "duplicate"),
            ("nodes x", "invalid node count"),
            ("nodes 1\nnode 5 1", "out of declared range"),
            ("nodes 1\nnode 0 1\nnode 0 2", "twice"),
            ("nodes 2\nnode 0 1", "never declared"),
            ("nodes 1\nnode 0 1\nedge 0", "needs a destination"),
            ("nodes 1\nnode 0 1\nfrobnicate", "unknown directive"),
            ("", "missing `nodes`"),
        ];
        for (text, needle) in cases {
            let e = parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "input {text:?}: expected {needle:?} in {e}"
            );
        }
    }

    #[test]
    fn edge_out_of_range_is_structural_error() {
        let e = parse("nodes 1\nnode 0 1\nedge 0 9 1").unwrap_err();
        assert!(matches!(e, DagError::NodeOutOfRange { index: 9, .. }));
    }

    #[test]
    fn cycle_detected_at_build() {
        let e = parse("nodes 2\nnode 0 1\nnode 1 1\nedge 0 1 1\nedge 1 0 1").unwrap_err();
        assert!(matches!(e, DagError::Cycle(_)));
    }
}
