//! Serde support (feature `serde`).
//!
//! A [`Dag`] serializes as its raw construction data — node weights
//! plus `(src, dst, weight)` edge triples — and re-validates through
//! [`DagBuilder`] on deserialization, so hand-edited or corrupted
//! payloads (duplicate edges, cycles, out-of-range endpoints) are
//! rejected with the builder's error message rather than producing an
//! inconsistent graph.

use crate::graph::{Dag, DagBuilder, NodeId, Weight};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// The serialized shape of a [`Dag`].
#[derive(Serialize, Deserialize)]
struct RawDag {
    node_weights: Vec<Weight>,
    edges: Vec<(u32, u32, Weight)>,
}

impl Serialize for Dag {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let raw = RawDag {
            node_weights: self.node_weights().to_vec(),
            edges: self
                .edges()
                .iter()
                .map(|e| (e.src.0, e.dst.0, e.weight))
                .collect(),
        };
        raw.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Dag {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let raw = RawDag::deserialize(deserializer)?;
        let mut b = DagBuilder::with_capacity(raw.node_weights.len(), raw.edges.len());
        for w in raw.node_weights {
            b.add_node(w);
        }
        for (s, d, w) in raw.edges {
            b.add_edge(NodeId(s), NodeId(d), w)
                .map_err(D::Error::custom)?;
        }
        b.build().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let n: Vec<_> = [10u64, 20, 30].iter().map(|&w| b.add_node(w)).collect();
        b.add_edge(n[0], n[1], 5).unwrap();
        b.add_edge(n[1], n[2], 7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let g = sample();
        let json = serde_json::to_string(&g).unwrap();
        assert!(json.contains("node_weights"));
        let back: Dag = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn deserialization_revalidates_cycles() {
        let json = r#"{"node_weights":[1,1],"edges":[[0,1,1],[1,0,1]]}"#;
        let err = serde_json::from_str::<Dag>(json).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn deserialization_revalidates_duplicates_and_ranges() {
        let dup = r#"{"node_weights":[1,1],"edges":[[0,1,1],[0,1,2]]}"#;
        assert!(serde_json::from_str::<Dag>(dup)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        let oob = r#"{"node_weights":[1],"edges":[[0,9,1]]}"#;
        assert!(serde_json::from_str::<Dag>(oob)
            .unwrap_err()
            .to_string()
            .contains("out of range"));
    }
}
