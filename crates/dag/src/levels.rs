//! Path-length labellings: b-levels, t-levels, ALAP times, critical
//! paths — with and without communication costs.
//!
//! These are the shared vocabulary of every heuristic in the paper:
//!
//! * DSC's priority is `tlevel + blevel` (both including edge weights);
//! * MCP binds ALAP times `T_L(v) = CP − blevel(v)`;
//! * MH's priority is the Gerasoulis/Yang *level* (b-level with
//!   communication);
//! * HU's priority is the classic computation-only level.

use crate::graph::{Dag, NodeId, Weight};
use crate::model::LevelCost;

/// *Bottom level with communication*: the weight of the heaviest path
/// from the start of `v` to an exit node, counting node weights
/// (including `v` itself) and edge weights.
///
/// This is the "level" of Gerasoulis & Yang used by DSC and MH.
pub fn blevels_with_comm(g: &Dag) -> Vec<Weight> {
    blevels(g, true)
}

/// *Bottom level without communication*: as [`blevels_with_comm`] but
/// ignoring edge weights — the classic Hu level.
pub fn blevels_computation(g: &Dag) -> Vec<Weight> {
    blevels(g, false)
}

/// *Bottom level* under an arbitrary edge pricing: as
/// [`blevels_with_comm`] but every edge weight passes through
/// `cost.cross_cost`. `LevelCost::Uniform` reproduces
/// [`blevels_with_comm`] exactly.
pub fn blevels_with_model(g: &Dag, cost: LevelCost) -> Vec<Weight> {
    blevels_by(g, |c| cost.cross_cost(c))
}

fn blevels(g: &Dag, with_comm: bool) -> Vec<Weight> {
    if with_comm {
        blevels_by(g, |c| c)
    } else {
        blevels_by(g, |_| 0)
    }
}

fn blevels_by(g: &Dag, edge: impl Fn(Weight) -> Weight) -> Vec<Weight> {
    let mut bl = vec![0; g.num_nodes()];
    for &v in g.topo_order().iter().rev() {
        let best = g
            .succs(v)
            .map(|(s, c)| bl[s.index()] + edge(c))
            .max()
            .unwrap_or(0);
        bl[v.index()] = g.node_weight(v) + best;
    }
    bl
}

/// *Top level with communication*: the weight of the heaviest path
/// from a source node to the start of `v` (excluding `v`'s own
/// weight). Sources have t-level 0. This is a node's earliest possible
/// start when every task sits on its own processor.
pub fn tlevels_with_comm(g: &Dag) -> Vec<Weight> {
    tlevels(g, true)
}

/// *Top level without communication* — edge weights ignored.
pub fn tlevels_computation(g: &Dag) -> Vec<Weight> {
    tlevels(g, false)
}

/// *Top level* under an arbitrary edge pricing (cf.
/// [`blevels_with_model`]).
pub fn tlevels_with_model(g: &Dag, cost: LevelCost) -> Vec<Weight> {
    tlevels_by(g, |c| cost.cross_cost(c))
}

fn tlevels(g: &Dag, with_comm: bool) -> Vec<Weight> {
    if with_comm {
        tlevels_by(g, |c| c)
    } else {
        tlevels_by(g, |_| 0)
    }
}

fn tlevels_by(g: &Dag, edge: impl Fn(Weight) -> Weight) -> Vec<Weight> {
    let mut tl = vec![0; g.num_nodes()];
    for &v in g.topo_order() {
        let best = g
            .preds(v)
            .map(|(p, c)| tl[p.index()] + g.node_weight(p) + edge(c))
            .max()
            .unwrap_or(0);
        tl[v.index()] = best;
    }
    tl
}

/// The critical path length including communication — the makespan of
/// the fully parallel (one task per processor) schedule, equal to
/// `max_v (tlevel(v) + blevel(v))`.
pub fn critical_path_len(g: &Dag) -> Weight {
    blevels_with_comm(g).into_iter().max().unwrap_or(0)
}

/// The critical path length counting only computation (edge weights
/// zeroed) — the classic lower bound on any schedule's makespan.
pub fn critical_path_len_computation(g: &Dag) -> Weight {
    blevels_computation(g).into_iter().max().unwrap_or(0)
}

/// One maximal-weight source-to-sink path (node weights + edge
/// weights). Ties break toward smaller node indices so the result is
/// deterministic. Empty for the empty graph.
pub fn critical_path(g: &Dag) -> Vec<NodeId> {
    let bl = blevels_with_comm(g);
    let Some(mut cur) = g
        .nodes()
        .filter(|v| g.in_degree(*v) == 0)
        .min_by_key(|v| (std::cmp::Reverse(bl[v.index()]), v.0))
    else {
        return Vec::new();
    };
    let mut path = vec![cur];
    loop {
        let next = g
            .succs(cur)
            .min_by_key(|&(s, c)| (std::cmp::Reverse(bl[s.index()] + c), s.0))
            .map(|(s, _)| s);
        match next {
            Some(s) => {
                path.push(s);
                cur = s;
            }
            None => break,
        }
    }
    path
}

/// ALAP (as-late-as-possible) start times with communication, as used
/// by MCP: `alap(v) = CP − blevel(v)`. A node on the critical path has
/// `alap(v) == tlevel(v)`.
pub fn alap_times(g: &Dag) -> Vec<Weight> {
    let bl = blevels_with_comm(g);
    let cp = bl.iter().copied().max().unwrap_or(0);
    bl.into_iter().map(|b| cp - b).collect()
}

/// ALAP start times under an arbitrary edge pricing (cf.
/// [`blevels_with_model`]).
pub fn alap_with_model(g: &Dag, cost: LevelCost) -> Vec<Weight> {
    let bl = blevels_with_model(g, cost);
    let cp = bl.iter().copied().max().unwrap_or(0);
    bl.into_iter().map(|b| cp - b).collect()
}

/// Per-node *slack*: how much a node's start can slip without
/// stretching the critical path, `CP − (tlevel(v) + blevel(v))`
/// (equivalently `alap(v) − tlevel(v)`). Critical-path nodes have
/// slack 0.
pub fn slacks(g: &Dag) -> Vec<Weight> {
    let bl = blevels_with_comm(g);
    let tl = tlevels_with_comm(g);
    let cp = bl.iter().copied().max().unwrap_or(0);
    bl.iter().zip(&tl).map(|(&b, &t)| cp - (t + b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// The worked example of the paper's appendix (Figures 14/16):
    /// node weights 10,20,30,40,50 (1-based nodes 1..5); edge weights
    /// reconstructed from the level table of Figure 14
    /// (150, 74, 135, 95, 50): 1→2 (5), 1→3 (5), 3→4 (10), 2→5 (4),
    /// 4→5 (5). Renumbered 0-based here.
    fn fig16() -> Dag {
        let mut b = DagBuilder::new();
        for w in [10u64, 20, 30, 40, 50] {
            b.add_node(w);
        }
        for (s, d, c) in [(0, 1, 5u64), (0, 2, 5), (2, 3, 10), (1, 4, 4), (3, 4, 5)] {
            b.add_edge(n(s), n(d), c).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn fig16_blevels_match_paper_level_table() {
        // Figure 14 of the paper tabulates the Gerasoulis/Yang levels
        // for this graph: 150, 74, 135, 95, 50 for nodes 1..5.
        let g = fig16();
        let bl = blevels_with_comm(&g);
        assert_eq!(bl, vec![150, 74, 135, 95, 50]);
    }

    #[test]
    fn computation_blevels_ignore_edges() {
        let g = fig16();
        let bl = blevels_computation(&g);
        assert_eq!(bl[4], 50);
        assert_eq!(bl[3], 90);
        assert_eq!(bl[2], 120);
        assert_eq!(bl[1], 70);
        assert_eq!(bl[0], 130);
    }

    #[test]
    fn tlevels() {
        let g = fig16();
        let tl = tlevels_with_comm(&g);
        assert_eq!(tl[0], 0);
        assert_eq!(tl[1], 10 + 5);
        assert_eq!(tl[2], 10 + 5);
        assert_eq!(tl[3], 15 + 30 + 10);
        assert_eq!(tl[4], (55 + 40 + 5));
        let tlc = tlevels_computation(&g);
        assert_eq!(tlc[3], 10 + 30);
        assert_eq!(tlc[4], 80);
    }

    #[test]
    fn critical_path_lengths() {
        let g = fig16();
        assert_eq!(critical_path_len(&g), 10 + 5 + 30 + 10 + 40 + 5 + 50);
        assert_eq!(critical_path_len_computation(&g), 130);
        // tlevel + blevel is maximized exactly at CP nodes.
        let tl = tlevels_with_comm(&g);
        let bl = blevels_with_comm(&g);
        let cp = critical_path_len(&g);
        for v in [0usize, 2, 3, 4] {
            assert_eq!(tl[v] + bl[v], cp, "node {v} lies on the CP");
        }
        assert!(tl[1] + bl[1] < cp);
    }

    #[test]
    fn critical_path_extraction() {
        let g = fig16();
        assert_eq!(critical_path(&g), vec![n(0), n(2), n(3), n(4)]);
    }

    #[test]
    fn alap_of_cp_nodes_equals_tlevel() {
        let g = fig16();
        let alap = alap_times(&g);
        let tl = tlevels_with_comm(&g);
        for v in [0usize, 2, 3, 4] {
            assert_eq!(alap[v], tl[v]);
        }
        // Node 1 has slack: alap = 150 − 74 = 76.
        assert!(alap[1] > tl[1]);
        assert_eq!(alap[1], 76);
    }

    #[test]
    fn slacks_are_zero_exactly_on_the_critical_path() {
        let g = fig16();
        let s = slacks(&g);
        assert_eq!(s[0], 0);
        assert_eq!(s[2], 0);
        assert_eq!(s[3], 0);
        assert_eq!(s[4], 0);
        // Node 1: tl 15, bl 74 → slack 150 − 89 = 61.
        assert_eq!(s[1], 61);
        // Slack equals alap − tlevel everywhere.
        let alap = alap_times(&g);
        let tl = tlevels_with_comm(&g);
        for v in 0..5 {
            assert_eq!(s[v], alap[v] - tl[v]);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let g = DagBuilder::new().build().unwrap();
        assert_eq!(critical_path_len(&g), 0);
        assert!(critical_path(&g).is_empty());
        let mut b = DagBuilder::new();
        b.add_node(7);
        let g = b.build().unwrap();
        assert_eq!(critical_path_len(&g), 7);
        assert_eq!(critical_path(&g), vec![n(0)]);
        assert_eq!(alap_times(&g), vec![0]);
    }

    #[test]
    fn model_levels_reduce_to_the_uniform_and_free_cases() {
        use crate::model::LevelCost;
        let g = fig16();
        assert_eq!(
            blevels_with_model(&g, LevelCost::Uniform),
            blevels_with_comm(&g)
        );
        assert_eq!(
            tlevels_with_model(&g, LevelCost::Uniform),
            tlevels_with_comm(&g)
        );
        assert_eq!(alap_with_model(&g, LevelCost::Uniform), alap_times(&g));
        let free = LevelCost::Scaled {
            mul: 0,
            div: 1,
            add: 0,
        };
        assert_eq!(blevels_with_model(&g, free), blevels_computation(&g));
        assert_eq!(tlevels_with_model(&g, free), tlevels_computation(&g));
    }

    #[test]
    fn scaled_levels_reprice_every_edge() {
        use crate::model::LevelCost;
        // Doubling every edge weight: fig16's level of node 0 becomes
        // 10 + 2·5 + 30 + 2·10 + 40 + 2·5 + 50 = 170.
        let g = fig16();
        let twice = LevelCost::Scaled {
            mul: 2,
            div: 1,
            add: 0,
        };
        let bl = blevels_with_model(&g, twice);
        assert_eq!(bl[0], 170);
        assert_eq!(bl[4], 50, "exit nodes are comm-free");
    }

    #[test]
    fn cp_ties_resolve_deterministically() {
        // Two identical parallel chains: path must pick node 1 (the
        // smaller index) at the fork.
        let mut b = DagBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_node(10)).collect();
        b.add_edge(v[0], v[1], 5).unwrap();
        b.add_edge(v[0], v[2], 5).unwrap();
        b.add_edge(v[1], v[3], 5).unwrap();
        b.add_edge(v[2], v[3], 5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(critical_path(&g), vec![n(0), n(1), n(3)]);
    }
}
