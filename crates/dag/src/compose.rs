//! Series / parallel graph composition.
//!
//! The algebra behind series-parallel PDGs (and clan parse trees):
//! [`parallel`] places graphs side by side; [`series`] runs them in
//! sequence, joining every sink of one stage to every source of the
//! next (the complete bipartite junction that makes each stage a clan
//! of the result). The random parse-tree generator in `dagsched-gen`
//! is this algebra driven by coin flips.

use crate::error::Result;
use crate::graph::{Dag, DagBuilder, NodeId, Weight};

/// Disjoint union: the graphs run side by side with no edges between
/// them. Node ids of graph `k` are offset by the sizes of graphs
/// `0..k`. Returns the composed graph; any construction failure
/// surfaces as a [`crate::DagError`] instead of a panic.
pub fn parallel(parts: &[&Dag]) -> Result<Dag> {
    let nodes: usize = parts.iter().map(|g| g.num_nodes()).sum();
    let edges: usize = parts.iter().map(|g| g.num_edges()).sum();
    let mut b = DagBuilder::with_capacity(nodes, edges);
    for g in parts {
        let base = b.num_nodes() as u32;
        for &w in g.node_weights() {
            b.add_node(w);
        }
        for e in g.edges() {
            b.add_edge(NodeId(base + e.src.0), NodeId(base + e.dst.0), e.weight)?;
        }
    }
    b.build()
}

/// Sequential composition: stage `k+1` starts after stage `k`. Every
/// sink of stage `k` is connected to every source of stage `k+1`;
/// `junction(k, sink, source)` supplies each new edge's weight (the
/// stage index `k` is the junction between stages `k` and `k+1`, with
/// sink/source ids local to their stages). Construction failures
/// surface as a [`crate::DagError`] instead of a panic.
pub fn series(
    parts: &[&Dag],
    mut junction: impl FnMut(usize, NodeId, NodeId) -> Weight,
) -> Result<Dag> {
    let nodes: usize = parts.iter().map(|g| g.num_nodes()).sum();
    let mut b = DagBuilder::with_capacity(nodes, nodes * 2);
    let mut bases = Vec::with_capacity(parts.len());
    for g in parts {
        let base = b.num_nodes() as u32;
        bases.push(base);
        for &w in g.node_weights() {
            b.add_node(w);
        }
        for e in g.edges() {
            b.add_edge(NodeId(base + e.src.0), NodeId(base + e.dst.0), e.weight)?;
        }
    }
    for k in 0..parts.len().saturating_sub(1) {
        for snk in parts[k].sinks() {
            for src in parts[k + 1].sources() {
                let w = junction(k, snk, src);
                b.add_edge(NodeId(bases[k] + snk.0), NodeId(bases[k + 1] + src.0), w)?;
            }
        }
    }
    b.build()
}

/// A single task as a graph — the unit of the algebra.
pub fn task(weight: Weight) -> Dag {
    let mut b = DagBuilder::with_capacity(1, 0);
    b.add_node(weight);
    b.build().expect("a single node is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::topo;

    #[test]
    fn task_is_the_unit() {
        let t = task(7);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.serial_time(), 7);
    }

    #[test]
    fn parallel_is_a_disjoint_union() {
        let a = task(1);
        let b2 = series(&[&task(2), &task(3)], |_, _, _| 5).unwrap();
        let p = parallel(&[&a, &b2]).unwrap();
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.num_edges(), 1);
        assert_eq!(p.sources().len(), 2);
        assert_eq!(p.serial_time(), 6);
        // Offsets preserved the inner edge.
        assert!(p
            .succs(crate::graph::NodeId(1))
            .any(|(d, w)| d.0 == 2 && w == 5));
    }

    #[test]
    fn series_joins_sinks_to_sources_completely() {
        let fork = parallel(&[&task(1), &task(2)]).unwrap(); // two sinks
        let join = parallel(&[&task(3), &task(4)]).unwrap(); // two sources
        let g = series(&[&fork, &join], |k, _, _| (k + 1) as u64 * 10).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4); // complete bipartite 2×2
        assert!(g.edges().iter().all(|e| e.weight == 10));
        assert_eq!(g.sources().len(), 2);
        assert_eq!(g.sinks().len(), 2);
        assert_eq!(topo::height(&g), 2);
    }

    #[test]
    fn junction_callback_sees_local_ids_and_stages() {
        let a = task(1);
        let b2 = task(2);
        let c = task(3);
        let mut calls = Vec::new();
        let _ = series(&[&a, &b2, &c], |k, snk, src| {
            calls.push((k, snk.0, src.0));
            1
        })
        .unwrap();
        assert_eq!(calls, vec![(0, 0, 0), (1, 0, 0)]);
    }

    #[test]
    fn fork_join_via_the_algebra() {
        // series(task, parallel(task×3), task) = fork-join.
        let mids = parallel(&[&task(10), &task(10), &task(10)]).unwrap();
        let g = series(&[&task(5), &mids, &task(5)], |_, _, _| 2).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        // Each stage is a clan ⇒ the parse is fully series-parallel:
        // granularity well defined, height 3.
        assert_eq!(topo::height(&g), 3);
        assert!(metrics::granularity(&g) > 1.0);
    }

    #[test]
    fn empty_parts_compose() {
        let none = parallel(&[]).unwrap();
        assert_eq!(none.num_nodes(), 0);
        let single = series(&[&task(4)], |_, _, _| 1).unwrap();
        assert_eq!(single.num_nodes(), 1);
    }
}
