//! Graphviz DOT export for PDGs.

use crate::graph::Dag;
use std::fmt::Write as _;

/// Renders `g` as a Graphviz `digraph`. Node labels show
/// `index (weight)`, edge labels show the communication cost.
pub fn to_dot(g: &Dag, name: &str) -> String {
    let mut out = String::with_capacity(64 + 32 * (g.num_nodes() + g.num_edges()));
    let safe: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    writeln!(out, "digraph {safe} {{").unwrap();
    writeln!(out, "  rankdir=TB;").unwrap();
    writeln!(out, "  node [shape=circle];").unwrap();
    for v in g.nodes() {
        writeln!(
            out,
            "  n{} [label=\"{}\\n({})\"];",
            v.0,
            v.0,
            g.node_weight(v)
        )
        .unwrap();
    }
    for e in g.edges() {
        writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            e.src.0, e.dst.0, e.weight
        )
        .unwrap();
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    #[test]
    fn renders_nodes_and_edges() {
        let mut b = DagBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(20);
        b.add_edge(a, c, 5).unwrap();
        let dot = to_dot(&b.build().unwrap(), "demo graph!");
        assert!(dot.starts_with("digraph demo_graph_ {"));
        assert!(dot.contains("n0 [label=\"0\\n(10)\"];"));
        assert!(dot.contains("n1 [label=\"1\\n(20)\"];"));
        assert!(dot.contains("n0 -> n1 [label=\"5\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let dot = to_dot(&DagBuilder::new().build().unwrap(), "empty");
        assert!(dot.contains("digraph empty {"));
        assert!(dot.contains('}'));
    }
}
