//! Topological orders and layerings beyond the canonical order cached
//! on [`Dag`].

use crate::graph::{Dag, NodeId};

/// Positions of each node in `order`: `pos[v] = i` iff `order[i] == v`.
pub fn positions(order: &[NodeId], num_nodes: usize) -> Vec<usize> {
    let mut pos = vec![usize::MAX; num_nodes];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    pos
}

/// True iff `order` is a permutation of all nodes that respects every
/// edge of `g`.
pub fn is_topological(g: &Dag, order: &[NodeId]) -> bool {
    if order.len() != g.num_nodes() {
        return false;
    }
    let pos = positions(order, g.num_nodes());
    if pos.contains(&usize::MAX) {
        return false;
    }
    g.edges()
        .iter()
        .all(|e| pos[e.src.index()] < pos[e.dst.index()])
}

/// Assigns each node its *depth layer*: sources are layer 0, every
/// other node is one more than its deepest predecessor. Returns
/// per-node layers.
pub fn depth_layers(g: &Dag) -> Vec<usize> {
    let mut layer = vec![0usize; g.num_nodes()];
    for &v in g.topo_order() {
        let l = g
            .preds(v)
            .map(|(p, _)| layer[p.index()] + 1)
            .max()
            .unwrap_or(0);
        layer[v.index()] = l;
    }
    layer
}

/// Groups nodes by [`depth_layers`]; `result[l]` lists the nodes of
/// layer `l` in ascending index order.
pub fn layering(g: &Dag) -> Vec<Vec<NodeId>> {
    let layers = depth_layers(g);
    let depth = layers.iter().copied().max().map_or(0, |d| d + 1);
    let mut out = vec![Vec::new(); depth];
    for v in g.nodes() {
        out[layers[v.index()]].push(v);
    }
    out
}

/// The *height* of the DAG: number of layers (0 for the empty graph).
pub fn height(g: &Dag) -> usize {
    layering(g).len()
}

/// The maximum number of nodes in any single layer — a cheap upper
/// bound proxy for available parallelism.
pub fn max_width(g: &Dag) -> usize {
    layering(g).iter().map(Vec::len).max().unwrap_or(0)
}

/// A topological order sorted by a per-node priority (descending),
/// with edge constraints respected: repeatedly emits the ready node of
/// highest priority. Ties break toward the smaller node index, making
/// the result deterministic.
pub fn priority_topo_order(g: &Dag, priority: &[u64]) -> Vec<NodeId> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    assert_eq!(priority.len(), g.num_nodes());
    let mut in_deg: Vec<u32> = g.nodes().map(|v| g.in_degree(v) as u32).collect();
    // Max-heap on (priority, Reverse(index)).
    let mut heap: BinaryHeap<(u64, Reverse<u32>)> = g
        .nodes()
        .filter(|&v| in_deg[v.index()] == 0)
        .map(|v| (priority[v.index()], Reverse(v.0)))
        .collect();
    let mut order = Vec::with_capacity(g.num_nodes());
    while let Some((_, Reverse(vi))) = heap.pop() {
        let v = NodeId(vi);
        order.push(v);
        for (s, _) in g.succs(v) {
            let d = &mut in_deg[s.index()];
            *d -= 1;
            if *d == 0 {
                heap.push((priority[s.index()], Reverse(s.0)));
            }
        }
    }
    debug_assert_eq!(order.len(), g.num_nodes());
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn chain(n: usize) -> Dag {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(1)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1).unwrap();
        }
        b.build().unwrap()
    }

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1)).collect();
        b.add_edge(n[0], n[1], 1).unwrap();
        b.add_edge(n[0], n[2], 1).unwrap();
        b.add_edge(n[1], n[3], 1).unwrap();
        b.add_edge(n[2], n[3], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn canonical_order_is_topological() {
        for g in [chain(5), diamond()] {
            assert!(is_topological(&g, g.topo_order()));
        }
    }

    #[test]
    fn rejects_non_topological_orders() {
        let g = chain(3);
        let rev: Vec<NodeId> = g.topo_order().iter().rev().copied().collect();
        assert!(!is_topological(&g, &rev));
        assert!(!is_topological(&g, &g.topo_order()[..2])); // wrong length
                                                            // Duplicate entries are not a permutation.
        let dup = vec![NodeId(0), NodeId(0), NodeId(1)];
        assert!(!is_topological(&g, &dup));
    }

    #[test]
    fn chain_layers() {
        let g = chain(4);
        assert_eq!(depth_layers(&g), vec![0, 1, 2, 3]);
        assert_eq!(height(&g), 4);
        assert_eq!(max_width(&g), 1);
    }

    #[test]
    fn diamond_layers() {
        let g = diamond();
        assert_eq!(depth_layers(&g), vec![0, 1, 1, 2]);
        let l = layering(&g);
        assert_eq!(l.len(), 3);
        assert_eq!(l[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(max_width(&g), 2);
    }

    #[test]
    fn empty_graph_layering() {
        let g = DagBuilder::new().build().unwrap();
        assert_eq!(height(&g), 0);
        assert_eq!(max_width(&g), 0);
    }

    #[test]
    fn priority_order_prefers_high_priority_ready_nodes() {
        let g = diamond();
        // Prefer node 2 over node 1.
        let order = priority_topo_order(&g, &[0, 1, 9, 0]);
        assert!(is_topological(&g, &order));
        let pos = positions(&order, 4);
        assert!(pos[2] < pos[1]);
        // Equal priorities break ties toward the smaller index.
        let order = priority_topo_order(&g, &[0, 5, 5, 0]);
        let pos = positions(&order, 4);
        assert!(pos[1] < pos[2]);
    }
}
