//! # dagsched-dag — weighted-DAG substrate
//!
//! The foundational data structure of the `dagsched` workspace: a
//! node- and edge-weighted directed acyclic graph representing a
//! *Program Dependence Graph* (PDG) in the sense of Khan, McCreary &
//! Jones (ICPP 1994) — each node is a task with a processing time,
//! each edge a precedence constraint whose weight is the
//! communication cost paid when its endpoints run on different
//! processors.
//!
//! The crate provides:
//!
//! * [`Dag`] / [`DagBuilder`] — immutable CSR-style graph storage with
//!   a mutable builder (cycle detection at build time);
//! * [`topo`] — topological orders and layerings;
//! * [`bitset`] — fixed-size bit sets and bit matrices used by the
//!   transitive closure and by the clan decomposition crate;
//! * [`closure`] — ancestor/descendant transitive closure and the
//!   three-valued node [`closure::Relation`];
//! * [`levels`] — b-levels, t-levels, ALAP times and critical paths,
//!   with and without communication costs;
//! * [`model`] — the [`LevelCost`] edge pricing making those level
//!   computations generic over the machine's communication model;
//! * [`analysis`] — the per-graph cache memoizing those labellings
//!   (and the closure) behind accessor methods on [`Dag`], so a graph
//!   scheduled by several heuristics computes each at most once;
//! * [`metrics`] — the paper's graph classification metrics
//!   (granularity, anchor out-degree, node weight range) and basic
//!   statistics;
//! * [`transform`] — transpose, induced subgraphs, virtual
//!   source/sink augmentation;
//! * [`dot`] — Graphviz export; [`textio`] — a small plain-text
//!   format for fixtures and examples.
//!
//! ## Quick start
//!
//! ```
//! use dagsched_dag::{DagBuilder, metrics};
//!
//! // The 5-node graph of Figure 16 in the paper.
//! let mut b = DagBuilder::new();
//! let n: Vec<_> = [10u64, 20, 30, 40, 50].iter().map(|&w| b.add_node(w)).collect();
//! b.add_edge(n[0], n[1], 4).unwrap();
//! b.add_edge(n[0], n[2], 3).unwrap();
//! b.add_edge(n[2], n[3], 5).unwrap();
//! b.add_edge(n[1], n[4], 4).unwrap();
//! b.add_edge(n[3], n[4], 6).unwrap();
//! let g = b.build().unwrap();
//!
//! assert_eq!(g.num_nodes(), 5);
//! assert_eq!(g.serial_time(), 150);
//! assert!(metrics::granularity(&g) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bitset;
pub mod closure;
pub mod compose;
pub mod dot;
pub mod error;
pub mod graph;
pub mod levels;
pub mod metrics;
pub mod model;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod stg;
pub mod textio;
pub mod topo;
pub mod transform;

pub use error::{DagError, Result};
pub use graph::{Dag, DagBuilder, EdgeId, NodeId, Weight};
pub use model::LevelCost;
