//! Error type shared by the DAG substrate.

use std::fmt;

/// Errors produced while building, transforming or parsing DAGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge refers to a node index that does not exist.
    NodeOutOfRange {
        /// The offending node index.
        index: usize,
        /// Number of nodes that exist.
        len: usize,
    },
    /// A self-loop `(v, v)` was added; DAGs cannot contain them.
    SelfLoop(usize),
    /// The same `(src, dst)` pair was added twice.
    DuplicateEdge {
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
    },
    /// The edge set contains a directed cycle; one witness node on the
    /// cycle is reported.
    Cycle(usize),
    /// A parse error from the plain-text graph format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange { index, len } => {
                write!(f, "node index {index} out of range (graph has {len} nodes)")
            }
            DagError::SelfLoop(v) => write!(f, "self-loop on node {v} is not allowed in a DAG"),
            DagError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge ({src} -> {dst})")
            }
            DagError::Cycle(v) => write!(f, "edge set contains a cycle through node {v}"),
            DagError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DagError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DagError::NodeOutOfRange { index: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        assert!(DagError::SelfLoop(2).to_string().contains("self-loop"));
        assert!(DagError::DuplicateEdge { src: 1, dst: 2 }
            .to_string()
            .contains("duplicate"));
        assert!(DagError::Cycle(0).to_string().contains("cycle"));
        let p = DagError::Parse {
            line: 4,
            msg: "bad weight".into(),
        };
        assert!(p.to_string().contains("line 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DagError::Cycle(1));
    }
}
