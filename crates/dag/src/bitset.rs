//! Fixed-capacity bit sets and square bit matrices.
//!
//! The transitive closure ([`crate::closure`]) and the clan
//! decomposition (in `dagsched-clans`) are bulk set-algebra workloads;
//! packing membership into `u64` words turns the inner loops into
//! word-wide OR/AND sweeps. This is a deliberately small, dependency-
//! free implementation rather than pulling in a bitset crate.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` values in `0..len`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for values `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// A set containing every value in `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Builds a set from an iterator of members.
    pub fn from_iter_with_len(len: usize, it: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for i in it {
            s.insert(i);
        }
        s
    }

    /// Capacity (the `len` this set was created with).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`. Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes `i` if present.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no member is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union. Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection. Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place difference (`self - other`). Panics on capacity mismatch.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// True iff the sets share at least one member.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True iff every member of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending iterator over the members of a [`BitSet`].
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + tz)
    }
}

/// A square boolean matrix stored as one [`BitSet`]-style row per
/// index — the representation used for ancestor/descendant closures.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An `n × n` all-false matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD_BITS);
        Self {
            n,
            words_per_row,
            words: vec![0; n * words_per_row],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets `(row, col)` to true.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.n && col < self.n);
        self.words[row * self.words_per_row + col / WORD_BITS] |= 1u64 << (col % WORD_BITS);
    }

    /// Reads `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.n && col < self.n);
        (self.words[row * self.words_per_row + col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1
    }

    /// ORs `src_row` into `dst_row` (row-level reachability merge).
    pub fn or_row_into(&mut self, src_row: usize, dst_row: usize) {
        if src_row == dst_row {
            return;
        }
        let w = self.words_per_row;
        let (lo, hi) = if src_row < dst_row {
            (src_row, dst_row)
        } else {
            (dst_row, src_row)
        };
        let (head, tail) = self.words.split_at_mut(hi * w);
        let a = &head[lo * w..lo * w + w];
        let b = &mut tail[..w];
        if src_row < dst_row {
            for (d, s) in b.iter_mut().zip(a) {
                *d |= *s;
            }
        } else {
            // src is the `tail` slice, dst the `head` slice: redo with
            // roles swapped via index math on the original layout.
            // (Simplest correct path: copy src row first.)
            let src_copy: Vec<u64> = b.to_vec();
            let dst = &mut head[lo * w..lo * w + w];
            for (d, s) in dst.iter_mut().zip(&src_copy) {
                *d |= *s;
            }
        }
    }

    /// Iterates the true columns of `row` in ascending order.
    pub fn row_iter(&self, row: usize) -> BitIter<'_> {
        let w = self.words_per_row;
        let words = &self.words[row * w..(row + 1) * w];
        BitIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// Number of true cells in `row`.
    pub fn row_count(&self, row: usize) -> usize {
        let w = self.words_per_row;
        self.words[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for r in 0..self.n {
            d.entry(&r, &self.row_iter(r).collect::<Vec<_>>());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.count(), 4);
        for i in [0, 63, 64, 129] {
            assert!(s.contains(i));
        }
        assert!(!s.contains(1));
        assert!(!s.contains(500)); // out of range reads as absent
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iter_is_ascending_and_complete() {
        let members = [3usize, 7, 64, 65, 100, 127];
        let s = BitSet::from_iter_with_len(128, members.iter().copied());
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, members);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter_with_len(70, [1, 2, 3, 65]);
        let b = BitSet::from_iter_with_len(70, [2, 3, 4, 66]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 65, 66]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 65]);
        assert!(a.intersects(&b));
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(67);
        assert_eq!(s.count(), 67);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let a = BitSet::from_iter_with_len(10, [0, 2, 4]);
        let b = BitSet::from_iter_with_len(10, [1, 3, 5]);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn matrix_set_get() {
        let mut m = BitMatrix::new(100);
        m.set(0, 99);
        m.set(99, 0);
        m.set(50, 50);
        assert!(m.get(0, 99));
        assert!(m.get(99, 0));
        assert!(m.get(50, 50));
        assert!(!m.get(0, 98));
        assert_eq!(m.row_count(0), 1);
        assert_eq!(m.row_iter(50).collect::<Vec<_>>(), vec![50]);
    }

    #[test]
    fn matrix_or_row_forward_and_backward() {
        let mut m = BitMatrix::new(70);
        m.set(1, 5);
        m.set(1, 66);
        m.or_row_into(1, 3); // forward: src < dst
        assert!(m.get(3, 5) && m.get(3, 66));
        m.set(3, 7);
        m.or_row_into(3, 1); // backward: src > dst
        assert!(m.get(1, 7));
        // Self-merge is a no-op.
        let before = m.clone();
        m.or_row_into(2, 2);
        assert_eq!(m, before);
    }

    #[test]
    fn empty_bitset_iter() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        let s = BitSet::new(64);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }
}
